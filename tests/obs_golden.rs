//! Golden registry-dump test: every counter that the twelve pre-`bess-obs`
//! snapshot structs exposed must still appear in `Registry::dump()` of the
//! unified views. This is the API-migration safety net — if a counter is
//! renamed or dropped from the registry, this list is where the change has
//! to be acknowledged.

use std::sync::Arc;
use std::time::Duration;

use bess_core::{Database, Session, SessionConfig};
use bess_net::{Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, Msg, NodeServer,
    NodeServerConfig, ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::LogManager;

/// Every metric name the old `*StatsSnapshot` structs carried, as it must
/// appear in a dump of the matching unified registry. Grouped by the struct
/// it replaced.
const EMBEDDED_GOLDEN: &[&str] = &[
    // MemStats (bess-vm)
    "vm.reserve_calls",
    "vm.reserved_bytes",
    "vm.unreserve_calls",
    "vm.protect_calls",
    "vm.map_calls",
    "vm.unmap_calls",
    "vm.read_faults",
    "vm.write_faults",
    "vm.denied_faults",
    "vm.read_bytes",
    "vm.write_bytes",
    // SegStats (bess-segment)
    "seg.slotted_reserved",
    "seg.slotted_loads",
    "seg.data_loads",
    "seg.dp_fixups",
    "seg.refs_swizzled",
    "seg.refs_unresolved",
    "seg.protect_cycles",
    "seg.stray_writes_denied",
    "seg.write_detections",
    "seg.objects_created",
    "seg.objects_deleted",
    // PoolStats (bess-cache private)
    "cache.private.loads",
    "cache.private.hits",
    "cache.private.evictions",
    "cache.private.write_backs",
    "cache.private.clock_protected",
    // IoStats (bess-storage, per area)
    "storage.a0.page_reads",
    "storage.a0.page_writes",
    "storage.a0.syncs",
    "storage.a0.extends",
    "storage.a0.read_retries",
    // Allocator health gauges (§E22 harness): fragmentation and free
    // pages, refreshed on every alloc/free.
    "storage.a0.frag_permille",
    "storage.a0.free_pages",
    // WalStats (bess-wal)
    "wal.appends",
    "wal.append_bytes",
    "wal.flushes",
    "wal.reads",
    // Group commit (PR 5): the batched log force.
    "wal.group.leaders",
    "wal.group.followers",
    "wal.group.size",
    // LockStats (bess-lock manager)
    "lock.requests",
    "lock.immediate",
    "lock.waits",
    "lock.timeouts",
    "lock.upgrades",
];

const SERVER_GOLDEN: &[&str] = &[
    // ServerStats (bess-server)
    "server.txns",
    "server.commits",
    "server.aborts",
    "server.fetches",
    "server.reads",
    "server.locks_granted",
    "server.locks_denied",
    "server.callbacks_sent",
    "server.callback_releases",
    "server.callback_deferred",
    "server.callback_downgrades",
    "server.prepares",
    "server.coordinated",
    "server.leases_expired",
    "server.txns_reaped",
    "server.dedup_hits",
    "server.drain_rejections",
    "server.read_only_rejections",
    "server.log_force_failures",
    // Sublinear distributed commit (PR 10): presumed-commit 2PC,
    // read-only participants, and coordinator batching.
    "server.2pc.readonly_votes",
    "server.2pc.readonly_rounds",
    "server.2pc.prepare_batches",
    "server.2pc.batched_prepares",
    "server.2pc.oneway_decides",
    "server.2pc.decide_resends",
    // End-to-end integrity (PR 8): detect-and-repair reads plus the
    // background scrubber.
    "storage.corruption.detected",
    "storage.corruption.repaired",
    "storage.corruption.unrepairable",
    "storage.scrub.passes",
    "storage.scrub.pages",
    "storage.scrub.stale",
    // The server's adopted subsystems.
    "lock.requests",
    "wal.appends",
    "wal.group.size",
    "storage.a0.page_reads",
];

const CLIENT_GOLDEN: &[&str] = &[
    // ClientStats (bess-server client)
    "client.lock_rpcs",
    "client.lock_cache_hits",
    "client.fetch_rpcs",
    "client.read_rpcs",
    "client.commits",
    "client.commit_failures",
    "client.aborts",
    "client.callbacks",
    "client.retries",
    "client.heartbeats",
    // LockCacheStats (bess-lock cache), adopted into the client registry.
    "lock.cache.hits",
    "lock.cache.misses",
    "lock.cache.callbacks",
    "lock.cache.callback_released",
    "lock.cache.callback_deferred",
];

const NODESERVER_GOLDEN: &[&str] = &[
    // NodeServerStats (bess-server nodeserver)
    "nodeserver.cache_hits",
    "nodeserver.remote_fetches",
    "nodeserver.lock_local",
    "nodeserver.lock_remote",
    "nodeserver.callbacks",
    "nodeserver.commits",
    "nodeserver.global_commits",
    "nodeserver.local_commits",
    "nodeserver.reshipped",
    // SharedStats (bess-cache shared), adopted into the node server.
    "cache.shared.hits",
    "cache.shared.loads",
    "cache.shared.evictions",
    "cache.shared.dirty_evictions",
    "cache.shared.vframe_assigns",
];

const NET_GOLDEN: &[&str] = &[
    // NetStats (bess-net)
    "net.sends",
    "net.calls",
    "net.unreachable",
    "net.faulted",
    "net.duplicated",
    // Piggybacked control traffic (PR 10).
    "net.trailers.carried",
    "net.heartbeats.suppressed",
];

fn assert_all_present(dump: &str, golden: &[&str], what: &str) {
    let names: Vec<&str> = dump
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for want in golden {
        assert!(
            names.contains(want),
            "{what}: metric `{want}` missing from registry dump:\n{dump}"
        );
    }
}

fn make_areas(ids: &[u32]) -> Arc<bess_cache::AreaSet> {
    let set = Arc::new(bess_cache::AreaSet::new());
    for &id in ids {
        set.add(Arc::new(
            StorageArea::create_mem(AreaId(id), AreaConfig::default()).unwrap(),
        ));
    }
    set
}

/// The embedded session's unified registry carries every counter from the
/// six single-process stats structs.
#[test]
fn embedded_session_dump_covers_old_snapshots() {
    let set = make_areas(&[0]);
    let db = Database::create(&*Arc::clone(&set), "golden", 1, 1, 0).unwrap();
    let session = Session::embedded(
        db,
        Arc::clone(&set),
        Some(Arc::new(LogManager::create_mem())),
        Some(Arc::new(bess_lock::LockManager::new(Duration::from_secs(5)))),
        SessionConfig::default(),
    );
    // Exercise a little so the dump is not a page of zeros.
    session.begin().unwrap();
    let seg = session.create_segment(0, 16, 4).unwrap();
    session.create_bytes(seg, b"golden").unwrap();
    session.commit().unwrap();

    let dump = session.metrics().dump();
    assert_all_present(&dump, EMBEDDED_GOLDEN, "embedded session");
    // ViewStats lives in the multi-process shared-memory path, which an
    // embedded session does not construct; it is covered separately below.
}

/// The server-side unified registry carries ServerStats plus its adopted
/// lock manager, WAL, and storage areas.
#[test]
fn server_and_client_dumps_cover_old_snapshots() {
    let net: Arc<Network<Msg>> = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = make_areas(&[0]);
    register_areas(&dir, NodeId(100), &set);
    let (server, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        LogManager::create_mem(),
        &net,
    );
    let client = ClientConn::connect(
        &net,
        Arc::clone(&dir),
        ClientConfig::new(NodeId(1), server.node()),
    );
    client.begin().unwrap();
    client.commit(vec![]).unwrap();

    assert_all_present(
        &server.metrics().registry().dump(),
        SERVER_GOLDEN,
        "server",
    );
    assert_all_present(
        &client.metrics().registry().dump(),
        CLIENT_GOLDEN,
        "client",
    );
    assert_all_present(&net.metrics().registry().dump(), NET_GOLDEN, "network");
    client.disconnect();
}

/// The node server's unified registry carries NodeServerStats plus the
/// shared cache it fronts.
#[test]
fn nodeserver_dump_covers_old_snapshots() {
    let net: Arc<Network<Msg>> = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = make_areas(&[0]);
    register_areas(&dir, NodeId(100), &set);
    let (_server, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        LogManager::create_mem(),
        &net,
    );
    let ns = NodeServer::start(NodeServerConfig::new(NodeId(50)), Arc::clone(&dir), &net);
    assert_all_present(
        &ns.metrics().registry().dump(),
        NODESERVER_GOLDEN,
        "node server",
    );
    ns.shutdown();
}

/// ViewStats (the SMT-style shared view) in its own registry.
#[test]
fn shared_view_dump_covers_old_snapshot() {
    let cache = bess_cache::SharedCache::new(4, 8, 256);
    let space = Arc::new(bess_vm::AddressSpace::with_page_size(256));
    let io = Arc::new(bess_cache::MapIo::new()) as Arc<dyn bess_cache::PageIo>;
    let view = bess_cache::SharedView::attach(space, Arc::clone(&cache), io);
    let dump = view.metrics().registry().dump();
    for want in [
        "cache.view.revalidations",
        "cache.view.attach_hits",
        "cache.view.attach_loads",
        "cache.view.clock_protected",
        "cache.view.clock_invalidated",
    ] {
        assert!(
            dump.lines().any(|l| l.split_whitespace().next() == Some(want)),
            "shared view: metric `{want}` missing from dump:\n{dump}"
        );
    }
}

/// The workload harness's own `scenario.*` histogram namespace is pinned:
/// every timer the scenarios register must be declared in
/// `bess_bench::scenario::SCENARIO_HISTOGRAMS` (renames have to be
/// acknowledged both there and here).
#[test]
fn scenario_harness_names_are_pinned() {
    const SCENARIO_GOLDEN: &[&str] = &[
        "scenario.txn.ns",
        "scenario.scan.ns",
        "scenario.aging.op.ns",
        "scenario.cold.fetch.ns",
        "scenario.warm.fetch.ns",
        "scenario.recovery.ns",
    ];
    let dump = bess_bench::scenario::register_all_metrics().dump();
    assert_all_present(&dump, SCENARIO_GOLDEN, "scenario harness");
    assert_eq!(
        bess_bench::scenario::SCENARIO_HISTOGRAMS.len(),
        SCENARIO_GOLDEN.len(),
        "a scenario histogram was added without pinning it here"
    );
}

/// JSON exposition parses and covers the same names as the text dump.
#[test]
fn json_exposition_matches_text_dump() {
    let set = make_areas(&[0]);
    let db = Database::create(&*Arc::clone(&set), "golden2", 1, 1, 0).unwrap();
    let session = Session::embedded(
        db,
        Arc::clone(&set),
        Some(Arc::new(LogManager::create_mem())),
        Some(Arc::new(bess_lock::LockManager::new(Duration::from_secs(5)))),
        SessionConfig::default(),
    );
    let json = session.metrics().dump_json();
    for want in EMBEDDED_GOLDEN {
        assert!(
            json.contains(&format!("\"{want}\"")),
            "JSON exposition missing `{want}`:\n{json}"
        );
    }
}
