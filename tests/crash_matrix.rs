//! The crash-recovery matrix: a scripted workload over fault-injecting
//! disks, crashed at every interesting I/O, then recovered and checked.
//!
//! Both seams run on [`FaultDisk`]s — the storage area through
//! `StorageArea::create_faulty` and the WAL through
//! `LogManager::create_faulty` — so a single [`FaultPlan`] can fail the
//! Nth read/write/sync deterministically. The harness:
//!
//! 1. builds a tiny area + log on faulty disks (setup is fault-free);
//! 2. arms one `(op class, n, kind)` fault and runs a fixed workload of
//!    six transactions (commits, a runtime abort with CLRs, a fuzzy
//!    checkpoint, a 2PC prepare, and a loser stolen to the platter);
//! 3. crashes both disks (unsynced bytes are lost), reopens them fresh,
//!    and runs `recover_embedded`;
//! 4. checks the **oracle invariants**: every byte range equals the
//!    replay of exactly the durably-committed (and in-doubt) updates,
//!    losers are rolled back, in-doubt transactions are reported but not
//!    resolved, and a second recovery is a no-op (idempotence).
//!
//! Because the oracle is computed from the reopened log's durable prefix
//! alone, the same checker validates every fault point — whichever
//! prefix of the workload survived. Double-crash tests arm a second
//! fault *during recovery* and assert the third run still converges.
//!
//! The full sweeps (every write index × several tear points, etc.) run
//! with `--features crash-tests`; the default run keeps a representative
//! subset so `cargo test` stays quick.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use bess_cache::AreaSet;
use bess_core::recover_embedded;
use bess_storage::{
    AreaConfig, AreaId, FaultDisk, FaultKind, FaultPlan, OpClass, StorageArea,
};
use bess_wal::{
    take_checkpoint, undo_transactions, LogBody, LogManager, LogPageId, Lsn, RecoveryReport,
    LOG_START,
};

// ---------------------------------------------------------------------------
// Rig: a small area + log on faulty disks, with three tracked pages.
// ---------------------------------------------------------------------------

const PAGE_SIZE: usize = 256;
/// Bytes tracked (and asserted) at the head of each page.
const TRACKED: usize = 24;

const VAL_T1: u8 = 0xA1; // committed, forced          -> A[0..8]
const VAL_T2A: u8 = 0xA2; // committed, forced          -> A[8..16]
const VAL_T2B: u8 = 0xB2; // committed, NOT written back -> B[0..8]
const VAL_T3: u8 = 0xB3; // aborted at runtime (CLRs)  -> B[8..16], net zero
const VAL_T4: u8 = 0xC4; // prepared (in doubt)        -> C[0..8]
const VAL_T5: u8 = 0xC5; // committed, NOT written back -> C[8..16]
const VAL_T6: u8 = 0xB6; // loser, stolen to platter   -> B[16..24]

struct Rig {
    area_disk: Arc<FaultDisk>,
    log_disk: Arc<FaultDisk>,
    set: Arc<AreaSet>,
    log: LogManager,
    /// Allocated page numbers for A, B, C.
    pages: [u64; 3],
}

fn small_area() -> AreaConfig {
    AreaConfig {
        page_size: PAGE_SIZE,
        extent_pages_log2: 4,
        initial_extents: 1,
        expandable: true,
        verify_on_read: true,
    }
}

/// Builds the rig fault-free: formatting the area, allocating the pages,
/// and writing the log header all complete and are synced durably before
/// any plan is armed, so fault indices count from the workload's first I/O.
fn build_rig() -> Rig {
    let area_disk = FaultDisk::new(FaultPlan::unarmed());
    let log_disk = FaultDisk::new(FaultPlan::unarmed());
    let area =
        StorageArea::create_faulty(AreaId(0), small_area(), Arc::clone(&area_disk)).unwrap();
    let ptr = area.alloc(4).unwrap();
    let pages = [ptr.start_page, ptr.start_page + 1, ptr.start_page + 2];
    area.sync().unwrap();
    let log = LogManager::create_faulty(Arc::clone(&log_disk)).unwrap();
    // Make the fresh header (master = null) durable, like mkfs would.
    log.set_master(Lsn::NULL).unwrap();
    let set = AreaSet::new();
    set.add(Arc::new(area));
    Rig {
        area_disk,
        log_disk,
        set: Arc::new(set),
        log,
        pages,
    }
}

impl Rig {
    fn page_id(&self, i: usize) -> LogPageId {
        LogPageId {
            area: 0,
            page: self.pages[i],
        }
    }
}

fn upd(page: LogPageId, offset: u32, before: u8, after: u8) -> LogBody {
    LogBody::Update {
        page,
        offset,
        before: vec![before; 8],
        after: vec![after; 8],
    }
}

// ---------------------------------------------------------------------------
// The scripted workload. Stops at the first I/O error (the injected fault
// is the moment the "process" dies).
// ---------------------------------------------------------------------------

fn run_workload(rig: &Rig) -> Result<(), String> {
    let (a, b, c) = (rig.page_id(0), rig.page_id(1), rig.page_id(2));
    let area = rig.set.get(0).unwrap();
    let log = &rig.log;
    let e = |m: String| m;

    // t1: commit, then force A to the platter.
    let prev = log.append(1, Lsn::NULL, LogBody::Begin);
    let prev = log.append(1, prev, upd(a, 0, 0, VAL_T1));
    log.append(1, prev, LogBody::Commit);
    log.flush_all().map_err(|x| e(x.to_string()))?;
    area.write_at(rig.pages[0], 0, &[VAL_T1; 8])
        .map_err(|x| e(x.to_string()))?;
    area.sync().map_err(|x| e(x.to_string()))?;

    // t2: commit; A forced again, B left dirty (no-force: redo must repair).
    let prev = log.append(2, Lsn::NULL, LogBody::Begin);
    let prev = log.append(2, prev, upd(a, 8, 0, VAL_T2A));
    let t2_b = log.append(2, prev, upd(b, 0, 0, VAL_T2B));
    log.append(2, t2_b, LogBody::Commit);
    log.flush_all().map_err(|x| e(x.to_string()))?;
    area.write_at(rig.pages[0], 8, &[VAL_T2A; 8])
        .map_err(|x| e(x.to_string()))?;
    area.sync().map_err(|x| e(x.to_string()))?;

    // t3: update B, steal the dirty page, then abort at runtime — the undo
    // writes a CLR chained by undo_next and an End, and restores the bytes.
    let t3_begin = log.append(3, Lsn::NULL, LogBody::Begin);
    let t3_upd = log.append(3, t3_begin, upd(b, 8, 0, VAL_T3));
    log.flush_all().map_err(|x| e(x.to_string()))?; // WAL rule before the steal
    area.write_at(rig.pages[1], 8, &[VAL_T3; 8])
        .map_err(|x| e(x.to_string()))?;
    area.sync().map_err(|x| e(x.to_string()))?;
    let abort = log.append(3, t3_upd, LogBody::Abort);
    let mut target = bess_server::AreaTarget(Arc::clone(&rig.set));
    undo_transactions(log, vec![(3, abort)], &mut target).map_err(|x| e(x.to_string()))?;
    log.flush_all().map_err(|x| e(x.to_string()))?;

    // Fuzzy checkpoint: B is still dirty (t2's update was never forced).
    take_checkpoint(log, vec![(b, t2_b)], vec![]).map_err(|x| e(x.to_string()))?;

    // t4: prepared — in doubt until the coordinator's verdict.
    let prev = log.append(4, Lsn::NULL, LogBody::Begin);
    let prev = log.append(4, prev, upd(c, 0, 0, VAL_T4));
    log.append(4, prev, LogBody::Prepare);
    log.flush_all().map_err(|x| e(x.to_string()))?;

    // t5: commit on the same page as t4, disjoint bytes, not forced.
    let prev = log.append(5, Lsn::NULL, LogBody::Begin);
    let prev = log.append(5, prev, upd(c, 8, 0, VAL_T5));
    log.append(5, prev, LogBody::Commit);
    log.flush_all().map_err(|x| e(x.to_string()))?;

    // t6: a loser — still active at the crash, its dirty page stolen.
    let prev = log.append(6, Lsn::NULL, LogBody::Begin);
    let _ = log.append(6, prev, upd(b, 16, 0, VAL_T6));
    log.flush_all().map_err(|x| e(x.to_string()))?; // WAL rule
    area.write_at(rig.pages[1], 16, &[VAL_T6; 8])
        .map_err(|x| e(x.to_string()))?;
    area.sync().map_err(|x| e(x.to_string()))?;
    Ok(())
}

// Operation counts the fault-free workload issues, verified by
// `dry_run_op_counts` so the sweeps below cannot silently shrink.
const LOG_WRITES: u64 = 9;
const LOG_SYNCS: u64 = 9;
const AREA_WRITES: u64 = 5;
const AREA_SYNCS: u64 = 4;

// ---------------------------------------------------------------------------
// The oracle: classify transactions from the durable log prefix and compute
// the byte image recovery must produce.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct Classified {
    winners: BTreeSet<u64>,
    in_doubt: BTreeSet<u64>,
    /// Rolled back completely before the crash (`End` without `Commit`).
    ended: BTreeSet<u64>,
    losers: BTreeSet<u64>,
}

fn classify(log: &LogManager) -> Classified {
    #[derive(Default)]
    struct Flags {
        commit: bool,
        prepare: bool,
        abort: bool,
        end: bool,
    }
    let mut txns: BTreeMap<u64, Flags> = BTreeMap::new();
    for rec in log.iter() {
        if rec.txn == 0 {
            continue; // checkpoint records
        }
        let f = txns.entry(rec.txn).or_default();
        match rec.body {
            LogBody::Commit => f.commit = true,
            LogBody::Prepare => f.prepare = true,
            LogBody::Abort => f.abort = true,
            LogBody::End => f.end = true,
            _ => {}
        }
    }
    let mut out = Classified::default();
    for (txn, f) in txns {
        if f.commit {
            out.winners.insert(txn);
        } else if f.end {
            out.ended.insert(txn);
        } else if f.prepare && !f.abort {
            out.in_doubt.insert(txn);
        } else {
            out.losers.insert(txn);
        }
    }
    out
}

/// The page bytes recovery must produce: the after-images of winners and
/// in-doubt transactions applied in log order; everything else rolled back
/// to zeros. (Byte ranges of distinct transactions never overlap in the
/// workload, mirroring strict 2PL.)
fn expected_pages(log: &LogManager, classes: &Classified, rig: &Rig) -> BTreeMap<u64, Vec<u8>> {
    let mut pages: BTreeMap<u64, Vec<u8>> =
        rig.pages.iter().map(|&p| (p, vec![0u8; TRACKED])).collect();
    for rec in log.iter() {
        let keep = classes.winners.contains(&rec.txn) || classes.in_doubt.contains(&rec.txn);
        if !keep {
            continue;
        }
        if let LogBody::Update {
            page,
            offset,
            ref after,
            ..
        } = rec.body
        {
            if let Some(image) = pages.get_mut(&page.page) {
                let start = offset as usize;
                let end = (start + after.len()).min(TRACKED);
                if start < end {
                    image[start..end].copy_from_slice(&after[..end - start]);
                }
            }
        }
    }
    pages
}

fn actual_pages(set: &AreaSet, rig: &Rig) -> BTreeMap<u64, Vec<u8>> {
    let area = set.get(0).unwrap();
    rig.pages
        .iter()
        .map(|&p| {
            let mut buf = vec![0u8; TRACKED];
            area.read_at(p, 0, &mut buf).unwrap();
            (p, buf)
        })
        .collect()
}

/// Reopens both disks fresh (unsynced bytes lost), recovers, and checks
/// every invariant. Returns the first recovery's report.
fn verify_recovery(rig: &Rig) -> RecoveryReport {
    rig.area_disk.reopen(FaultPlan::unarmed());
    rig.log_disk.reopen(FaultPlan::unarmed());
    let area = StorageArea::open_faulty(AreaId(0), Arc::clone(&rig.area_disk), true)
        .expect("area reopens after crash");
    let set = AreaSet::new();
    set.add(Arc::new(area));
    let set = Arc::new(set);
    let log = LogManager::open_faulty(Arc::clone(&rig.log_disk)).expect("log reopens after crash");

    // Oracle from the durable prefix, before recovery appends anything.
    let classes = classify(&log);
    let expected = expected_pages(&log, &classes, rig);

    let report = recover_embedded(&log, &set).expect("recovery succeeds");

    // Committed data byte-identical; losers rolled back; in-doubt retained.
    assert_eq!(
        actual_pages(&set, rig),
        expected,
        "recovered bytes disagree with the durable-log oracle\nclasses: {classes:?}\nreport: {report:?}"
    );
    // Losers and in-doubt reported exactly (they all postdate the
    // checkpoint, so the analysis window sees every one).
    let losers: BTreeSet<u64> = report.losers.iter().copied().collect();
    assert_eq!(losers, classes.losers, "loser set\nreport: {report:?}");
    let in_doubt: BTreeSet<u64> = report.in_doubt.iter().copied().collect();
    assert_eq!(in_doubt, classes.in_doubt, "in-doubt set\nreport: {report:?}");
    // Winners the analysis window saw really did commit.
    for w in &report.winners {
        assert!(classes.winners.contains(w), "phantom winner {w}");
    }
    // In-doubt transactions are reported, not resolved: no End was
    // appended for them, so a second recovery still sees them.
    let report2 = recover_embedded(&log, &set).expect("second recovery");
    assert!(
        report2.losers.is_empty(),
        "first recovery left losers behind: {report2:?}"
    );
    let in_doubt2: BTreeSet<u64> = report2.in_doubt.iter().copied().collect();
    assert_eq!(in_doubt2, classes.in_doubt, "in-doubt must survive recovery");
    assert_eq!(
        actual_pages(&set, rig),
        expected,
        "recovery is not idempotent"
    );
    report
}

#[derive(Clone, Copy, Debug)]
enum Target {
    Area,
    Log,
}

/// One matrix cell: arm `(class, nth, kind)` on one disk, run the workload
/// to its natural death, crash, recover, check. Returns whether the fault
/// actually fired (indices past the workload's op count never fire).
fn run_case(target: Target, class: OpClass, nth: u64, kind: FaultKind) -> bool {
    let rig = build_rig();
    let plan = FaultPlan::armed(class, nth, kind);
    match target {
        Target::Area => rig.area_disk.arm(Arc::clone(&plan)),
        Target::Log => rig.log_disk.arm(Arc::clone(&plan)),
    }
    let res = run_workload(&rig);
    let fired = plan.fired() > 0;
    if !fired {
        assert!(
            res.is_ok(),
            "workload failed with no injected fault: {res:?}"
        );
    }
    rig.area_disk.crash();
    rig.log_disk.crash();
    verify_recovery(&rig);
    fired
}

// ---------------------------------------------------------------------------
// Op-count calibration.
// ---------------------------------------------------------------------------

#[test]
fn dry_run_op_counts() {
    let rig = build_rig();
    let area_plan = FaultPlan::unarmed();
    let log_plan = FaultPlan::unarmed();
    rig.area_disk.arm(Arc::clone(&area_plan));
    rig.log_disk.arm(Arc::clone(&log_plan));
    run_workload(&rig).unwrap();
    assert_eq!(log_plan.ops(OpClass::Write), LOG_WRITES, "log writes");
    assert_eq!(log_plan.ops(OpClass::Sync), LOG_SYNCS, "log syncs");
    assert_eq!(area_plan.ops(OpClass::Write), AREA_WRITES, "area writes");
    assert_eq!(area_plan.ops(OpClass::Sync), AREA_SYNCS, "area syncs");
    // And with no fault at all, recovery of the clean crash still holds.
    rig.area_disk.crash();
    rig.log_disk.crash();
    let report = verify_recovery(&rig);
    assert_eq!(report.losers, vec![6]);
    assert_eq!(report.in_doubt, vec![4]);
}

// ---------------------------------------------------------------------------
// Workload-time fault sweeps.
// ---------------------------------------------------------------------------

#[test]
fn log_write_eio_sweep() {
    let mut fired = 0;
    for nth in 0..LOG_WRITES {
        if run_case(Target::Log, OpClass::Write, nth, FaultKind::Eio) {
            fired += 1;
        }
    }
    assert_eq!(fired, LOG_WRITES, "every log write index must be exercised");
}

#[test]
fn log_write_crash_sweep() {
    let mut fired = 0;
    for nth in 0..LOG_WRITES {
        if run_case(Target::Log, OpClass::Write, nth, FaultKind::Crash) {
            fired += 1;
        }
    }
    assert_eq!(fired, LOG_WRITES);
}

/// Torn log flushes: a prefix of the flushed tail lands durably, tearing
/// mid-frame or between frames depending on `keep`; the reopen scan must
/// truncate at the tear and recovery must treat the suffix as never
/// written. The full tear grid runs under `--features crash-tests`.
#[test]
fn log_torn_write_representative() {
    let mut fired = 0;
    for (nth, keep) in [(0u64, 5usize), (3, 40), (8, 21)] {
        if run_case(Target::Log, OpClass::Write, nth, FaultKind::Torn { keep }) {
            fired += 1;
        }
    }
    assert_eq!(fired, 3);
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn log_torn_write_full_sweep() {
    let mut fired = 0;
    for nth in 0..LOG_WRITES {
        for keep in [0usize, 5, 21, 40, 72, 150] {
            if run_case(Target::Log, OpClass::Write, nth, FaultKind::Torn { keep }) {
                fired += 1;
            }
        }
    }
    assert_eq!(fired, LOG_WRITES * 6);
}

#[test]
fn log_sync_eio_sweep() {
    let mut fired = 0;
    for nth in 0..LOG_SYNCS {
        if run_case(Target::Log, OpClass::Sync, nth, FaultKind::Eio) {
            fired += 1;
        }
    }
    assert_eq!(fired, LOG_SYNCS);
}

/// A lying fsync anywhere but the final flush is healed by the next real
/// sync (the durable image catches up wholesale), so recovery stays clean.
#[test]
fn log_drop_sync_sweep() {
    let mut fired = 0;
    for nth in 0..LOG_SYNCS - 1 {
        if run_case(Target::Log, OpClass::Sync, nth, FaultKind::DropSync) {
            fired += 1;
        }
    }
    assert_eq!(fired, LOG_SYNCS - 1);
}

/// The negative result the matrix documents: if the *final* log flush lies
/// and the dirty page is then stolen, WAL's premise (log hits the platter
/// before the page) is violated and no recovery algorithm can roll the
/// loser back — its log record never existed durably. This is why fsync
/// integrity is a prerequisite, not something recovery can compensate for.
#[test]
fn lying_fsync_before_steal_defeats_wal() {
    let rig = build_rig();
    let plan = FaultPlan::armed(OpClass::Sync, LOG_SYNCS - 1, FaultKind::DropSync);
    rig.log_disk.arm(Arc::clone(&plan));
    run_workload(&rig).unwrap(); // the lie goes unnoticed
    assert_eq!(plan.fired(), 1);
    rig.area_disk.crash();
    rig.log_disk.crash();

    rig.area_disk.reopen(FaultPlan::unarmed());
    rig.log_disk.reopen(FaultPlan::unarmed());
    let area = StorageArea::open_faulty(AreaId(0), Arc::clone(&rig.area_disk), true).unwrap();
    let set = AreaSet::new();
    set.add(Arc::new(area));
    let set = Arc::new(set);
    let log = LogManager::open_faulty(Arc::clone(&rig.log_disk)).unwrap();
    // t6's records evaporated with the dropped sync …
    assert!(classify(&log).losers.is_empty());
    recover_embedded(&log, &set).unwrap();
    // … so its stolen bytes survive recovery: durable corruption.
    let mut buf = [0u8; 8];
    set.get(0).unwrap().read_at(rig.pages[1], 16, &mut buf).unwrap();
    assert_eq!(buf, [VAL_T6; 8], "the lost loser cannot be undone");
}

#[test]
fn area_write_eio_sweep() {
    let mut fired = 0;
    for nth in 0..AREA_WRITES {
        if run_case(Target::Area, OpClass::Write, nth, FaultKind::Eio) {
            fired += 1;
        }
    }
    assert_eq!(fired, AREA_WRITES);
}

#[test]
fn area_write_torn_representative() {
    let mut fired = 0;
    for (nth, keep) in [(0u64, 3usize), (4, 5)] {
        if run_case(Target::Area, OpClass::Write, nth, FaultKind::Torn { keep }) {
            fired += 1;
        }
    }
    assert_eq!(fired, 2);
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn area_write_fault_full_sweep() {
    let mut fired = 0;
    for nth in 0..AREA_WRITES {
        for kind in [
            FaultKind::Eio,
            FaultKind::Crash,
            FaultKind::Torn { keep: 0 },
            FaultKind::Torn { keep: 3 },
            FaultKind::Torn { keep: 7 },
        ] {
            if run_case(Target::Area, OpClass::Write, nth, kind) {
                fired += 1;
            }
        }
    }
    assert_eq!(fired, AREA_WRITES * 5);
}

#[test]
fn area_sync_fault_sweep() {
    let mut fired = 0;
    for nth in 0..AREA_SYNCS {
        for kind in [FaultKind::Eio, FaultKind::DropSync] {
            if run_case(Target::Area, OpClass::Sync, nth, kind) {
                fired += 1;
            }
        }
    }
    assert_eq!(fired, AREA_SYNCS * 2);
}

// ---------------------------------------------------------------------------
// Recovery-time faults: the double-crash tier. The first recovery attempt
// runs under an armed plan; whatever it manages (or fails) to do, a second
// crash and a clean recovery must still converge to the oracle.
// ---------------------------------------------------------------------------

/// Runs the fault-free workload, crashes, then attempts recovery with
/// `(class, nth, kind)` armed on one disk. Returns `(fired, first attempt
/// succeeded)` after verifying the follow-up clean recovery.
fn run_recovery_fault_case(
    target: Target,
    class: OpClass,
    nth: u64,
    kind: FaultKind,
) -> (bool, bool) {
    let rig = build_rig();
    run_workload(&rig).expect("fault-free workload");
    rig.area_disk.crash();
    rig.log_disk.crash();

    let plan = FaultPlan::armed(class, nth, kind);
    let (area_plan, log_plan) = match target {
        Target::Area => (Arc::clone(&plan), FaultPlan::unarmed()),
        Target::Log => (FaultPlan::unarmed(), Arc::clone(&plan)),
    };
    rig.area_disk.reopen(area_plan);
    rig.log_disk.reopen(log_plan);
    let attempt = (|| -> Result<RecoveryReport, String> {
        let area = StorageArea::open_faulty(AreaId(0), Arc::clone(&rig.area_disk), true)
            .map_err(|e| e.to_string())?;
        let set = AreaSet::new();
        set.add(Arc::new(area));
        let set = Arc::new(set);
        let log = LogManager::open_faulty(Arc::clone(&rig.log_disk)).map_err(|e| e.to_string())?;
        recover_embedded(&log, &set).map_err(|e| e.to_string())
    })();
    let fired = plan.fired() > 0;

    // Second crash — then recovery must succeed cleanly, no matter how far
    // the first attempt got.
    rig.area_disk.crash();
    rig.log_disk.crash();
    verify_recovery(&rig);
    (fired, attempt.is_ok())
}

#[test]
fn recovery_log_read_eio_then_clean_retry() {
    let mut fired = 0;
    for nth in [0u64, 1, 3, 7, 15, 30] {
        let (f, ok) = run_recovery_fault_case(Target::Log, OpClass::Read, nth, FaultKind::Eio);
        if f {
            fired += 1;
            assert!(!ok, "an EIO'd log read must fail the recovery attempt");
        }
    }
    assert!(fired >= 4, "only {fired} log-read fault points fired");
}

/// Short reads are not failures: the accumulating read loops in both
/// backends retry, so recovery *succeeds* despite the fault.
#[test]
fn recovery_survives_short_reads() {
    let mut fired = 0;
    for (target, nth) in [
        (Target::Log, 0u64),
        (Target::Log, 2),
        (Target::Log, 9),
        (Target::Area, 0),
        (Target::Area, 1),
    ] {
        let (f, ok) =
            run_recovery_fault_case(target, OpClass::Read, nth, FaultKind::Short { len: 3 });
        if f {
            fired += 1;
            assert!(ok, "a short read must be retried, not fatal");
        }
    }
    assert!(fired >= 4, "only {fired} short-read fault points fired");
}

/// A fire-once read EIO on the *area* disk is transient by definition, and
/// the storage backend's bounded retry absorbs it: the first recovery
/// attempt succeeds despite the fault.
#[test]
fn recovery_area_read_eio_absorbed_by_retry() {
    let mut fired = 0;
    for nth in [0u64, 1, 2] {
        let (f, ok) = run_recovery_fault_case(Target::Area, OpClass::Read, nth, FaultKind::Eio);
        if f {
            fired += 1;
            assert!(ok, "a transient EIO'd area read must be retried, not fatal");
        }
    }
    assert!(fired >= 2, "only {fired} area-read fault points fired");
}

/// Crash *during* redo or undo: the area writes recovery itself issues are
/// killed one by one. The failed attempt may have partially repeated
/// history or partially rolled back the loser; repeating recovery from
/// scratch must converge because redo is idempotent and CLR application is
/// bounded by `undo_next`.
#[test]
fn recovery_crash_during_redo_and_undo_sweep() {
    // Fault-free recovery issues 6 redo writes then 1 undo write (t6's
    // before-image); nth = 6 therefore dies mid-undo.
    let mut fired = 0;
    let mut failed_attempts = 0;
    for nth in 0..7u64 {
        let (f, ok) = run_recovery_fault_case(Target::Area, OpClass::Write, nth, FaultKind::Crash);
        if f {
            fired += 1;
            if !ok {
                failed_attempts += 1;
            }
        }
    }
    assert_eq!(fired, 7, "every recovery-time area write must be exercised");
    assert_eq!(
        failed_attempts, 7,
        "a crashed apply must surface as a recovery error"
    );
}

/// The final log flush of recovery (the one making CLRs durable) dies;
/// the rerun must re-derive and re-log the undo.
#[test]
fn recovery_log_flush_failure_then_clean_retry() {
    let (fired, ok) = run_recovery_fault_case(Target::Log, OpClass::Write, 0, FaultKind::Eio);
    assert!(fired);
    assert!(!ok, "a failed CLR flush must fail recovery");
}

// ---------------------------------------------------------------------------
// Directed edge cases (the satellite scenarios).
// ---------------------------------------------------------------------------

/// An in-doubt transaction survives recovery — and a double crash — still
/// in doubt: reported each time, its updates repeated by redo, never
/// rolled back and never ended.
#[test]
fn in_doubt_survives_double_crash() {
    let rig = build_rig();
    run_workload(&rig).unwrap();
    rig.area_disk.crash();
    rig.log_disk.crash();
    let report = verify_recovery(&rig); // first crash + recovery (+ idempotence)
    assert_eq!(report.in_doubt, vec![4]);

    // Crash again after the successful recovery and recover once more.
    rig.area_disk.crash();
    rig.log_disk.crash();
    let report = verify_recovery(&rig);
    assert_eq!(report.in_doubt, vec![4], "still awaiting the coordinator");
    assert!(report.losers.is_empty(), "losers were resolved first time");
}

/// Analysis starts at the fuzzy checkpoint, and redo starts at the
/// checkpoint's dirty-page recLSN — mid-log, not LOG_START.
#[test]
fn redo_starts_mid_log_after_checkpoint() {
    let rig = build_rig();
    run_workload(&rig).unwrap();
    rig.area_disk.crash();
    rig.log_disk.crash();
    let report = verify_recovery(&rig);
    assert!(
        report.redo_start > LOG_START,
        "redo began at {:?}, expected the checkpointed recLSN",
        report.redo_start
    );
    // The analysis window is bounded by the checkpoint: t1..t3 finished
    // before it, so only the checkpoint-end and the records of t4..t6 are
    // scanned — far fewer than the whole log.
    assert!(
        report.scanned <= 10,
        "scanned {} records despite the checkpoint",
        report.scanned
    );
    // t1/t2 committed before the checkpoint: invisible to analysis, yet
    // their data survived (verified against the oracle in verify_recovery).
    assert!(!report.winners.contains(&1));
    assert!(!report.winners.contains(&2));
}

/// Repeated crashes in the middle of undo: each attempt is killed at the
/// loser's before-image write, and the final clean pass must still roll
/// t6 back exactly once (CLRs chained by undo_next keep undo idempotent).
#[test]
fn repeated_crash_mid_undo_converges() {
    let rig = build_rig();
    run_workload(&rig).unwrap();
    rig.area_disk.crash();
    rig.log_disk.crash();

    // Three consecutive recovery attempts, each dying at the undo write
    // (area write nth=6 — after the 6 redo writes).
    for attempt in 0..3 {
        rig.area_disk
            .reopen(FaultPlan::armed(OpClass::Write, 6, FaultKind::Crash));
        rig.log_disk.reopen(FaultPlan::unarmed());
        let area = StorageArea::open_faulty(AreaId(0), Arc::clone(&rig.area_disk), true).unwrap();
        let set = AreaSet::new();
        set.add(Arc::new(area));
        let set = Arc::new(set);
        let log = LogManager::open_faulty(Arc::clone(&rig.log_disk)).unwrap();
        let err = recover_embedded(&log, &set);
        assert!(err.is_err(), "attempt {attempt} should die mid-undo");
        rig.area_disk.crash();
        rig.log_disk.crash();
    }

    let report = verify_recovery(&rig);
    assert_eq!(report.losers, vec![6]);
    assert_eq!(report.undone, 1, "t6 rolled back exactly once");
}

// ---------------------------------------------------------------------------
// Group-commit fault points (PR 5): a concurrent commit workload crashed at
// exact steps of the leader's force protocol, via the WAL's force hook.
// Group commit must be crash-equivalent to per-commit forcing: an
// acknowledged flush is always in the durable image, and a failed or
// killed force never acknowledges anyone.
// ---------------------------------------------------------------------------

/// Spawns `n` committer threads against `log`; each appends
/// Begin/Update/Commit for its own transaction, forces the commit, and
/// appends End on success. Returns each thread's `(txn, flush result)`.
fn concurrent_commits(
    log: &Arc<LogManager>,
    n: u64,
) -> Vec<(u64, Result<(), String>)> {
    let barrier = Arc::new(std::sync::Barrier::new(n as usize));
    let workers: Vec<_> = (1..=n)
        .map(|txn| {
            let log = Arc::clone(log);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let b = log.append(txn, Lsn::NULL, LogBody::Begin);
                let u = log.append(
                    txn,
                    b,
                    LogBody::Update {
                        page: LogPageId { area: 0, page: txn },
                        offset: 0,
                        before: vec![0; 8],
                        after: vec![txn as u8; 8],
                    },
                );
                let c = log.append(txn, u, LogBody::Commit);
                let res = log.flush(c).map_err(|e| e.to_string());
                if res.is_ok() {
                    log.append(txn, c, LogBody::End);
                }
                (txn, res)
            })
        })
        .collect();
    workers.into_iter().map(|w| w.join().unwrap()).collect()
}

/// Transactions with a durable Commit record in the reopened log.
fn durable_committers(log: &LogManager) -> BTreeSet<u64> {
    log.iter()
        .filter(|r| r.body == LogBody::Commit)
        .map(|r| r.txn)
        .collect()
}

/// Crash between the buffer swap and the device sync: the group's bytes
/// never reach the durable image, so every member must be failed and the
/// reopened log must contain only what was durable before — exactly the
/// per-commit-forcing outcome of dying before fsync returns.
#[test]
fn group_commit_crash_between_swap_and_sync() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let disk = FaultDisk::new(FaultPlan::unarmed());
    let log = Arc::new(LogManager::create_faulty(Arc::clone(&disk)).unwrap());
    log.set_master(Lsn::NULL).unwrap();

    // One transaction committed durably before the fault point.
    let b = log.append(100, Lsn::NULL, LogBody::Begin);
    let c = log.append(100, b, LogBody::Commit);
    log.flush(c).unwrap();

    // The next force dies after swapping buffers, before writing: the
    // "process" is killed mid-protocol.
    let fired = Arc::new(AtomicBool::new(false));
    {
        let disk = Arc::clone(&disk);
        let fired = Arc::clone(&fired);
        log.set_force_hook(Some(Box::new(move |p| {
            if p == bess_wal::ForcePoint::AfterSwap
                && !fired.swap(true, Ordering::Relaxed)
            {
                disk.crash();
            }
        })));
    }

    let results = concurrent_commits(&log, 4);
    assert!(fired.load(Ordering::Relaxed), "fault point never reached");
    // Every committer died with the group (later groups hit the poisoned
    // disk); nobody was acked.
    for (txn, res) in &results {
        assert!(res.is_err(), "txn {txn} acked by a force that never synced");
    }

    // Reopen: only the pre-fault commit survived, and recovery over the
    // durable prefix is clean and idempotent.
    disk.reopen(FaultPlan::unarmed());
    let log2 = LogManager::open_faulty(Arc::clone(&disk)).unwrap();
    assert_eq!(
        durable_committers(&log2),
        BTreeSet::from([100]),
        "the killed group must be absent from the durable image"
    );
    let set = Arc::new(AreaSet::new()); // updates target no mounted area
    let report = recover_embedded(&log2, &set).unwrap();
    assert!(report.in_doubt.is_empty());
    let report2 = recover_embedded(&log2, &set).unwrap();
    assert!(report2.losers.is_empty(), "recovery idempotent");
}

/// Crash after the sync but before followers wake: the group *is* durable
/// (the sync completed) even though, had the process died there, no
/// client would have seen the ack. Recovery must honor the durable
/// Commit records exactly once; commits whose bytes missed that final
/// sync must not be acked and must be absent after the crash.
#[test]
fn group_commit_crash_after_sync_before_wakeup() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let disk = FaultDisk::new(FaultPlan::unarmed());
    let log = Arc::new(LogManager::create_faulty(Arc::clone(&disk)).unwrap());
    log.set_master(Lsn::NULL).unwrap();

    // The first completed sync is also the disk's last: the crash lands
    // after the durable image caught up, before any waiter is woken.
    let fired = Arc::new(AtomicBool::new(false));
    {
        let disk = Arc::clone(&disk);
        let fired = Arc::clone(&fired);
        log.set_force_hook(Some(Box::new(move |p| {
            if p == bess_wal::ForcePoint::AfterSync
                && !fired.swap(true, Ordering::Relaxed)
            {
                disk.crash();
            }
        })));
    }

    let results = concurrent_commits(&log, 4);
    assert!(fired.load(Ordering::Relaxed), "fault point never reached");
    let acked: BTreeSet<u64> = results
        .iter()
        .filter(|(_, r)| r.is_ok())
        .map(|(t, _)| *t)
        .collect();
    assert!(!acked.is_empty(), "the synced group's members were acked");

    // Crash-equivalence both ways: acked == durable, exactly.
    disk.reopen(FaultPlan::unarmed());
    let log2 = LogManager::open_faulty(Arc::clone(&disk)).unwrap();
    assert_eq!(
        durable_committers(&log2),
        acked,
        "durable commits must be exactly the acknowledged ones"
    );
    let set = Arc::new(AreaSet::new());
    let report = recover_embedded(&log2, &set).unwrap();
    for txn in &acked {
        assert!(
            !report.losers.contains(txn),
            "acked txn {txn} rolled back by recovery"
        );
    }
    let report2 = recover_embedded(&log2, &set).unwrap();
    assert!(report2.losers.is_empty(), "recovery idempotent");
}

/// The full write-index sweep over a *concurrent* group-commit workload:
/// arm a kill at each log write. Whatever interleaving the scheduler
/// produced, acked commits must survive the crash and unacked ones whose
/// group died must not leak an ack.
#[test]
fn group_commit_concurrent_write_crash_sweep() {
    for nth in 0..4 {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let log = Arc::new(LogManager::create_faulty(Arc::clone(&disk)).unwrap());
        log.set_master(Lsn::NULL).unwrap();
        disk.arm(FaultPlan::armed(OpClass::Write, nth, FaultKind::Crash));

        let results = concurrent_commits(&log, 6);
        let acked: BTreeSet<u64> = results
            .iter()
            .filter(|(_, r)| r.is_ok())
            .map(|(t, _)| *t)
            .collect();

        disk.reopen(FaultPlan::unarmed());
        let log2 = LogManager::open_faulty(Arc::clone(&disk)).unwrap();
        let durable = durable_committers(&log2);
        // Acks imply durability; a commit killed before its sync is not
        // durable and must not have been acked.
        for txn in &acked {
            assert!(
                durable.contains(txn),
                "nth={nth}: txn {txn} acked but not durable"
            );
        }
        for txn in &durable {
            // The converse need not hold (a group can be durable yet
            // unacked if the crash raced the wakeup), but any durable
            // commit must at least have been submitted.
            assert!(*txn >= 1 && *txn <= 6);
        }
    }
}
