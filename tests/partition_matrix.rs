//! Deterministic network-fault matrix for the client–server layer — the
//! wire-level twin of `tests/crash_matrix.rs`.
//!
//! A scripted client runs a fixed two-transaction workload against two
//! BeSS servers (one distributed 2PC commit, one single-server commit).
//! The harness first runs it clean to learn the exact outbound message
//! count, then replays it with a [`NetFaultPlan`] armed at every message
//! index × every fault kind: the request vanishes, is delayed, is
//! duplicated, loses its reply, or the client's cable is pulled.
//!
//! After every run the client is declared dead ([`BessServer::expire_lease`])
//! and the failure-containment invariants are asserted:
//!
//! * no lock or callback copy is still owned by the dead client;
//! * no shipped-but-unprepared update set survives it;
//! * every prepared 2PC branch is resolved (presumed abort);
//! * the durable pages are atomic — the distributed transaction's two
//!   writes land together or not at all — and byte-identical to the
//!   clean-run oracle whenever the client observed both commits;
//! * a duplicated or reply-dropped commit executes **exactly once**
//!   (request-id dedup), never twice;
//! * a fresh client can immediately lock everything the dead one held.
//!
//! The default run keeps the cheap full sweeps (Disconnect, Duplicate)
//! plus targeted commit-ambiguity cases; the slow sweeps (Drop, DropReply,
//! Delay — each faulted RPC costs a real client timeout) run under
//! `--features crash-tests`, like the crash matrix.

use std::sync::Arc;
use std::time::Duration;

use bess_cache::{AreaSet, DbPage};
use bess_lock::LockMode;
use bess_net::{NetFaultKind, NetFaultPlan, Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, ClientError, ClientOpts, ClientResult,
    Directory, Msg, PageUpdate, RemoteSpace, ServerConfig, Vote,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::{LogBody, LogManager, Lsn};

const CLIENT: NodeId = NodeId(1);
const CHECKER: NodeId = NodeId(2);
const SRV0: NodeId = NodeId(100);
const SRV1: NodeId = NodeId(101);

/// The scripted workload's outbound client messages, in order:
///
/// | idx | message                          | txn |
/// |-----|----------------------------------|-----|
/// | 0   | BeginTxn → srv0                  | A   |
/// | 1   | FetchPage p0 (X) → srv0          | A   |
/// | 2   | FetchPage p1 (X) → srv1          | A   |
/// | 3   | BeginGlobal → srv0               | A   |
/// | 4,5 | ShipUpdates → srv0, srv1         | A   |
/// | 6   | CommitGlobal → srv0              | A   |
/// | 7,8 | ReleaseAll → srv0, srv1          | A   |
/// | 9   | BeginTxn → srv0                  | B   |
/// | 10  | FetchPage p0 (X) → srv0          | B   |
/// | 11  | Commit → srv0                    | B   |
/// | 12  | ReleaseAll → srv0                | B   |
///
/// The control run asserts this count so a protocol change updates the
/// targeted indices below instead of silently skewing the sweep.
const WORKLOAD_MSGS: u64 = 13;
const IDX_COMMIT_GLOBAL: u64 = 6;
const IDX_COMMIT: u64 = 11;

struct Cluster {
    net: Arc<Network<Msg>>,
    dir: Arc<Directory>,
    servers: Vec<BessServer>,
    p0: DbPage,
    p1: DbPage,
}

fn build() -> Cluster {
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let mut servers = Vec::new();
    for (i, area) in [0u32, 1].iter().enumerate() {
        let set = Arc::new(AreaSet::new());
        set.add(Arc::new(
            StorageArea::create_mem(AreaId(*area), AreaConfig::default()).unwrap(),
        ));
        // LINT: allow(cast) — two servers.
        let node = NodeId(SRV0.0 + i as u32);
        register_areas(&dir, node, &set);
        let mut cfg = ServerConfig::new(node);
        // The matrix injects death explicitly via `expire_lease`; a long
        // lease keeps the serve loop's own reaper out of the way, and a
        // zero grace makes prepared-branch resolution immediate.
        cfg.lease_duration = Duration::from_secs(60);
        cfg.coordinator_grace = Duration::ZERO;
        let (s, _) = BessServer::start(cfg, set, LogManager::create_mem(), &net);
        servers.push(s);
    }
    let p0 = {
        let seg = servers[0].areas().get(0).unwrap().alloc(1).unwrap();
        DbPage { area: 0, page: seg.start_page }
    };
    let p1 = {
        let seg = servers[1].areas().get(1).unwrap().alloc(1).unwrap();
        DbPage { area: 1, page: seg.start_page }
    };
    Cluster { net, dir, servers, p0, p1 }
}

fn connect(cluster: &Cluster, node: NodeId) -> Arc<ClientConn> {
    let mut cfg = ClientConfig::new(node, SRV0);
    cfg.caching = false;
    // Short timeout so a faulted RPC resolves quickly; heartbeats pushed
    // out of the way so the fault plan's message index stays deterministic
    // (the dedicated lease tests below turn them back on).
    cfg.rpc_timeout = Duration::from_millis(200);
    cfg.heartbeat_interval = Duration::from_secs(60);
    cfg.retry_base = Duration::from_millis(1);
    ClientConn::connect(&cluster.net, Arc::clone(&cluster.dir), cfg)
}

fn upd(p: DbPage, before: &[u8], after: &[u8]) -> PageUpdate {
    PageUpdate { page: p, offset: 0, before: before.to_vec(), after: after.to_vec() }
}

/// Transaction A: a distributed commit writing `aa` to both pages.
fn txn_a(c: &ClientConn, p0: DbPage, p1: DbPage) -> ClientResult<()> {
    c.begin()?;
    c.fetch_page(p0, LockMode::X)?;
    c.fetch_page(p1, LockMode::X)?;
    c.commit(vec![upd(p0, &[0; 2], b"aa"), upd(p1, &[0; 2], b"aa")])
}

/// Transaction B: a single-server commit writing `bb` over p0.
fn txn_b(c: &ClientConn, p0: DbPage) -> ClientResult<()> {
    c.begin()?;
    c.fetch_page(p0, LockMode::X)?;
    c.commit(vec![upd(p0, b"aa", b"bb")])
}

struct CaseResult {
    /// The client observed transaction A (B) commit.
    a_ok: bool,
    b_ok: bool,
    /// Client messages counted by the plan (meaningful in the control run
    /// only — once a plan fires it disarms and counts everyone).
    msgs: u64,
    fired: u64,
    /// `server.dedup_hits` at SRV0 after the case ran.
    dedup_hits0: u64,
    /// `server.coordinated` at SRV0 after the case ran.
    coordinated0: u64,
    client_retries: u64,
    /// Durable page images after reclamation.
    d0: Vec<u8>,
    d1: Vec<u8>,
}

fn read_page_bytes(srv: &BessServer, p: DbPage) -> Vec<u8> {
    let area = srv.areas().get(p.area).unwrap();
    let mut buf = vec![0u8; area.page_size()];
    area.read_page(p.page, &mut buf).unwrap();
    buf
}

/// Runs the scripted workload with `kind` armed at client message `at`,
/// kills the client, reclaims it, and asserts every containment invariant.
fn run_case(kind: NetFaultKind, at: u64) -> CaseResult {
    let cluster = build();
    let label = format!("{kind:?} at client message {at}");
    let plan = NetFaultPlan::armed_from(CLIENT, at, kind);
    cluster.net.arm(Arc::clone(&plan));

    let client = connect(&cluster, CLIENT);
    let mut a_ok = false;
    let mut b_ok = false;
    let mut died = false;
    match txn_a(&client, cluster.p0, cluster.p1) {
        Ok(()) => a_ok = true,
        // A transport failure the retry policy could not absorb: the
        // client stops mid-protocol, exactly like a crashed process.
        Err(ClientError::Net(_)) => died = true,
        // A server-side abort (e.g. a lost ship aborted the global
        // transaction); the client lives on.
        Err(_) => {}
    }
    if !died && txn_b(&client, cluster.p0).is_ok() {
        b_ok = true;
    }
    let msgs = plan.msgs();
    let fired = plan.fired();
    let client_retries = client.stats().retries.get();

    // The client machine goes away — whatever it was doing stays behind
    // on the servers until lease reclamation collects it.
    cluster.net.partition(CLIENT);
    client.disconnect();
    for s in &cluster.servers {
        s.expire_lease(CLIENT);
    }

    // ---- containment invariants ---------------------------------------
    for s in &cluster.servers {
        assert!(
            !s.has_lease(CLIENT),
            "[{label}] dead client still holds a lease at {}",
            s.node()
        );
        let leaked = s.locks_held_by(CLIENT);
        assert!(
            leaked.is_empty(),
            "[{label}] dead client leaked locks at {}: {leaked:?}",
            s.node()
        );
        let pending = s.pending_gtxns();
        assert!(
            pending.is_empty(),
            "[{label}] shipped updates survived reclamation at {}: {pending:?}",
            s.node()
        );
        let in_doubt = s.in_doubt();
        assert!(
            in_doubt.is_empty(),
            "[{label}] unresolved prepared branches at {}: {in_doubt:?}",
            s.node()
        );
    }

    // ---- durable atomicity ----------------------------------------------
    let d0 = read_page_bytes(&cluster.servers[0], cluster.p0);
    let d1 = read_page_bytes(&cluster.servers[1], cluster.p1);
    let a_durable = &d1[0..2] == b"aa";
    let b_durable = &d0[0..2] == b"bb";
    if a_durable {
        assert!(
            &d0[0..2] == b"aa" || &d0[0..2] == b"bb",
            "[{label}] 2PC atomicity violated: p1 committed, p0 = {:?}",
            &d0[0..2]
        );
    } else {
        assert!(
            d0[0..2] == [0, 0] || &d0[0..2] == b"bb",
            "[{label}] 2PC atomicity violated: p1 aborted, p0 = {:?}",
            &d0[0..2]
        );
    }
    if a_ok {
        assert!(a_durable, "[{label}] client saw global commit, updates lost");
    }
    if b_ok {
        assert!(b_durable, "[{label}] client saw commit B, update lost");
    }

    // ---- exactly-once commits ------------------------------------------
    // `commits` counts local commits plus committed 2PC branches, so each
    // server's total is pinned exactly by what is durably on disk: a
    // duplicated or retried commit that executed twice would overshoot.
    let snap0 = cluster.servers[0].stats();
    let snap1 = cluster.servers[1].stats();
    assert_eq!(
        snap0.commits.get(),
        u64::from(a_durable) + u64::from(b_durable),
        "[{label}] commit applied more than once at {}",
        SRV0
    );
    assert_eq!(
        snap1.commits.get(),
        u64::from(a_durable),
        "[{label}] commit applied more than once at {}",
        SRV1
    );
    assert!(
        snap0.coordinated.get() <= 1,
        "[{label}] global commit coordinated {} times",
        snap0.coordinated.get()
    );

    // ---- a fresh client inherits the world cleanly ----------------------
    let checker = connect(&cluster, CHECKER);
    checker.begin().unwrap();
    checker
        .fetch_page(cluster.p0, LockMode::X)
        .unwrap_or_else(|e| panic!("[{label}] ghost lock on p0: {e}"));
    checker
        .fetch_page(cluster.p1, LockMode::X)
        .unwrap_or_else(|e| panic!("[{label}] ghost lock on p1: {e}"));
    checker.abort().unwrap();
    checker.disconnect();

    let dedup_hits0 = snap0.dedup_hits.get();
    let coordinated0 = snap0.coordinated.get();
    CaseResult { a_ok, b_ok, msgs, fired, dedup_hits0, coordinated0, client_retries, d0, d1 }
}

/// Fault-free control: the workload commits both transactions, produces
/// the oracle page images, and pins the message-index layout the targeted
/// cases below rely on.
fn control() -> CaseResult {
    // Armed far past the workload so the plan counts but never fires (and
    // keeps its from-filter for the whole run).
    let r = run_case(NetFaultKind::Drop, u64::MAX);
    assert_eq!(r.fired, 0);
    assert!(r.a_ok && r.b_ok, "clean run must commit both transactions");
    assert_eq!(
        r.msgs, WORKLOAD_MSGS,
        "workload message layout changed; update the index table"
    );
    assert_eq!(&r.d0[0..2], b"bb");
    assert_eq!(&r.d1[0..2], b"aa");
    r
}

/// Sweeps `kind` over every client message index, comparing survivors
/// against the oracle.
fn sweep(kind: NetFaultKind) {
    let oracle = control();
    for at in 0..WORKLOAD_MSGS {
        let r = run_case(kind, at);
        assert_eq!(r.fired, 1, "{kind:?} at {at} never fired");
        if r.a_ok && r.b_ok {
            // Both commits observed: the durable image must be exactly the
            // clean run's, whatever the fault did on the way.
            assert_eq!(r.d0, oracle.d0, "{kind:?} at {at} corrupted p0");
            assert_eq!(r.d1, oracle.d1, "{kind:?} at {at} corrupted p1");
        }
    }
}

#[test]
fn control_workload_is_clean() {
    control();
}

/// The cable-pull sweep: the client is partitioned at every message index
/// in turn. Fails fast (no timeouts), so the full sweep runs by default.
#[test]
fn disconnect_at_every_message_index() {
    sweep(NetFaultKind::Disconnect);
}

/// The retransmission sweep: every message is delivered twice at every
/// index in turn. Commits must apply exactly once (request-id dedup).
#[test]
fn duplicate_at_every_message_index() {
    sweep(NetFaultKind::Duplicate);
}

/// A duplicated commit request is answered from the dedup window: the
/// server executes it once and replays the recorded reply.
#[test]
fn duplicated_commit_applies_exactly_once() {
    // (`run_case` itself pins the commit counters to the durable state;
    // these cases additionally prove the dedup window was what saved us.)
    let r = run_case(NetFaultKind::Duplicate, IDX_COMMIT);
    assert!(r.a_ok && r.b_ok);
    assert!(r.dedup_hits0 >= 1, "duplicate commit missed the dedup window");

    let r = run_case(NetFaultKind::Duplicate, IDX_COMMIT_GLOBAL);
    assert!(r.a_ok && r.b_ok);
    assert_eq!(r.coordinated0, 1);
    assert!(r.dedup_hits0 >= 1, "duplicate global commit missed the dedup window");
}

/// The classic "did my commit land?" ambiguity: the commit executes but
/// its reply is lost. The client retries with the same request id and the
/// server answers from the dedup window instead of committing twice.
#[test]
fn lost_commit_reply_resolves_by_idempotent_retry() {
    let r = run_case(NetFaultKind::DropReply, IDX_COMMIT);
    assert!(r.b_ok, "retried commit should have been acknowledged");
    assert!(r.dedup_hits0 >= 1);
    assert!(r.client_retries >= 1);

    let r = run_case(NetFaultKind::DropReply, IDX_COMMIT_GLOBAL);
    assert!(r.a_ok, "retried global commit should have been acknowledged");
    assert_eq!(r.coordinated0, 1, "reply-dropped global commit ran 2PC twice");
    assert!(r.dedup_hits0 >= 1);
    assert!(r.client_retries >= 1);
}

/// A vanished request is invisible end-to-end: the retry layer absorbs it
/// (representative indices; the full sweep runs under `crash-tests`).
#[test]
fn dropped_request_is_absorbed_by_retry_representative() {
    for at in [0, 1, IDX_COMMIT_GLOBAL, IDX_COMMIT] {
        let r = run_case(NetFaultKind::Drop, at);
        assert_eq!(r.fired, 1);
        assert!(r.a_ok && r.b_ok, "Drop at {at} was not absorbed");
        assert!(r.client_retries >= 1);
    }
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn drop_at_every_message_index_full() {
    sweep(NetFaultKind::Drop);
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn drop_reply_at_every_message_index_full() {
    sweep(NetFaultKind::DropReply);
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn delay_at_every_message_index_full() {
    // Shorter than the client's RPC timeout: pure latency, no failure.
    sweep(NetFaultKind::Delay(Duration::from_millis(50)));
}

// ---- sublinear-commit opts: presumed commit, batching, piggybacking ---------
//
// The same fault matrix, replayed against a client running with every
// message-saving opt enabled ([`ClientOpts::turbo`]): lazy local begin,
// deferred lock release as trailers, prefetched global transaction ids,
// every write branch riding the `CommitGlobal` frame (the coordinator
// forwards remote branches inside their phase-1 `PrepareItem`s), and
// read-only participants releasing locks at their phase-1 vote. The wire
// layout is different — and much shorter — so it gets its own pinned
// message table.
//
// | idx | message                                      | txn |
// |-----|----------------------------------------------|-----|
// | 0   | FetchPage p0 (X) → srv0                      | A   |
// | 1   | FetchPage p1 (X) → srv1                      | A   |
// | 2   | BeginGlobal → srv0           (pool is empty) | A   |
// | 3   | CommitGlobal → srv0 [+branches, +prefetch]   | A   |
// | 4   | FetchPage p0 (X) → srv0     [+ReleaseAll]    | B   |
// | 5   | FetchPage p1 (S) → srv1     [+ReleaseAll]    | B   |
// | 6   | CommitGlobal → srv0 [+branches, +prefetch]   | B   |
//
// No `BeginTxn`, no standalone `ReleaseAll`, no `ShipUpdates` at all
// (txn A's remote branch travels inside the `CommitGlobal` frame and is
// forwarded with srv1's `Prepare`), no second `BeginGlobal` (prefetched
// by the trailer on message 3), and srv1 — read-only in txn B — votes at
// phase 1 and is never contacted again.
const TURBO_WORKLOAD_MSGS: u64 = 7;
const TURBO_IDX_COMMIT_A: u64 = 3;
const TURBO_IDX_COMMIT_B: u64 = 6;

fn connect_turbo(cluster: &Cluster, node: NodeId) -> Arc<ClientConn> {
    let mut cfg = ClientConfig::new(node, SRV0);
    cfg.caching = false;
    cfg.rpc_timeout = Duration::from_millis(200);
    cfg.heartbeat_interval = Duration::from_secs(60);
    cfg.retry_base = Duration::from_millis(1);
    cfg.opts = ClientOpts::turbo();
    ClientConn::connect(&cluster.net, Arc::clone(&cluster.dir), cfg)
}

/// Turbo transaction A: a two-writer distributed commit (`aa` to both
/// pages) — exercises the batched phase 1 and the one-way presumed-commit
/// phase 2 towards srv1.
fn txn_a_turbo(c: &ClientConn, p0: DbPage, p1: DbPage) -> ClientResult<()> {
    c.begin()?;
    c.fetch_page(p0, LockMode::X)?;
    c.fetch_page(p1, LockMode::X)?;
    c.commit(vec![upd(p0, &[0; 2], b"aa"), upd(p1, &[0; 2], b"aa")])
}

/// Turbo transaction B: reads p1, writes p0 — srv1 is enrolled as a
/// read-only participant, votes `VoteReadOnly`, releases the client's
/// locks at phase 1, and drops out of phase 2.
fn txn_b_turbo(c: &ClientConn, p0: DbPage, p1: DbPage) -> ClientResult<()> {
    c.begin()?;
    c.fetch_page(p0, LockMode::X)?;
    c.fetch_page(p1, LockMode::S)?;
    c.commit(vec![upd(p0, b"aa", b"bb")])
}

struct TurboCaseResult {
    a_ok: bool,
    b_ok: bool,
    msgs: u64,
    fired: u64,
    readonly_votes1: u64,
    oneway_decides0: u64,
    d0: Vec<u8>,
    d1: Vec<u8>,
}

/// The turbo twin of [`run_case`]: same fault injection, same kill, same
/// containment invariants, different (shorter) wire conversation.
fn run_case_turbo(kind: NetFaultKind, at: u64) -> TurboCaseResult {
    let cluster = build();
    let label = format!("turbo {kind:?} at client message {at}");
    let plan = NetFaultPlan::armed_from(CLIENT, at, kind);
    cluster.net.arm(Arc::clone(&plan));

    let client = connect_turbo(&cluster, CLIENT);
    let mut a_ok = false;
    let mut b_ok = false;
    let mut died = false;
    match txn_a_turbo(&client, cluster.p0, cluster.p1) {
        Ok(()) => a_ok = true,
        Err(ClientError::Net(_)) => died = true,
        Err(_) => {}
    }
    if !died && txn_b_turbo(&client, cluster.p0, cluster.p1).is_ok() {
        b_ok = true;
    }
    let msgs = plan.msgs();
    let fired = plan.fired();

    cluster.net.partition(CLIENT);
    client.disconnect();
    for s in &cluster.servers {
        s.expire_lease(CLIENT);
    }

    for s in &cluster.servers {
        assert!(!s.has_lease(CLIENT), "[{label}] dead client still leased at {}", s.node());
        let leaked = s.locks_held_by(CLIENT);
        assert!(
            leaked.is_empty(),
            "[{label}] dead client leaked locks at {}: {leaked:?}",
            s.node()
        );
        let pending = s.pending_gtxns();
        assert!(
            pending.is_empty(),
            "[{label}] shipped updates survived reclamation at {}: {pending:?}",
            s.node()
        );
        let in_doubt = s.in_doubt();
        assert!(
            in_doubt.is_empty(),
            "[{label}] unresolved prepared branches at {}: {in_doubt:?}",
            s.node()
        );
    }

    let d0 = read_page_bytes(&cluster.servers[0], cluster.p0);
    let d1 = read_page_bytes(&cluster.servers[1], cluster.p1);
    let a_durable = &d1[0..2] == b"aa";
    if a_durable {
        assert!(
            &d0[0..2] == b"aa" || &d0[0..2] == b"bb",
            "[{label}] 2PC atomicity violated: p1 committed, p0 = {:?}",
            &d0[0..2]
        );
    } else {
        assert!(
            d0[0..2] == [0, 0],
            "[{label}] 2PC atomicity violated: p1 aborted, p0 = {:?}",
            &d0[0..2]
        );
    }
    if a_ok {
        assert!(a_durable, "[{label}] client saw global commit, updates lost");
    }
    if b_ok {
        assert!(&d0[0..2] == b"bb", "[{label}] client saw commit B, update lost");
    }

    // Exactly-once, even with one-way decides and replayed trailers: each
    // server's commit count is pinned by what is durably on disk.
    let b_durable = &d0[0..2] == b"bb";
    let snap0 = cluster.servers[0].stats();
    let snap1 = cluster.servers[1].stats();
    assert_eq!(
        snap0.commits.get(),
        u64::from(a_durable) + u64::from(b_durable),
        "[{label}] commit applied more than once at {}",
        SRV0
    );
    assert_eq!(
        snap1.commits.get(),
        u64::from(a_durable),
        "[{label}] commit applied more than once at {}",
        SRV1
    );

    let checker = connect(&cluster, CHECKER);
    checker.begin().unwrap();
    checker
        .fetch_page(cluster.p0, LockMode::X)
        .unwrap_or_else(|e| panic!("[{label}] ghost lock on p0: {e}"));
    checker
        .fetch_page(cluster.p1, LockMode::X)
        .unwrap_or_else(|e| panic!("[{label}] ghost lock on p1: {e}"));
    checker.abort().unwrap();
    checker.disconnect();

    TurboCaseResult {
        a_ok,
        b_ok,
        msgs,
        fired,
        readonly_votes1: snap1.two_pc_readonly_votes.get(),
        oneway_decides0: snap0.two_pc_oneway_decides.get(),
        d0,
        d1,
    }
}

/// Fault-free turbo control: pins the opt-in message layout (8 messages
/// against the default path's 13) and proves the new machinery actually
/// ran — a read-only vote at srv1, a one-way decide from srv0.
fn control_turbo() -> TurboCaseResult {
    let r = run_case_turbo(NetFaultKind::Drop, u64::MAX);
    assert_eq!(r.fired, 0);
    assert!(r.a_ok && r.b_ok, "clean turbo run must commit both transactions");
    assert_eq!(
        r.msgs, TURBO_WORKLOAD_MSGS,
        "turbo workload message layout changed; update the index table"
    );
    assert_eq!(&r.d0[0..2], b"bb");
    assert_eq!(&r.d1[0..2], b"aa");
    assert_eq!(r.readonly_votes1, 1, "srv1 should vote read-only once (txn B), got {}", r.readonly_votes1);
    assert!(r.oneway_decides0 >= 1, "txn A's decide should be a one-way send");
    r
}

/// Sweeps `kind` over every turbo client message index.
fn sweep_turbo(kind: NetFaultKind) {
    let oracle = control_turbo();
    for at in 0..TURBO_WORKLOAD_MSGS {
        let r = run_case_turbo(kind, at);
        assert_eq!(r.fired, 1, "turbo {kind:?} at {at} never fired");
        if r.a_ok && r.b_ok {
            assert_eq!(r.d0, oracle.d0, "turbo {kind:?} at {at} corrupted p0");
            assert_eq!(r.d1, oracle.d1, "turbo {kind:?} at {at} corrupted p1");
        }
    }
}

#[test]
fn turbo_control_workload_is_clean() {
    control_turbo();
}

#[test]
fn turbo_disconnect_at_every_message_index() {
    sweep_turbo(NetFaultKind::Disconnect);
}

#[test]
fn turbo_duplicate_at_every_message_index() {
    sweep_turbo(NetFaultKind::Duplicate);
}

/// A duplicated or reply-dropped `CommitGlobal` frame must not re-run its
/// trailers: the piggybacked `ShipUpdates` and `BeginGlobal` ride the
/// dedup window with their carrier, so the round commits exactly once.
#[test]
fn turbo_duplicated_and_retried_commits_apply_exactly_once() {
    for idx in [TURBO_IDX_COMMIT_A, TURBO_IDX_COMMIT_B] {
        let r = run_case_turbo(NetFaultKind::Duplicate, idx);
        assert!(r.a_ok && r.b_ok, "duplicate at {idx} broke the workload");
        let r = run_case_turbo(NetFaultKind::DropReply, idx);
        assert!(
            r.a_ok && r.b_ok,
            "reply-dropped commit at {idx} was not resolved by retry"
        );
    }
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn turbo_drop_at_every_message_index_full() {
    sweep_turbo(NetFaultKind::Drop);
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn turbo_drop_reply_at_every_message_index_full() {
    sweep_turbo(NetFaultKind::DropReply);
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn turbo_delay_at_every_message_index_full() {
    sweep_turbo(NetFaultKind::Delay(Duration::from_millis(50)));
}

// ---- presumed commit: the one-way decide can vanish -------------------------

/// Presumed commit's bargain: the commit decide is an unacknowledged send,
/// so it can be lost — and the participant's branch must still commit,
/// because the coordinator's force-logged decision is never pruned and
/// `QueryDecision` serves it to the participant's reaper.
#[test]
fn dropped_oneway_decide_resolves_via_decision_query() {
    let cluster = build();
    // Fault the *coordinator's* outbound traffic: message 0 is the
    // PrepareBatch call to srv1, message 1 the one-way DecideBatch.
    let plan = NetFaultPlan::armed_from(SRV0, 1, NetFaultKind::Drop);
    cluster.net.arm(Arc::clone(&plan));

    let client = connect_turbo(&cluster, CLIENT);
    txn_a_turbo(&client, cluster.p0, cluster.p1).expect("commit must succeed");
    assert_eq!(plan.fired(), 1, "the decide send was not faulted");

    // The client was told "committed" (the coordinator's decision is
    // durable), but srv1 never heard phase 2: its branch is in doubt.
    assert_eq!(cluster.servers[1].in_doubt().len(), 1);

    // The client dies; srv1's reaper resolves the branch by asking the
    // coordinator — presumed *commit* means the answer is served from the
    // never-pruned decision table, not guessed.
    cluster.net.partition(CLIENT);
    client.disconnect();
    for s in &cluster.servers {
        s.expire_lease(CLIENT);
    }
    assert!(cluster.servers[1].in_doubt().is_empty());
    assert_eq!(
        &read_page_bytes(&cluster.servers[1], cluster.p1)[0..2],
        b"aa",
        "lost decide must not lose the committed branch"
    );
    assert_eq!(cluster.servers[1].stats().commits.get(), 1);
    assert_eq!(&read_page_bytes(&cluster.servers[0], cluster.p0)[0..2], b"aa");
}

/// A coordinator that crashes after force-logging its commit decision but
/// before (or while) delivering phase 2 re-sends the decides at restart:
/// `GlobalDecision` without a matching `End` is exactly the undelivered
/// window.
#[test]
fn coordinator_restart_resends_undelivered_decides() {
    let net: Arc<Network<Msg>> = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = Arc::new(AreaSet::new());
    set.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, SRV0, &set);

    // The participant is a bare endpoint so the re-sent decide is observable.
    let participant = net.register(SRV1);

    // Seed the coordinator's log as the crash left it: decision forced,
    // no End.
    let gtxn = (u64::from(SRV0.0) << 32) | 42;
    let log = LogManager::create_mem();
    let lsn = log.append(
        gtxn,
        Lsn::NULL,
        LogBody::GlobalDecision { commit: true, participants: vec![SRV1.0] },
    );
    log.flush(lsn).unwrap();

    let (srv, _) = BessServer::start(ServerConfig::new(SRV0), set, log, &net);
    assert_eq!(srv.stats().two_pc_decide_resends.get(), 1);
    let env = participant.recv(Duration::from_secs(2)).expect("re-sent decide");
    match env.msg {
        Msg::DecideBatch { ref decisions } => {
            assert_eq!(decisions, &vec![(gtxn, true)]);
        }
        other => panic!("expected re-sent DecideBatch, got {other:?}"),
    }

    // The decision survives restart for late queries (presumed commit
    // never prunes), and an unknown transaction is still presumed abort.
    let q = net.register(CHECKER);
    let t = Duration::from_secs(2);
    assert_eq!(
        q.call(SRV0, Msg::QueryDecision { gtxn }, t).unwrap(),
        Msg::Decision { committed: true }
    );
    assert_eq!(
        q.call(SRV0, Msg::QueryDecision { gtxn: gtxn + 1 }, t).unwrap(),
        Msg::Unknown
    );
}

// ---- lease lifecycle -----------------------------------------------------

/// Heartbeats keep an idle client alive through many reaper passes; once
/// the client vanishes, the serve loop reaps it on its own (no manual
/// `expire_lease`) and releases its locks.
#[test]
fn heartbeats_sustain_lease_and_silence_is_reaped() {
    // One server with a short lease (the shared `build()` uses a long one
    // precisely to keep the automatic reaper out of the fault matrix).
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = Arc::new(AreaSet::new());
    set.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, SRV0, &set);
    let mut scfg = ServerConfig::new(SRV0);
    scfg.lease_duration = Duration::from_millis(300);
    let (srv, _) = BessServer::start(scfg, set, LogManager::create_mem(), &net);
    let seg = srv.areas().get(0).unwrap().alloc(1).unwrap();
    let p0 = DbPage { area: 0, page: seg.start_page };

    let mut cfg = ClientConfig::new(CLIENT, SRV0);
    cfg.caching = false;
    // The listener renews on its ~50 ms idle tick; 6× inside the lease.
    cfg.heartbeat_interval = Duration::from_millis(10);
    let client = ClientConn::connect(&net, Arc::clone(&dir), cfg);
    client.begin().unwrap();
    client.fetch_page(p0, LockMode::X).unwrap();

    // Far longer than the lease: only heartbeats keep the client alive.
    std::thread::sleep(Duration::from_millis(900));
    assert!(srv.has_lease(CLIENT), "heartbeats failed to renew the lease");
    assert!(
        !srv.locks_held_by(CLIENT).is_empty(),
        "live client's locks were reaped"
    );
    assert!(client.stats().heartbeats.get() > 0);

    // Pull the cable; the serve loop's own reaper must collect the client.
    net.partition(CLIENT);
    std::thread::sleep(Duration::from_millis(900));
    assert!(!srv.has_lease(CLIENT), "silent client's lease survived");
    assert!(
        srv.locks_held_by(CLIENT).is_empty(),
        "silent client's locks survived"
    );
    assert!(srv.stats().leases_expired.get() >= 1);
    client.disconnect();
}

/// Lease reclamation frees a dead lock-holder's resources for waiters.
#[test]
fn dead_lock_holder_is_reclaimed_for_the_next_client() {
    let cluster = build();
    let victim = connect(&cluster, CLIENT);
    victim.begin().unwrap();
    victim.fetch_page(cluster.p0, LockMode::X).unwrap();
    cluster.net.partition(CLIENT);

    cluster.servers[0].expire_lease(CLIENT);
    assert!(cluster.servers[0].locks_held_by(CLIENT).is_empty());

    let next = connect(&cluster, CHECKER);
    next.begin().unwrap();
    next.fetch_page(cluster.p0, LockMode::X)
        .expect("reclaimed lock must be grantable immediately");
    next.abort().unwrap();
    next.disconnect();
    victim.disconnect();
}

// ---- graceful degradation -------------------------------------------------

/// Drain mode: in-flight transactions finish, new ones are turned away.
#[test]
fn draining_server_finishes_old_work_and_rejects_new() {
    let cluster = build();
    let client = connect(&cluster, CLIENT);
    client.begin().unwrap();
    client.fetch_page(cluster.p0, LockMode::X).unwrap();

    cluster.servers[0].set_draining(true);
    // The in-flight transaction runs to completion...
    client.commit(vec![upd(cluster.p0, &[0; 2], b"dd")]).unwrap();
    // ...but a new one is rejected.
    assert!(matches!(client.begin(), Err(ClientError::Server(_))));
    assert!(cluster.servers[0].stats().drain_rejections.get() >= 1);

    cluster.servers[0].set_draining(false);
    client.begin().unwrap();
    client.abort().unwrap();
    client.disconnect();
}

/// Read-only fallback: reads keep flowing, every mutation is refused.
#[test]
fn read_only_server_serves_reads_and_refuses_writes() {
    let cluster = build();
    let client = connect(&cluster, CLIENT);

    client.begin().unwrap();
    client.fetch_page(cluster.p0, LockMode::X).unwrap();
    client.commit(vec![upd(cluster.p0, &[0; 2], b"rr")]).unwrap();

    cluster.servers[0].set_read_only(true);
    client.begin().unwrap();
    let data = client.fetch_page(cluster.p0, LockMode::S).unwrap();
    assert_eq!(&data[0..2], b"rr");
    assert!(matches!(
        client.commit(vec![upd(cluster.p0, b"rr", b"xx")]),
        Err(ClientError::Server(_))
    ));
    assert!(cluster.servers[0].stats().read_only_rejections.get() >= 1);
    // The refused commit changed nothing.
    assert_eq!(&read_page_bytes(&cluster.servers[0], cluster.p0)[0..2], b"rr");

    cluster.servers[0].set_read_only(false);
    client.begin().unwrap();
    client.fetch_page(cluster.p0, LockMode::X).unwrap();
    client.commit(vec![upd(cluster.p0, b"rr", b"xx")]).unwrap();
    assert_eq!(&read_page_bytes(&cluster.servers[0], cluster.p0)[0..2], b"xx");
    client.disconnect();
}

// ---- presumed-abort vs in-flight coordinator rounds ------------------------

/// The atomicity race of presumed abort: a participant's reaper queries the
/// coordinator about a dead client's prepared branch *while the coordinator
/// is still collecting phase-1 votes*. The coordinator must answer
/// `DecisionPending` — not `Unknown` — so the branch stays prepared and
/// commits when the round's `Decide` arrives. Reading the mid-round silence
/// as "no record" would abort and undo a branch every other node commits.
#[test]
fn prepared_branch_survives_reaper_while_coordinator_round_runs() {
    const STALL: NodeId = NodeId(102);
    const DRIVER: NodeId = NodeId(3);
    let cluster = build(); // coordinator_grace is zero: reaper queries immediately
    let t = Duration::from_secs(5);
    let gtxn = (u64::from(SRV0.0) << 32) | 7;
    let p1 = cluster.p1;

    // A third participant that votes yes only after a long think, pinning
    // the coordinator's round mid-phase-1 for a deterministic window. It
    // must answer both the batched phase-1 form (the default) and the
    // legacy singleton, and survive the one-way presumed-commit decide.
    let stall_ep = cluster.net.register(STALL);
    let stall = std::thread::spawn(move || loop {
        let Ok(env) = stall_ep.recv(Duration::from_secs(5)) else {
            return;
        };
        match &env.msg {
            Msg::Prepare { .. } => {
                std::thread::sleep(Duration::from_millis(400));
                env.reply(Msg::VoteYes);
            }
            Msg::PrepareBatch { items } => {
                let votes: Vec<(u64, Vote)> =
                    items.iter().map(|i| (i.gtxn, Vote::Yes)).collect();
                std::thread::sleep(Duration::from_millis(400));
                env.reply(Msg::VoteBatch { votes });
            }
            Msg::Decide { .. } => {
                env.reply(Msg::Ok);
                return;
            }
            Msg::DecideBatch { .. } => {
                return;
            }
            _ => env.reply(Msg::Ok),
        }
    });

    // The doomed client ships srv1's branch, then "crashes".
    let cl = cluster.net.register(CLIENT);
    assert_eq!(
        cl.call(
            SRV1,
            Msg::ShipUpdates { gtxn, updates: vec![upd(p1, &[0; 2], b"zz")] },
            t
        )
        .unwrap(),
        Msg::Ok
    );

    // The round runs from a separate driver; srv1 prepares first (votes
    // yes), then the stalled participant holds phase 1 open.
    let driver_net = Arc::clone(&cluster.net);
    let driver = std::thread::spawn(move || {
        let ep = driver_net.register(DRIVER);
        ep.call(
            SRV0,
            Msg::CommitGlobal {
                gtxn,
                participants: vec![SRV1.0, STALL.0],
                req: 0,
                release_read_locks: false,
                branches: vec![],
            },
            t,
        )
        .unwrap()
    });

    // Mid-round: srv1 is prepared, the coordinator has no decision yet.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        cl.call(SRV0, Msg::QueryDecision { gtxn }, t).unwrap(),
        Msg::DecisionPending,
        "mid-round query must report the round as in progress"
    );

    // The shipping client dies; srv1's reaper resolves its prepared branch
    // right now (zero grace). It must be told "retry later", not abort.
    cluster.servers[1].expire_lease(CLIENT);
    assert_eq!(
        cluster.servers[1].in_doubt(),
        vec![gtxn],
        "reaper presumed abort on a branch whose round is still running"
    );
    assert_eq!(cluster.servers[1].stats().aborts.get(), 0);

    // The stalled vote lands, the round commits, and the branch follows.
    // The decide towards srv1 is a one-way presumed-commit send, so the
    // branch lands shortly after the coordinator's reply, not before it.
    assert_eq!(driver.join().unwrap(), Msg::Decision { committed: true });
    stall.join().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if cluster.servers[1].in_doubt().is_empty()
            && &read_page_bytes(&cluster.servers[1], p1)[0..2] == b"zz"
            && cluster.servers[1].stats().commits.get() == 1
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "committed branch lost at the participant: in_doubt={:?} bytes={:?} commits={}",
            cluster.servers[1].in_doubt(),
            &read_page_bytes(&cluster.servers[1], p1)[0..2],
            cluster.servers[1].stats().commits.get()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // With the round over and the client dead, an unknown transaction is
    // still presumed abort — `DecisionPending` must not linger.
    assert_eq!(
        cl.call(SRV0, Msg::QueryDecision { gtxn: gtxn + 1 }, t).unwrap(),
        Msg::Unknown
    );
}

// ---- dedup across client incarnations --------------------------------------

/// A client that crashes and reconnects under the same node id starts a new
/// request-id incarnation: its first commits must execute, not be answered
/// with the previous life's recorded replies from the dedup window.
#[test]
fn reconnected_client_commits_are_not_replayed_from_old_incarnation() {
    let cluster = build();
    let first = connect(&cluster, CLIENT);
    first.begin().unwrap();
    first.fetch_page(cluster.p0, LockMode::X).unwrap();
    first.commit(vec![upd(cluster.p0, &[0; 2], b"11")]).unwrap();
    first.disconnect();

    // Same node id, fresh connection — its first request id must not
    // collide with the dead incarnation's.
    let second = connect(&cluster, CLIENT);
    second.begin().unwrap();
    second.fetch_page(cluster.p0, LockMode::X).unwrap();
    second.commit(vec![upd(cluster.p0, b"11", b"22")]).unwrap();
    second.disconnect();

    assert_eq!(
        &read_page_bytes(&cluster.servers[0], cluster.p0)[0..2],
        b"22",
        "reconnected client's commit was swallowed by a stale dedup entry"
    );
    let snap = cluster.servers[0].stats();
    assert_eq!(snap.dedup_hits.get(), 0, "fresh commit hit a dead incarnation's entry");
    assert_eq!(snap.commits.get(), 2);
}

/// A retried commit whose first delivery already committed is acknowledged
/// from the dedup window even if the server went read-only in between: the
/// transaction is durable, and rejecting the retry would report a false
/// failure. New mutations stay refused.
#[test]
fn degraded_mode_still_replays_recorded_commit_replies() {
    let cluster = build();
    let t = Duration::from_secs(2);
    let ep = cluster.net.register(NodeId(7));
    let txn = match ep.call(SRV0, Msg::BeginTxn, t).unwrap() {
        Msg::TxnId(txn) => txn,
        other => panic!("bad reply {other:?}"),
    };
    let commit = Msg::Commit {
        txn,
        updates: vec![upd(cluster.p0, &[0; 2], b"cc")],
        req: (9 << 32) | 1,
    };
    assert_eq!(ep.call(SRV0, commit.clone(), t).unwrap(), Msg::Ok);

    cluster.servers[0].set_read_only(true);
    assert_eq!(
        ep.call(SRV0, commit, t).unwrap(),
        Msg::Ok,
        "read-only gate rejected a retry of a durably committed transaction"
    );
    let snap = cluster.servers[0].stats();
    assert!(snap.dedup_hits.get() >= 1);
    assert_eq!(snap.commits.get(), 1, "replayed commit applied twice");

    // A commit the window has never seen is still refused.
    let fresh = Msg::Commit {
        txn,
        updates: vec![upd(cluster.p0, b"cc", b"dd")],
        req: (9 << 32) | 2,
    };
    assert!(matches!(ep.call(SRV0, fresh, t).unwrap(), Msg::Err(_)));
    assert_eq!(&read_page_bytes(&cluster.servers[0], cluster.p0)[0..2], b"cc");
}

// ---- non-idempotent segment RPCs are never retried --------------------------

/// `AllocSegment` and `FreeSegment` carry no request id and are not
/// idempotent, so the transient-failure retry must not touch them: a
/// retried free that already executed could free a segment handed to
/// another client, and a retried alloc leaks the first segment.
#[test]
fn segment_rpcs_fail_fast_instead_of_retrying() {
    use bess_storage::DiskSpace;

    let cluster = build();
    let client = connect(&cluster, CLIENT);
    let space = RemoteSpace(Arc::clone(&client));
    let ptr = space.alloc(0, 1).unwrap();

    // The free executes but its reply is lost (the plan counts from its
    // arming, so the next client message is index 0): the ambiguity must
    // surface as an error, never as a blind re-send.
    cluster
        .net
        .arm(NetFaultPlan::armed_from(CLIENT, 0, NetFaultKind::DropReply));
    assert!(space.free(ptr).is_err(), "lost free reply must surface");
    assert_eq!(client.stats().retries.get(), 0, "FreeSegment was retried");

    // A dropped alloc request likewise fails fast.
    cluster
        .net
        .arm(NetFaultPlan::armed_from(CLIENT, 0, NetFaultKind::Drop));
    assert!(space.alloc(0, 1).is_err(), "dropped alloc must surface");
    assert_eq!(client.stats().retries.get(), 0, "AllocSegment was retried");
    client.disconnect();
}

// ---- reaping under continuous load ------------------------------------------

/// Lease reaping must not depend on the serve loop going idle: a server
/// under continuous traffic (its `recv` never times out) still collects a
/// dead client's locks on the time-based reap budget.
#[test]
fn busy_server_still_reaps_expired_leases() {
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = Arc::new(AreaSet::new());
    set.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, SRV0, &set);
    let mut scfg = ServerConfig::new(SRV0);
    scfg.lease_duration = Duration::from_millis(200);
    let (srv, _) = BessServer::start(scfg, set, LogManager::create_mem(), &net);
    let seg = srv.areas().get(0).unwrap().alloc(1).unwrap();
    let p0 = DbPage { area: 0, page: seg.start_page };

    let mut cfg = ClientConfig::new(CLIENT, SRV0);
    cfg.caching = false;
    cfg.heartbeat_interval = Duration::from_secs(60);
    let victim = ClientConn::connect(&net, Arc::clone(&dir), cfg);
    victim.begin().unwrap();
    victim.fetch_page(p0, LockMode::X).unwrap();
    net.partition(CLIENT);

    // Hammer the server from another node so its recv loop never idles;
    // the victim's lease expires under load and must still be reaped.
    let pump = net.register(CHECKER);
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut reaped = false;
    while std::time::Instant::now() < deadline {
        let _ = pump.call(SRV0, Msg::ReadPage { page: p0 }, Duration::from_millis(200));
        if srv.locks_held_by(CLIENT).is_empty() {
            reaped = true;
            break;
        }
    }
    assert!(reaped, "busy server never reaped the dead client's lease");
    assert!(!srv.has_lease(CLIENT));
    assert!(srv.stats().leases_expired.get() >= 1);
    victim.disconnect();
}
