//! Durability over *real files*: storage areas and the WAL live on disk,
//! the "process" dies, and a fresh one recovers everything — plus the
//! server-side fuzzy checkpoint bounding restart work.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bess_cache::{AreaSet, DbPage};
use bess_core::{recover_embedded, Database, RawBytes, Ref, Session, SessionConfig};
use bess_lock::LockMode;
use bess_net::{Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, PageUpdate, ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::LogManager;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bess-durability-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn file_backed_database_survives_process_restart() {
    let dir = temp_dir("restart");
    let area_path = dir.join("area0.bess");
    let log_path = dir.join("wal.bess");

    // ---- process 1: create, populate, commit, "exit" --------------------
    {
        let set = Arc::new(AreaSet::new());
        set.add(Arc::new(
            StorageArea::create_file(AreaId(0), &area_path, AreaConfig::default()).unwrap(),
        ));
        let log = Arc::new(LogManager::create_file(&log_path).unwrap());
        let db = Database::create(&*Arc::clone(&set), "durable-db", 1, 1, 0).unwrap();
        let s = Session::embedded(
            db,
            Arc::clone(&set),
            Some(Arc::clone(&log)),
            None,
            SessionConfig::default(),
        );
        s.begin().unwrap();
        let seg = s.create_segment(0, 32, 4).unwrap();
        let obj = s.create_bytes(seg, b"written to a real file").unwrap();
        s.set_root("it", obj).unwrap();
        s.commit().unwrap();
        s.save_db().unwrap();
        set.get(0).unwrap().sync().unwrap();
        // Everything dropped here: the "process" exits.
    }

    // ---- process 2: reopen the files, recover, read ----------------------
    {
        let set = Arc::new(AreaSet::new());
        set.add(Arc::new(
            StorageArea::open_file(AreaId(0), &area_path, true).unwrap(),
        ));
        let log = LogManager::open_file(&log_path).unwrap();
        let report = recover_embedded(&log, &set).unwrap();
        assert!(report.losers.is_empty());

        let db = Database::open(&*Arc::clone(&set), 0).unwrap();
        assert_eq!(db.name(), "durable-db");
        let s = Session::embedded(db, set, None, None, SessionConfig::default());
        let obj: Ref<RawBytes> = s.root("it").unwrap().unwrap();
        assert_eq!(s.get_bytes(obj).unwrap(), b"written to a real file");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn server_checkpoint_bounds_restart_analysis() {
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = Arc::new(AreaSet::new());
    set.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, NodeId(100), &set);
    let (server, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        LogManager::create_mem(),
        &net,
    );
    let seg = set.get(0).unwrap().alloc(1).unwrap();
    let page = DbPage {
        area: 0,
        page: seg.start_page,
    };

    // 60 committed transactions, a checkpoint, then 3 more.
    let c = ClientConn::connect(&net, Arc::clone(&dir), ClientConfig::new(NodeId(1), NodeId(100)));
    let run_txn = |v: u64| {
        c.begin().unwrap();
        let d = c.fetch_page(page, LockMode::X).unwrap();
        c.commit(vec![PageUpdate {
            page,
            offset: 0,
            before: d[0..8].to_vec(),
            after: v.to_le_bytes().to_vec(),
        }])
        .unwrap();
    };
    for v in 0..60 {
        run_txn(v);
    }
    server.checkpoint().unwrap();
    for v in 60..63 {
        run_txn(v);
    }

    // Crash + restart.
    let crashed = server.log().simulate_crash().unwrap();
    server.shutdown();
    net.unregister(NodeId(100));
    let (server2, report) =
        BessServer::start(ServerConfig::new(NodeId(100)), Arc::clone(&set), crashed, &net);

    // Analysis started at the checkpoint: only the checkpoint-end plus the
    // 3 post-checkpoint transactions' records were scanned (4 records per
    // committed txn), not the 60 earlier ones.
    assert!(
        report.scanned < 20,
        "scanned {} records despite the checkpoint",
        report.scanned
    );
    // The data is intact.
    let area = server2.areas().get(0).unwrap();
    let mut buf = vec![0u8; area.page_size()];
    area.read_page(page.page, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf[0..8].try_into().unwrap()), 62);
}
