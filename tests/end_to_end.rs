//! End-to-end distributed scenarios spanning every crate: typed object
//! graphs over the network, crash + restart + recovery, callbacks between
//! competing clients, and 2PC under failure.

use std::sync::Arc;
use std::time::Duration;

use bess_cache::AreaSet;
use bess_core::{
    codec, Database, Persist, RawBytes, Ref, Session, SessionConfig,
};
use bess_net::{Network, NodeId};
use bess_segment::TypeDesc;
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, Msg, ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::LogManager;

struct Account {
    owner: String,
    balance: u64,
    next: Option<Ref<Account>>,
}

impl Persist for Account {
    fn type_desc() -> TypeDesc {
        TypeDesc {
            name: "e2e::Account".into(),
            size: 48,
            ref_offsets: vec![40],
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; 48];
        codec::put_str(&mut b, 0, 32, &self.owner);
        codec::put_u64(&mut b, 32, self.balance);
        codec::put_ref(&mut b, 40, self.next);
        b
    }

    fn decode(bytes: &[u8]) -> Self {
        Account {
            owner: codec::get_str(bytes, 0, 32),
            balance: codec::get_u64(bytes, 32),
            next: codec::get_ref(bytes, 40),
        }
    }
}

fn make_world() -> (
    Arc<Network<Msg>>,
    Arc<Directory>,
    Arc<AreaSet>,
    BessServer,
) {
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = Arc::new(AreaSet::new());
    set.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, NodeId(100), &set);
    let mut cfg = ServerConfig::new(NodeId(100));
    // Short deadlock timeout: the transfer test intentionally provokes
    // upgrade deadlocks; victims must be chosen quickly so retries (with
    // much longer backoff) make progress.
    cfg.lock_timeout = Duration::from_millis(100);
    let (server, _) = BessServer::start(cfg, Arc::clone(&set), LogManager::create_mem(), &net);
    (net, dir, set, server)
}

fn bootstrap_accounts(set: &Arc<AreaSet>) -> Arc<Database> {
    let db = Database::create(&**set, "bank", 1, 1, 0).unwrap();
    let boot = Session::embedded(
        Arc::clone(&db),
        Arc::clone(set),
        None,
        None,
        SessionConfig::default(),
    );
    boot.begin().unwrap();
    let seg = boot.create_segment(0, 64, 4).unwrap();
    let b = boot
        .create(
            seg,
            &Account {
                owner: "bob".into(),
                balance: 500,
                next: None,
            },
        )
        .unwrap();
    let a = boot
        .create(
            seg,
            &Account {
                owner: "alice".into(),
                balance: 500,
                next: Some(b),
            },
        )
        .unwrap();
    boot.set_root("alice", a).unwrap();
    boot.set_root("bob", b).unwrap();
    boot.commit().unwrap();
    boot.save_db().unwrap();
    db
}

#[test]
fn concurrent_transfers_preserve_the_invariant() {
    let (net, dir, set, _server) = make_world();
    bootstrap_accounts(&set);

    // Remote clients transfer money back and forth; balances must always
    // sum to 1000. Deadlock timeouts abort victims, which back off and
    // retry — the paper's §3 resolution policy in action.
    let mut handles = Vec::new();
    for i in 0..2u32 {
        let net = Arc::clone(&net);
        let dir = Arc::clone(&dir);
        let set = Arc::clone(&set);
        handles.push(std::thread::spawn(move || {
            let db = Database::open(&*set, 0).unwrap();
            let conn = ClientConn::connect(
                &net,
                dir,
                ClientConfig::new(NodeId(10 + i), NodeId(100)),
            );
            let s = Session::remote(db, conn, SessionConfig::default());
            let mut done = 0;
            let mut attempt = 0u64;
            while done < 4 {
                attempt += 1;
                assert!(attempt < 500, "no progress after {attempt} attempts");
                // Backoff much longer than the deadlock timeout, jittered
                // per client, so one of two read-then-upgrade competitors
                // regularly gets an uncontended window.
                std::thread::sleep(Duration::from_millis(
                    (attempt * 241 + u64::from(i) * 613) % 1200,
                ));
                if s.begin().is_err() {
                    continue;
                }
                let run = (|| -> Result<(), bess_core::BessError> {
                    let alice: Ref<Account> = s.root("alice")?.unwrap();
                    let bob: Ref<Account> = s.root("bob")?.unwrap();
                    let mut a = s.get(alice)?;
                    let mut b = s.get(bob)?;
                    let amount = 10 + u64::from(i);
                    if a.balance >= amount {
                        a.balance -= amount;
                        b.balance += amount;
                    } else {
                        b.balance -= amount;
                        a.balance += amount;
                    }
                    s.put(alice, &a)?;
                    s.put(bob, &b)?;
                    Ok(())
                })();
                match run {
                    Ok(()) => {
                        if s.commit().is_ok() {
                            done += 1;
                        }
                    }
                    Err(_) => {
                        let _ = s.abort();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Check the invariant from a fresh session.
    let db = Database::open(&*set, 0).unwrap();
    let check = Session::embedded(db, Arc::clone(&set), None, None, SessionConfig::default());
    let alice: Ref<Account> = check.root("alice").unwrap().unwrap();
    let a = check.get(alice).unwrap();
    let b = check.get(a.next.unwrap()).unwrap();
    assert_eq!(
        a.balance + b.balance,
        1000,
        "alice={} bob={}",
        a.balance,
        b.balance
    );
}

#[test]
fn server_crash_preserves_committed_transfers() {
    let (net, dir, set, server) = make_world();
    let db = bootstrap_accounts(&set);
    let _ = db;

    // A client commits a transfer through the server (so it is WAL-logged
    // there), then the server crashes and restarts.
    let db_c = Database::open(&*set, 0).unwrap();
    let conn = ClientConn::connect(&net, Arc::clone(&dir), ClientConfig::new(NodeId(1), NodeId(100)));
    let s = Session::remote(db_c, conn, SessionConfig::default());
    s.begin().unwrap();
    let alice: Ref<Account> = s.root("alice").unwrap().unwrap();
    let mut a = s.get(alice).unwrap();
    a.balance -= 123;
    s.put(alice, &a).unwrap();
    s.commit().unwrap();

    // Crash the server process: keep the flushed log, restart over the
    // same storage areas.
    let crashed_log = server.log().simulate_crash().unwrap();
    server.shutdown();
    net.unregister(NodeId(100));
    let (server2, report) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        crashed_log,
        &net,
    );
    assert!(report.losers.is_empty());
    let _ = server2;

    // A fresh client reads the post-crash state.
    let db2 = Database::open(&*set, 0).unwrap();
    let conn2 = ClientConn::connect(&net, dir, ClientConfig::new(NodeId(2), NodeId(100)));
    let s2 = Session::remote(db2, conn2, SessionConfig::default());
    s2.begin().unwrap();
    let alice2: Ref<Account> = s2.root("alice").unwrap().unwrap();
    assert_eq!(s2.get(alice2).unwrap().balance, 377);
    s2.commit().unwrap();
}

#[test]
fn big_and_huge_objects_round_trip_remotely() {
    let (net, dir, set, _server) = make_world();
    let db = Database::create(&*set, "blobs", 1, 1, 0).unwrap();
    {
        // Bootstrap a segment embedded, then save.
        let boot = Session::embedded(
            Arc::clone(&db),
            Arc::clone(&set),
            None,
            None,
            SessionConfig::default(),
        );
        boot.begin().unwrap();
        boot.create_segment(0, 32, 4).unwrap();
        boot.commit().unwrap();
        boot.save_db().unwrap();
    }
    // A remote session creates large objects: the disk allocations and
    // byte I/O all travel over the protocol (RemoteSpace).
    let db_r = Database::open(&*set, 0).unwrap();
    let seg = db_r.catalog().list()[0];
    let conn = ClientConn::connect(&net, dir, ClientConfig::new(NodeId(5), NodeId(100)));
    let s = Session::remote(db_r, conn, SessionConfig::default());
    s.begin().unwrap();
    let big = s.create_big(seg, &vec![0x42; 30_000]).unwrap();
    let (huge_ref, mut lo) = s.create_huge(seg, 1 << 20).unwrap();
    lo.append(&vec![0x17; 400_000]).unwrap();
    lo.insert(5, b"MARK").unwrap();
    s.save_huge(huge_ref, &lo).unwrap();
    s.commit().unwrap();

    s.begin().unwrap();
    assert_eq!(s.get_bytes(big.cast::<RawBytes>()).unwrap(), vec![0x42; 30_000]);
    let lo2 = s.open_huge(huge_ref).unwrap();
    assert_eq!(lo2.len(), 400_004);
    assert_eq!(lo2.read_vec(5, 4).unwrap(), b"MARK");
    s.commit().unwrap();
}
