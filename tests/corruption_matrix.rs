//! The silent-corruption matrix: BitRot, Misdirected and LostWrite faults
//! swept across read/write fault points on both seams — data pages under
//! a live server, and the WAL under reopen + recovery.
//!
//! Unlike the crash matrix (which kills the process and checks recovery),
//! every fault here is *silent*: the disk acknowledges the operation and
//! lies. The invariant under test is therefore different:
//!
//! 1. **No silent wrong bytes.** A read either returns exactly the last
//!    acknowledged commit's bytes or fails with a typed corruption error —
//!    never rotted, misdirected or stale data.
//! 2. **Acknowledged commits are recoverable.** After detection, the
//!    repair ladder (re-read → WAL reconstruction) plus a deep scrub pass
//!    restores every data page to its committed image; nothing ends up
//!    quarantined while committed history exists.
//! 3. **WAL corruption is typed, not absorbed.** A complete frame that
//!    fails its checksum (or sits at the wrong LSN) surfaces as
//!    `WalError::CorruptRecord`, distinct from benign torn-tail
//!    truncation. The one undetectable case — a lost log flush, which is
//!    indistinguishable from a torn tail — is pinned as a documented
//!    negative result, exactly like the lying-fsync test in the crash
//!    matrix.
//!
//! Representative subsets run by default; the full sweeps run with
//! `--features crash-tests` alongside the crash matrix in CI.

use std::sync::Arc;
use std::time::Duration;

use bess_cache::{AreaSet, DbPage};
use bess_lock::LockMode;
use bess_net::{Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, Msg, PageUpdate,
    ServerConfig,
};
use bess_storage::{
    AreaConfig, AreaId, FaultDisk, FaultKind, FaultPlan, OpClass, StorageArea, PAGE_HDR,
};
use bess_wal::{LogBody, LogManager, LogPageId, Lsn, WalError, LOG_START};

const PAGE_SIZE: usize = 256;
/// Data pages committed in the rig; fault indices sweep over them.
const K: usize = 3;

fn small_area() -> AreaConfig {
    AreaConfig {
        page_size: PAGE_SIZE,
        extent_pages_log2: 4,
        initial_extents: 1,
        expandable: true,
        verify_on_read: true,
    }
}

fn gen1(i: usize) -> Vec<u8> {
    vec![0x10 + i as u8; 8]
}

fn gen2(i: usize) -> Vec<u8> {
    vec![0x60 + i as u8; 8]
}

// ---------------------------------------------------------------------------
// Data-page seam: a live server over a fault-injecting area.
// ---------------------------------------------------------------------------

struct Rig {
    net: Arc<Network<Msg>>,
    dir: Arc<Directory>,
    server: BessServer,
    disk: Arc<FaultDisk>,
    area: Arc<StorageArea>,
    pages: [u64; K],
}

/// Builds a server over a faulty area and commits generation-1 bytes to
/// `K` pages fault-free, so every page has committed WAL history before
/// any plan is armed. Scrubbing is manual (`scrub_once`) and deep.
fn rig() -> Rig {
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let disk = FaultDisk::new(FaultPlan::unarmed());
    let area =
        Arc::new(StorageArea::create_faulty(AreaId(1), small_area(), Arc::clone(&disk)).unwrap());
    let ptr = area.alloc(K as u32).unwrap();
    let pages = [ptr.start_page, ptr.start_page + 1, ptr.start_page + 2];
    let set = Arc::new(AreaSet::new());
    set.add(Arc::clone(&area));
    let node = NodeId(100);
    register_areas(&dir, node, &set);
    let mut cfg = ServerConfig::new(node);
    cfg.scrub.deep = true;
    cfg.scrub.pages_per_pass = 1024;
    let (server, report) = BessServer::start(cfg, set, LogManager::create_mem(), &net);
    assert!(report.losers.is_empty());
    let r = Rig { net, dir, server, disk, area, pages };
    for i in 0..K {
        commit(&r, i, &gen1(i)).unwrap();
    }
    r
}

fn client(r: &Rig) -> Arc<ClientConn> {
    let mut cfg = ClientConfig::new(NodeId(1), r.server.node());
    cfg.caching = false;
    ClientConn::connect(&r.net, Arc::clone(&r.dir), cfg)
}

fn slot_off(r: &Rig, i: usize) -> u64 {
    r.pages[i] * (PAGE_HDR + PAGE_SIZE) as u64
}

/// Commits `bytes` at offset 0 of page `i` through the normal WAL path.
fn commit(r: &Rig, i: usize, bytes: &[u8]) -> Result<(), String> {
    let c = client(r);
    let p = DbPage { area: 1, page: r.pages[i] };
    c.begin().map_err(|e| format!("{e:?}"))?;
    c.fetch_page(p, LockMode::X).map_err(|e| format!("{e:?}"))?;
    c.commit(vec![PageUpdate {
        page: p,
        offset: 0,
        before: vec![0; bytes.len()],
        after: bytes.to_vec(),
    }])
    .map_err(|e| format!("{e:?}"))
}

/// Reads page `i` through the server. `Ok` bytes are the page head;
/// `Err` is the typed failure.
fn read(r: &Rig, i: usize) -> Result<Vec<u8>, String> {
    let c = client(r);
    let p = DbPage { area: 1, page: r.pages[i] };
    c.begin().map_err(|e| format!("{e:?}"))?;
    let data = c.fetch_page(p, LockMode::S).map_err(|e| format!("{e:?}"))?;
    let _ = c.commit(vec![]);
    Ok(data[..8].to_vec())
}

/// The matrix invariant for the data seam: every probe read is either the
/// oracle bytes or a typed corruption error, and after deep scrubbing the
/// whole area converges to the oracle with nothing quarantined.
fn check_convergence(r: &Rig, oracle: &dyn Fn(usize) -> Vec<u8>) {
    // Two passes: the first may both detect and repair; the second
    // verifies a clean steady state (and the cursor has wrapped).
    r.server.scrub_once();
    let steady = r.server.scrub_once();
    assert_eq!(steady.corrupt, 0, "second scrub pass still found corruption");
    for i in 0..K {
        assert_eq!(
            read(r, i).expect("post-scrub read"),
            oracle(i),
            "page {i} diverged from its committed bytes"
        );
    }
    assert!(
        r.area.quarantined_pages().is_empty(),
        "pages with committed history must be repairable, not quarantined"
    );
}

/// One write-seam cell: arm `(Write, nth, kind)`, commit generation-2
/// bytes to every page (the nth slot write is the faulted one), then
/// check detection + convergence. Every commit must be acknowledged —
/// these faults are silent by construction.
fn run_write_case(nth: u64, kind: FaultKind) -> bool {
    let r = rig();
    let plan = FaultPlan::armed(OpClass::Write, nth, kind);
    r.disk.arm(Arc::clone(&plan));
    for i in 0..K {
        commit(&r, i, &gen2(i)).unwrap_or_else(|e| panic!("silent fault broke commit {i}: {e}"));
    }
    let fired = plan.fired() > 0;
    // Probe reads before any scrub: never silent wrong bytes.
    for i in 0..K {
        if let Ok(bytes) = read(&r, i) {
            assert!(
                bytes == gen2(i) || bytes == gen1(i),
                "page {i} returned bytes that were never committed: {bytes:?}"
            );
        }
        // A stale-but-valid page (lost/misdirected write) may legally read
        // as generation 1 here — that is exactly what the deep scrub's
        // page-LSN floor exists to catch below.
    }
    check_convergence(&r, &gen2);
    fired
}

#[test]
fn data_write_bit_rot_repaired_from_wal() {
    let mut fired = 0;
    for nth in 0..K as u64 {
        // Rot one byte inside the nth slot write (page `nth`'s data).
        let r_probe = rig(); // offsets are deterministic; compute off a probe rig
        let off = slot_off(&r_probe, nth as usize) + PAGE_HDR as u64 + 2;
        drop(r_probe);
        if run_write_case(nth, FaultKind::BitRot { offset: off, mask: 0x40 }) {
            fired += 1;
        }
    }
    assert_eq!(fired, K as u64, "every write index must be exercised");
}

#[test]
fn data_misdirected_write_detected_and_healed() {
    let mut fired = 0;
    for nth in 0..K as u64 {
        // The nth slot write lands wholesale on a *different* page's slot:
        // the victim gets a wrong-identity page (caught by the header
        // identity check), the intended page keeps stale bytes (caught by
        // the deep scrub's LSN floor).
        let victim = (nth as usize + 1) % K;
        let r_probe = rig();
        let to = slot_off(&r_probe, victim);
        drop(r_probe);
        if run_write_case(nth, FaultKind::Misdirected { to }) {
            fired += 1;
        }
    }
    assert_eq!(fired, K as u64);
}

#[test]
fn data_lost_write_caught_by_deep_scrub() {
    let mut fired = 0;
    for nth in 0..K as u64 {
        // The write is acknowledged and never applied: the page keeps its
        // generation-1 bytes under a perfectly valid checksum. Only the
        // page-LSN floor can see it.
        if run_write_case(nth, FaultKind::LostWrite) {
            fired += 1;
        }
    }
    assert_eq!(fired, K as u64);
}

#[test]
fn data_transient_read_rot_cured_by_reread() {
    // A flip in the *returned buffer* (the platter is fine): the verified
    // read detects the bad checksum and its immediate re-read cures it.
    let mut fired = 0;
    for nth in 0..K as u64 {
        let r = rig();
        let off = slot_off(&r, nth as usize) + PAGE_HDR as u64 + 5;
        let plan = FaultPlan::armed(
            OpClass::Read,
            nth,
            FaultKind::BitRot { offset: off, mask: 0x08 },
        );
        r.disk.arm(Arc::clone(&plan));
        for i in 0..K {
            assert_eq!(read(&r, i).expect("transient rot must be cured"), gen1(i));
        }
        if plan.fired() > 0 {
            fired += 1;
        }
        assert!(r.area.quarantined_pages().is_empty());
    }
    assert!(fired >= 1, "the read fault never fired");
}

#[cfg_attr(not(feature = "crash-tests"), ignore)]
#[test]
fn data_write_fault_full_sweep() {
    // Every write index × every silent kind, including rot in the page
    // *header* (identity/checksum fields) rather than the data.
    let mut fired = 0;
    let mut cells = 0;
    for nth in 0..K as u64 {
        let r_probe = rig();
        let slot = slot_off(&r_probe, nth as usize);
        let victim = slot_off(&r_probe, (nth as usize + 1) % K);
        drop(r_probe);
        for kind in [
            FaultKind::BitRot { offset: slot + PAGE_HDR as u64 + 2, mask: 0x40 },
            FaultKind::BitRot { offset: slot + 1, mask: 0x01 }, // header: area id
            FaultKind::BitRot { offset: slot + 26, mask: 0x80 }, // header: checksum
            FaultKind::Misdirected { to: victim },
            FaultKind::LostWrite,
        ] {
            cells += 1;
            if run_write_case(nth, kind) {
                fired += 1;
            }
        }
    }
    assert_eq!(fired, cells, "every full-sweep cell must fire");
}

// ---------------------------------------------------------------------------
// WAL seam: silent corruption of the log, surfaced at reopen + recovery.
// ---------------------------------------------------------------------------

/// Three committed transactions, one flush each: flush `k` carries txn
/// `k+1`'s Begin/Update/Commit frames. Returns every record's LSN in
/// append order.
fn wal_workload(log: &LogManager) -> Vec<Lsn> {
    let mut lsns = Vec::new();
    for txn in 1..=3u64 {
        let b = log.append(txn, Lsn::NULL, LogBody::Begin);
        let u = log.append(
            txn,
            b,
            LogBody::Update {
                page: LogPageId { area: 0, page: txn },
                offset: 0,
                before: vec![0; 8],
                after: vec![txn as u8; 8],
            },
        );
        let c = log.append(txn, u, LogBody::Commit);
        log.flush_all().unwrap();
        lsns.extend([b, u, c]);
    }
    lsns
}

fn wal_rig() -> (Arc<FaultDisk>, LogManager) {
    let disk = FaultDisk::new(FaultPlan::unarmed());
    let log = LogManager::create_faulty(Arc::clone(&disk)).unwrap();
    log.set_master(Lsn::NULL).unwrap();
    (disk, log)
}

/// Iterates the whole log, returning the committed txns seen and the
/// iterator's verdict (`Ok` = clean or torn tail, `Err` = typed
/// mid-log corruption).
fn scan(log: &LogManager) -> (Vec<u64>, Result<(), WalError>) {
    let mut commits = Vec::new();
    let mut iter = log.iter();
    for rec in iter.by_ref() {
        if rec.body == LogBody::Commit {
            commits.push(rec.txn);
        }
    }
    (commits, iter.finish())
}

/// What reopening a damaged log yields. Corruption may surface at open
/// time (the tail scan validates frames) or during iteration; both are
/// the same typed verdict from the caller's point of view.
#[derive(Debug)]
enum Outcome {
    /// Clean scan (possibly torn-truncated): the committed txns served.
    Clean(Vec<u64>),
    /// Typed mid-log corruption at this LSN.
    Typed(Lsn),
}

fn reopen_outcome(disk: &Arc<FaultDisk>) -> Outcome {
    match LogManager::open_faulty(Arc::clone(disk)) {
        Err(WalError::CorruptRecord(at)) => Outcome::Typed(at),
        Err(e) => panic!("unexpected open error: {e:?}"),
        Ok(log) => {
            let (commits, verdict) = scan(&log);
            match verdict {
                Ok(()) => Outcome::Clean(commits),
                Err(WalError::CorruptRecord(at)) => Outcome::Typed(at),
                Err(e) => panic!("unexpected scan error: {e:?}"),
            }
        }
    }
}

#[test]
fn wal_payload_rot_is_a_typed_error() {
    // Durably rot one payload byte of each record in turn: a complete
    // frame that fails its checksum is CorruptRecord at that LSN — never
    // a silent record, never a quiet truncation.
    let probe = {
        let (_, log) = wal_rig();
        wal_workload(&log)
    };
    let targets: &[usize] = if cfg!(feature = "crash-tests") {
        &[0, 1, 2, 3, 4, 5, 6, 7, 8]
    } else {
        &[0, 4, 8]
    };
    for &t in targets {
        let (disk, log) = wal_rig();
        assert_eq!(wal_workload(&log), probe, "workload must be deterministic");
        drop(log);
        // Flip one payload byte in place (the fault-disk image is the
        // platter; everything was synced by the per-txn flushes).
        let off = probe[t].0 + 12; // first payload byte
        let mut b = [0u8; 1];
        disk.read_at(&mut b, off).unwrap();
        disk.write_at(&[b[0] ^ 0x10], off).unwrap();
        match reopen_outcome(&disk) {
            Outcome::Typed(at) => assert_eq!(at, probe[t], "record {t}"),
            other => panic!("record {t}: rot must surface as typed corruption, got {other:?}"),
        }
    }
}

#[test]
fn wal_frame_head_rot_never_yields_wrong_records() {
    // Rot in the frame *head* (length or checksum field). Depending on
    // the bit, the scan sees either a failed checksum (typed) or an
    // implausible length (indistinguishable from a torn tail, so it
    // truncates). Both are safe; silently decoding a wrong record is not.
    let probe = {
        let (_, log) = wal_rig();
        wal_workload(&log)
    };
    for (t, bit) in [(3usize, 0u8), (3, 1), (6, 2)] {
        let (disk, log) = wal_rig();
        wal_workload(&log);
        drop(log);
        let off = probe[t].0 + u64::from(bit); // inside the 4-byte length
        let mut b = [0u8; 1];
        disk.read_at(&mut b, off).unwrap();
        disk.write_at(&[b[0] ^ 0x80], off).unwrap();
        match reopen_outcome(&disk) {
            Outcome::Clean(commits) => assert!(
                commits.len() <= t / 3,
                "a truncating head rot must not keep later records: {commits:?}"
            ),
            Outcome::Typed(at) => assert_eq!(at, probe[t]),
        }
    }
}

/// The documented negative result of this matrix: a lost log *flush* is
/// physically indistinguishable from a torn tail (the hole reads as
/// zeros, exactly like never-written space), so the scan truncates there
/// and every acknowledged commit after the hole is gone. Like the lying
/// fsync in the crash matrix, this is why WAL durability is a premise
/// about the device, not something detection can recover.
#[test]
fn wal_lost_flush_truncates_at_the_hole() {
    for k in 0..3u64 {
        let (disk, log) = wal_rig();
        disk.arm(FaultPlan::armed(OpClass::Write, k, FaultKind::LostWrite));
        wal_workload(&log); // every flush acks, including the lost one
        drop(log);
        disk.crash();
        disk.reopen(FaultPlan::unarmed());
        let log = LogManager::open_faulty(Arc::clone(&disk)).unwrap();
        let (commits, verdict) = scan(&log);
        assert!(
            verdict.is_ok(),
            "a hole is a torn tail, not typed corruption: {verdict:?}"
        );
        assert_eq!(
            commits,
            (1..=k).collect::<Vec<_>>(),
            "exactly the flushes before the hole survive"
        );
    }
}

#[test]
fn wal_misdirected_flush_is_detected_or_truncated() {
    // Flush k's bytes land at the wrong log offset. Overwriting earlier
    // frames puts valid-looking frames at the wrong LSN — caught by the
    // frame's self-identifying LSN. Redirecting past the tail leaves a
    // hole — truncated like a torn tail. Neither yields a wrong record.
    for (k, to) in [
        (1u64, LOG_START.0),          // over txn 1's frames
        (2, LOG_START.0),             // over txn 1's frames, later flush
        (0, LOG_START.0 + 4096),      // into the void: hole at LOG_START
    ] {
        let (disk, log) = wal_rig();
        disk.arm(FaultPlan::armed(
            OpClass::Write,
            k,
            FaultKind::Misdirected { to },
        ));
        wal_workload(&log);
        drop(log);
        disk.crash();
        disk.reopen(FaultPlan::unarmed());
        match reopen_outcome(&disk) {
            Outcome::Typed(_) => {} // wrong-LSN frame, typed
            Outcome::Clean(commits) => assert!(
                commits.len() <= k as usize,
                "flush {k} misdirected to {to}: records after the damage survived a plain scan"
            ),
        }
    }
}

#[test]
fn wal_transient_read_rot_during_reopen_is_cured() {
    // A one-shot flip in a *read* (the platter is fine): the frame
    // reader's single re-read cures it, and the reopened log serves the
    // full history.
    let (disk, log) = wal_rig();
    wal_workload(&log);
    drop(log);
    disk.crash();
    disk.reopen(FaultPlan::armed(
        OpClass::Read,
        0,
        FaultKind::BitRot { offset: LOG_START.0 + 4, mask: 0x20 },
    ));
    let log = LogManager::open_faulty(Arc::clone(&disk)).unwrap();
    let (commits, verdict) = scan(&log);
    assert!(verdict.is_ok(), "cured read must scan clean: {verdict:?}");
    assert_eq!(commits, vec![1, 2, 3]);
}
