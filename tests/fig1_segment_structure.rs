//! Figure 1 reproduction: "Segment and object structure."
//!
//! The figure shows an object segment consisting of a slotted segment
//! (header + slot array, write-protected), a data segment holding the
//! variable-size objects the slots' DP fields point to, and an overflow
//! segment holding large-object descriptors. This test builds exactly that
//! structure and verifies every depicted relationship.

use std::sync::Arc;

use bess_cache::{AreaSet, PageIo, PrivatePool};
use bess_segment::{
    ProtectionPolicy, SegmentCatalog, SegmentManager, SlotKind, SlottedView, TypeRegistry,
    TYPE_BYTES,
};
use bess_storage::{AreaConfig, AreaId, DiskSpace, StorageArea};
use bess_vm::AddressSpace;

fn setup() -> (Arc<AreaSet>, Arc<SegmentManager>) {
    let areas = Arc::new(AreaSet::new());
    areas.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    let space = Arc::new(AddressSpace::new());
    let pool = Arc::new(PrivatePool::new(
        Arc::clone(&space),
        Arc::clone(&areas) as Arc<dyn PageIo>,
        256,
    ));
    let mgr = SegmentManager::new(
        space,
        pool,
        Arc::clone(&areas) as Arc<dyn DiskSpace>,
        Arc::new(TypeRegistry::new()),
        Arc::new(SegmentCatalog::new()),
        ProtectionPolicy::Protected,
        1,
        1,
    );
    (areas, mgr)
}

#[test]
fn figure1_structure_holds() {
    let (_areas, mgr) = setup();
    let seg = mgr.create_segment(0, 16, 4).unwrap();

    // Three small objects in the data segment...
    let o1 = mgr.create_object(seg, TYPE_BYTES, 100).unwrap();
    let o2 = mgr.create_object(seg, TYPE_BYTES, 250).unwrap();
    let o3 = mgr.create_object(seg, TYPE_BYTES, 60).unwrap();
    mgr.write_object(o1.addr, 0, b"object one").unwrap();
    mgr.write_object(o2.addr, 0, b"object two").unwrap();
    mgr.write_object(o3.addr, 0, b"object three").unwrap();

    // ...and one huge object whose descriptor goes to the overflow segment.
    let (huge, mut lo) = mgr
        .create_huge_object(seg, TYPE_BYTES, bess_largeobj::LoConfig::default())
        .unwrap();
    lo.append(&vec![0xEE; 100_000]).unwrap();
    mgr.save_huge_object(huge.addr, &lo).unwrap();

    // Inspect the on-segment structure through the engine view.
    let base = mgr.open_segment(seg).unwrap();
    mgr.load_segment(seg).unwrap();
    let space = mgr.space();
    let view = SlottedView::new(space, base);

    // Header bookkeeping matches Figure 1's slotted segment header:
    // object count, free space accounting, pointers to data and overflow
    // segments.
    assert!(view.is_initialised().unwrap());
    assert_eq!(view.live_objects().unwrap(), 4);
    assert_eq!(view.num_slots().unwrap(), 4);
    let data_ptr = view.data_ptr().unwrap();
    assert!(data_ptr.pages >= 1, "data segment exists");
    let used = view.data_used().unwrap();
    // 100 + 250 + 60, 8-byte aligned per object, plus nothing for huge.
    assert_eq!(used, 104 + 256 + 64);
    let ovf = view.overflow_ptr().unwrap();
    assert!(ovf.is_some(), "overflow segment allocated for the huge slot");
    assert!(view.overflow_used().unwrap() > 0);

    // Every slot is an object header with TP, DP, size (Figure 1's OH
    // boxes); DPs point into the reserved data range in slot order.
    let s1 = view.slot(0).unwrap();
    let s2 = view.slot(1).unwrap();
    let s3 = view.slot(2).unwrap();
    let s4 = view.slot(3).unwrap();
    for s in [&s1, &s2, &s3] {
        assert!(s.used);
        assert_eq!(s.kind, SlotKind::Small);
        assert_eq!(s.type_id, TYPE_BYTES);
    }
    assert_eq!(s1.size, 100);
    assert_eq!(s2.size, 250);
    assert_eq!(s3.size, 60);
    assert!(s1.dp < s2.dp && s2.dp < s3.dp, "bump-allocated data layout");
    assert_eq!(s2.dp - s1.dp, 104, "aligned placement");
    assert_eq!(s4.kind, SlotKind::Huge);

    // References reach objects through the slot (header), never directly:
    // the slot address is the public identity.
    let info = mgr.deref(o2.addr).unwrap();
    assert_eq!(info.size, 250);
    assert_eq!(info.data.raw(), s2.dp);
    assert_eq!(&mgr.read_object(o2.addr).unwrap()[..10], b"object two");

    // And the slotted segment is write-protected against stray user
    // pointers (the lock icon on Figure 1's slotted segment).
    assert!(space.write_u64(o2.addr, 0xBAD).is_err());
}

#[test]
fn figure1_oids_address_slots() {
    let (_areas, mgr) = setup();
    let seg = mgr.create_segment(0, 8, 2).unwrap();
    let o = mgr.create_object(seg, TYPE_BYTES, 8).unwrap();
    // The OID embeds the (never relocated) slotted segment address plus
    // slot index and uniquifier, per §2.1.
    assert_eq!(o.oid.seg, seg);
    assert_eq!(o.oid.slot, 0);
    assert_eq!(mgr.resolve_oid(o.oid).unwrap(), o.addr);
    // Packing round-trips (96-bit identity).
    let packed = o.oid.to_bytes();
    assert_eq!(bess_segment::Oid::from_bytes(&packed), o.oid);
}
