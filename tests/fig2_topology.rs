//! Figure 2 reproduction: "A network of BeSS servers and client
//! workstations."
//!
//! The figure shows three node archetypes:
//!   * node 1 — an application with neither server nor node server: it
//!     talks to *multiple* BeSS servers directly and caches data/locks
//!     only for the duration of a transaction;
//!   * node 2 — an application on the same machine as a BeSS server;
//!   * node 3 — applications behind a BeSS node server, reaching the whole
//!     distributed database through it alone.
//!
//! This test stands the full topology up and drives a distributed
//! transaction from each archetype.

use std::sync::Arc;
use std::time::Duration;

use bess_cache::{AreaSet, DbPage};
use bess_lock::LockMode;
use bess_net::{Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, Msg, NodeServer,
    NodeServerConfig, PageUpdate, ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::LogManager;

struct Topology {
    net: Arc<Network<Msg>>,
    dir: Arc<Directory>,
    servers: Vec<BessServer>,
    ns: NodeServer,
}

fn build() -> (Topology, DbPage, DbPage) {
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let mut servers = Vec::new();
    // Two BeSS servers, each owning one storage area (Figure 2's server
    // machines with their disk stacks).
    for (i, area) in [0u32, 1].iter().enumerate() {
        let set = Arc::new(AreaSet::new());
        set.add(Arc::new(
            StorageArea::create_mem(AreaId(*area), AreaConfig::default()).unwrap(),
        ));
        let node = NodeId(100 + i as u32);
        register_areas(&dir, node, &set);
        let (s, _) = BessServer::start(ServerConfig::new(node), set, LogManager::create_mem(), &net);
        servers.push(s);
    }
    let p0 = {
        let seg = servers[0].areas().get(0).unwrap().alloc(1).unwrap();
        DbPage { area: 0, page: seg.start_page }
    };
    let p1 = {
        let seg = servers[1].areas().get(1).unwrap().alloc(1).unwrap();
        DbPage { area: 1, page: seg.start_page }
    };
    // Node 3's node server.
    let ns = NodeServer::start(NodeServerConfig::new(NodeId(50)), Arc::clone(&dir), &net);
    (
        Topology {
            net,
            dir,
            servers,
            ns,
        },
        p0,
        p1,
    )
}

fn upd(p: DbPage, before: &[u8], after: &[u8]) -> PageUpdate {
    PageUpdate {
        page: p,
        offset: 0,
        before: before.to_vec(),
        after: after.to_vec(),
    }
}

#[test]
fn figure2_all_three_archetypes_work() {
    let (topo, p0, p1) = build();

    // --- node 1: direct client of BOTH servers, txn-duration caching ----
    let mut cfg = ClientConfig::new(NodeId(1), topo.servers[0].node());
    cfg.caching = false;
    let node1 = ClientConn::connect(&topo.net, Arc::clone(&topo.dir), cfg);
    node1.begin().unwrap();
    node1.fetch_page(p0, LockMode::X).unwrap();
    node1.fetch_page(p1, LockMode::X).unwrap();
    // A distributed commit across both servers (2PC via the home server).
    node1
        .commit(vec![upd(p0, &[0; 2], b"n1"), upd(p1, &[0; 2], b"n1")])
        .unwrap();
    // Txn-duration caching: everything released afterwards.
    assert!(node1.lock_cache().is_empty());

    // --- node 2: application colocated with server 0 ---------------------
    // (Embedded access: it can read the area directly — trusted code —
    // and see node 1's committed bytes.)
    let area0 = topo.servers[0].areas().get(0).unwrap();
    let mut buf = vec![0u8; area0.page_size()];
    area0.read_page(p0.page, &mut buf).unwrap();
    assert_eq!(&buf[0..2], b"n1");

    // --- node 3: applications behind the node server --------------------
    let mut cfg = ClientConfig::new(NodeId(51), topo.ns.node());
    cfg.gateway = Some(topo.ns.node());
    let app = ClientConn::connect(&topo.net, Arc::clone(&topo.dir), cfg);
    app.begin().unwrap();
    // Both pages are reachable "by communicating only with the local node
    // server" (§3) — including a cross-server 2PC commit it forwards.
    let d0 = app.fetch_page(p0, LockMode::X).unwrap();
    let d1 = app.fetch_page(p1, LockMode::X).unwrap();
    assert_eq!(&d0[0..2], b"n1");
    assert_eq!(&d1[0..2], b"n1");
    app.commit(vec![upd(p0, b"n1", b"n3"), upd(p1, b"n1", b"n3")])
        .unwrap();
    assert!(topo.ns.stats().global_commits.get() >= 1, "ns ran 2PC");

    // Every server saw its half.
    for (i, p) in [(0usize, p0), (1usize, p1)] {
        let area = topo.servers[i].areas().get(p.area).unwrap();
        let mut buf = vec![0u8; area.page_size()];
        area.read_page(p.page, &mut buf).unwrap();
        assert_eq!(&buf[0..2], b"n3");
    }
    // Both servers participated in prepares (node1's commit + app's).
    assert!(topo.servers[1].stats().prepares.get() >= 1);
}

#[test]
fn figure2_node1_multi_server_reads_are_consistent() {
    let (topo, p0, p1) = build();
    // Seed both areas.
    let seed = |srv: &BessServer, p: DbPage, byte: u8| {
        let area = srv.areas().get(p.area).unwrap();
        let mut buf = vec![0u8; area.page_size()];
        buf[0] = byte;
        area.write_page(p.page, &buf).unwrap();
    };
    seed(&topo.servers[0], p0, 7);
    seed(&topo.servers[1], p1, 9);

    let mut cfg = ClientConfig::new(NodeId(2), topo.servers[0].node());
    cfg.caching = false;
    let c = ClientConn::connect(&topo.net, Arc::clone(&topo.dir), cfg);
    c.begin().unwrap();
    assert_eq!(c.fetch_page(p0, LockMode::S).unwrap()[0], 7);
    assert_eq!(c.fetch_page(p1, LockMode::S).unwrap()[0], 9);
    c.commit(vec![]).unwrap();
}
