//! Figure 3 reproduction: "Shared memory established by the node server."
//!
//! The figure shows the node server's cache — a contiguous sequence of
//! page-sized frames plus control data — with application A attached
//! *directly* (shared memory / in-place access) while application B keeps a
//! private cache and reaches the shared cache *indirectly* through the node
//! server (copy on access). Both coexist against the same data, and the
//! node server fetches misses from the owning BeSS server.

use std::sync::Arc;
use std::time::Duration;

use bess_cache::{AreaSet, DbPage};
use bess_core::ShmSession;
use bess_lock::LockMode;
use bess_net::{Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, Msg, NodeServer,
    NodeServerConfig, PageUpdate, ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::LogManager;

fn build() -> (
    Arc<Network<Msg>>,
    Arc<Directory>,
    BessServer,
    NodeServer,
    DbPage,
) {
    let net = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = Arc::new(AreaSet::new());
    set.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, NodeId(100), &set);
    let (server, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        LogManager::create_mem(),
        &net,
    );
    let seg = set.get(0).unwrap().alloc(1).unwrap();
    let page = DbPage {
        area: 0,
        page: seg.start_page,
    };
    let ns = NodeServer::start(NodeServerConfig::new(NodeId(50)), Arc::clone(&dir), &net);
    (net, dir, server, ns, page)
}

#[test]
fn figure3_direct_and_indirect_clients_coexist() {
    let (net, dir, server, ns, page) = build();

    // Application A: shared-memory mode — operates on the cache frames in
    // place, no IPC.
    let app_a = ShmSession::attach(ns.handle());
    app_a.begin().unwrap();
    app_a.write(page, 0, b"from A, in place").unwrap();
    app_a.commit().unwrap();

    // Application B: copy-on-access — private cache, talks to the node
    // server over the message protocol.
    let mut cfg = ClientConfig::new(NodeId(51), ns.node());
    cfg.gateway = Some(ns.node());
    let app_b = ClientConn::connect(&net, Arc::clone(&dir), cfg);
    app_b.begin().unwrap();
    let data = app_b.fetch_page(page, LockMode::X).unwrap();
    assert_eq!(&data[0..16], b"from A, in place");
    app_b
        .commit(vec![PageUpdate {
            page,
            offset: 0,
            before: data[0..16].to_vec(),
            after: b"from B, via IPC!".to_vec(),
        }])
        .unwrap();

    // A sees B's committed bytes through the shared cache (the node server
    // refreshed the frame in place at commit).
    app_a.begin().unwrap();
    let mut buf = [0u8; 16];
    app_a.read(page, 0, &mut buf).unwrap();
    assert_eq!(&buf, b"from B, via IPC!");
    app_a.commit().unwrap();

    // One remote fetch total: A's first touch loaded the page; B and A's
    // re-read were served from the shared cache (Figure 3's point).
    let s = ns.stats();
    assert_eq!(s.remote_fetches.get(), 1, "only the cold miss hit the server");
    assert!(s.cache_hits.get() >= 1);

    // The server holds the durable truth.
    let area = server.areas().get(0).unwrap();
    let mut pbuf = vec![0u8; area.page_size()];
    area.read_page(page.page, &mut pbuf).unwrap();
    assert_eq!(&pbuf[0..16], b"from B, via IPC!");
}

#[test]
fn figure3_ipc_cost_difference_is_observable() {
    // The motivation for shared-memory mode (§4.1): in-place access avoids
    // IPC entirely. We count network messages for the same workload in
    // each mode.
    let (net, dir, _server, ns, page) = build();

    // Warm the shared cache once.
    let warm = ShmSession::attach(ns.handle());
    warm.begin().unwrap();
    let mut b = [0u8; 1];
    warm.read(page, 0, &mut b).unwrap();
    warm.commit().unwrap();

    // Shared-memory reads: zero messages.
    let before = net.stats().messages();
    let shm = ShmSession::attach(ns.handle());
    shm.begin().unwrap();
    for i in 0..50 {
        shm.read(page, i % 64, &mut b).unwrap();
    }
    shm.commit().unwrap();
    let shm_msgs = net.stats().messages() - before;
    assert_eq!(shm_msgs, 0, "in-place access does no IPC");

    // Copy-on-access: every page fetch is at least one message.
    let mut cfg = ClientConfig::new(NodeId(52), ns.node());
    cfg.gateway = Some(ns.node());
    let coa = ClientConn::connect(&net, Arc::clone(&dir), cfg);
    let before = net.stats().messages();
    coa.begin().unwrap();
    let _ = coa.fetch_page(page, LockMode::S).unwrap();
    coa.commit(vec![]).unwrap();
    let coa_msgs = net.stats().messages() - before;
    assert!(coa_msgs > 0, "copy-on-access pays IPC: {coa_msgs} messages");
}
