//! Figure 4 reproduction: "Implementation of shared virtual memory address
//! space."
//!
//! §4.1.2 narrates the exact scenario the figure draws: an empty two-slot
//! cache, processes P1 and P2, pages A, B, C.
//!
//!   (a) P1 accesses A — the SMT assigns A the first virtual frame; P2
//!       accesses B — second virtual frame.
//!   (b) P2 accesses C — the SMT assigns an unused virtual frame, B is
//!       replaced (P2's first-level clock gives up its claim), and when P1
//!       later accesses C "the SVMA mapping indicates that the last PVMA
//!       frame should be mapped to the second cache slot that holds C".
//!
//! We replay it step by step, checking the SMT agreement, the per-process
//! frame states, and the two-level clock interplay.

use std::sync::Arc;

use bess_cache::{DbPage, MapIo, PageIo, SharedCache, SharedView};
use bess_vm::{AddressSpace, FrameState};

const PS: usize = 256;

fn page(tag: u64) -> DbPage {
    DbPage { area: 0, page: tag }
}

fn attach(cache: &Arc<SharedCache>, io: &Arc<MapIo>) -> Arc<SharedView> {
    let space = Arc::new(AddressSpace::with_page_size(PS as u64));
    SharedView::attach(
        space,
        Arc::clone(cache),
        Arc::clone(io) as Arc<dyn PageIo>,
    )
}

#[test]
fn figure4_walkthrough() {
    // A cache of TWO slots, more virtual frames than slots ("PVMA may be
    // much larger than the size of the shared cache").
    let cache = SharedCache::new(2, 8, PS);
    let io = Arc::new(MapIo::new());
    let (a, b, c) = (page(0xA), page(0xB), page(0xC));
    io.put(a, vec![0xAA; PS]);
    io.put(b, vec![0xBB; PS]);
    io.put(c, vec![0xCC; PS]);

    let p1 = attach(&cache, &io);
    let p2 = attach(&cache, &io);

    // ---- state (a) ------------------------------------------------------
    // P1 accesses A: the SMT assigns A a virtual frame; the fault maps
    // P1's PVMA frame onto the cache slot that received A.
    let mut buf = [0u8; 1];
    let svma_a = p1.svma_of(a, 0).unwrap();
    p1.read(svma_a, &mut buf).unwrap();
    assert_eq!(buf[0], 0xAA);

    // P2 accesses B likewise.
    let svma_b = p2.svma_of(b, 0).unwrap();
    p2.read(svma_b, &mut buf).unwrap();
    assert_eq!(buf[0], 0xBB);

    // SMT agreement: "if a process maps a page at some frame, all
    // processes see this page at this frame" — the SVMA of A is identical
    // for P1 and P2, even though their local addresses differ.
    assert_eq!(svma_a, p2.svma_of(a, 0).unwrap());
    assert_eq!(svma_b, p1.svma_of(b, 0).unwrap());
    assert_ne!(
        p1.to_local(svma_a),
        p2.to_local(svma_a),
        "different PVMAs, same SVMA"
    );

    // Both cache slots are occupied: A and B resident.
    assert!(cache.slot_of(a).is_some());
    assert!(cache.slot_of(b).is_some());

    // ---- state (b) ------------------------------------------------------
    // P2 wants C. The cache is full and both slots carry access claims, so
    // P2's first-level clock must run: accessible -> protected, then
    // protected -> invalid, releasing its claim on B's slot.
    let svma_c = p2.svma_of(c, 0).unwrap();
    assert_ne!(svma_c, svma_a);
    assert_ne!(svma_c, svma_b);

    p2.sweep(8); // accessible -> protected
    let b_local_p2 = p2.to_local(svma_b);
    assert_eq!(p2.space().frame_state(b_local_p2), FrameState::Protected);
    p2.sweep(8); // protected -> invalid (decrements B's slot counter)
    assert_eq!(p2.space().frame_state(b_local_p2), FrameState::Invalid);

    // Now the second-level clock can replace B with C.
    p2.read(svma_c, &mut buf).unwrap();
    assert_eq!(buf[0], 0xCC);
    assert!(cache.slot_of(b).is_none(), "B was replaced");
    let (c_slot, _) = cache.slot_of(c).unwrap();

    // P1 still reads A fault-free (its claim was never released)...
    p1.read(svma_a, &mut buf).unwrap();
    assert_eq!(buf[0], 0xAA);

    // ...and when P1 accesses C, the SVMA mapping leads its PVMA frame to
    // the cache slot that holds C — no second load.
    let loads_before = cache.stats().loads.get();
    p1.read(svma_c, &mut buf).unwrap();
    assert_eq!(buf[0], 0xCC);
    assert_eq!(cache.stats().loads.get(), loads_before, "no new load");
    // Both processes now claim C's slot.
    assert_eq!(cache.access_count(c_slot), 2);

    // B is re-fetchable on demand; its (sticky) virtual frame still names
    // it, so old shared pointers to B remain meaningful.
    assert_eq!(svma_b, p1.svma_of(b, 0).unwrap());
}

#[test]
fn figure4_pointers_are_fixed_once_and_shared() {
    // "A pointer needs to be fixed once by the first process that fetched
    // the corresponding page in cache": a pointer stored *inside* a shared
    // page (as an SVMA offset) is directly usable by every process.
    let cache = SharedCache::new(4, 16, PS);
    let io = Arc::new(MapIo::new());
    let (x, y) = (page(1), page(2));
    io.put(x, vec![0; PS]);
    io.put(y, {
        let mut v = vec![0; PS];
        v[100..112].copy_from_slice(b"the payload!");
        v
    });

    let p1 = attach(&cache, &io);
    let p2 = attach(&cache, &io);

    // P1 stores, inside page X, a shared pointer to byte 100 of page Y.
    let y_ptr = p1.svma_of(y, 100).unwrap();
    p1.write(p1.svma_of(x, 0).unwrap(), &y_ptr.0.to_le_bytes())
        .unwrap();

    // P2 reads the pointer from X and follows it — different process,
    // different PVMA, same SVMA.
    let mut raw = [0u8; 8];
    p2.read(p2.svma_of(x, 0).unwrap(), &mut raw).unwrap();
    let followed = bess_cache::Svma(u64::from_le_bytes(raw));
    assert_eq!(followed, y_ptr);
    let mut payload = [0u8; 12];
    p2.read(followed, &mut payload).unwrap();
    assert_eq!(&payload, b"the payload!");
}
