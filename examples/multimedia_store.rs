//! A Prospector/Calico-style multimedia store (§1 of the paper): large
//! media blobs as huge objects with byte-range editing and compression
//! hooks, metadata objects referencing them, and a **multifile** spreading
//! segments across storage areas for parallel content analysis.
//!
//! Run with: `cargo run -p bess-core --example multimedia_store`

use std::sync::Arc;

use bess_cache::AreaSet;
use bess_core::{codec, Database, EventKind, Persist, RawBytes, Ref, Session, SessionConfig};
use bess_segment::TypeDesc;
use bess_storage::{AreaConfig, AreaId, StorageArea};

/// Metadata for one media asset; `blob` points at the huge object holding
/// the bytes.
struct Asset {
    title: String,
    kind: u32, // 0 = video, 1 = audio, 2 = image
    bytes: u64,
    blob: Option<Ref<RawBytes>>,
}

impl Persist for Asset {
    fn type_desc() -> TypeDesc {
        TypeDesc {
            name: "media::Asset".into(),
            size: 64,
            ref_offsets: vec![56],
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; 64];
        codec::put_str(&mut b, 0, 40, &self.title);
        codec::put_u32(&mut b, 40, self.kind);
        codec::put_u64(&mut b, 48, self.bytes);
        codec::put_ref(&mut b, 56, self.blob);
        b
    }

    fn decode(bytes: &[u8]) -> Self {
        Asset {
            title: codec::get_str(bytes, 0, 40),
            kind: codec::get_u32(bytes, 40),
            bytes: codec::get_u64(bytes, 48),
            blob: codec::get_ref(bytes, 56),
        }
    }
}

/// A deliberately silly "codec": run-length encoding, standing in for the
/// user-written compression functions of §2.4.
fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut iter = data.iter().peekable();
    while let Some(&b) = iter.next() {
        let mut run = 1u8;
        while run < 255 && iter.peek() == Some(&&b) {
            iter.next();
            run += 1;
        }
        out.push(run);
        out.push(b);
    }
    out
}

fn rle_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for pair in data.chunks(2) {
        out.extend(std::iter::repeat_n(pair[1], pair[0] as usize));
    }
    out
}

fn synth_frames(id: u64, len: usize) -> Vec<u8> {
    // Long runs — very compressible, like silence or black frames.
    (0..len).map(|i| ((i / 997) as u8).wrapping_add(id as u8)).collect()
}

fn main() {
    // Three storage areas — think three disks on different controllers.
    let areas = Arc::new(AreaSet::new());
    for id in 0..3 {
        areas.add(Arc::new(
            StorageArea::create_mem(AreaId(id), AreaConfig::default()).unwrap(),
        ));
    }
    let db = Database::create(&*Arc::clone(&areas), "mediadb", 1, 1, 0).unwrap();
    let session = Session::embedded(db, Arc::clone(&areas), None, None, SessionConfig::default());

    // Register the §2.4 compression hooks and a store-event counter.
    session
        .hooks()
        .set_compression(Arc::new(rle_compress), Arc::new(rle_decompress));
    session.hooks().register(
        EventKind::BlobStore,
        Arc::new(|e| {
            if let Some(d) = &e.detail {
                println!("  [hook] storing blob: {d}");
            }
        }),
    );

    // The asset catalog is a multifile over all three areas.
    session.begin().unwrap();
    session.create_file("assets", vec![0, 1, 2], 16, 4).unwrap();
    let blob_seg = session.create_segment(0, 128, 2).unwrap();

    let mut assets = Vec::new();
    for i in 0..12u64 {
        let frames = synth_frames(i, 200_000);
        let blob = session.store_blob(blob_seg, &frames).unwrap();
        let asset = session
            .create_in_file(
                "assets",
                &Asset {
                    title: format!("clip-{i:03}"),
                    kind: (i % 3) as u32,
                    bytes: frames.len() as u64,
                    blob: Some(blob),
                },
            )
            .unwrap();
        assets.push(asset);
    }
    session.commit().unwrap();
    session.save_db().unwrap();

    // The multifile spread its segments across the areas.
    let segs = session.file_segments("assets").unwrap();
    let mut per_area = [0u32; 3];
    for s in &segs {
        per_area[s.area as usize] += 1;
    }
    println!(
        "multifile layout: {} segments over areas (a0={}, a1={}, a2={})",
        segs.len(),
        per_area[0],
        per_area[1],
        per_area[2]
    );

    // Parallel content analysis: one thread per area, scanning its share
    // of the multifile — the paper's "fast content-analysis and indexing
    // on large databases of multimedia objects".
    let refs = session.scan("assets").unwrap();
    println!("catalog scan: {} assets", refs.len());
    let handles: Vec<_> = (0..3u32)
        .map(|area| {
            let session = Arc::clone(&session);
            let mine: Vec<_> = refs
                .iter()
                .filter(|o| o.oid.seg.area == area)
                .map(|o| o.addr)
                .collect();
            std::thread::spawn(move || {
                let mut bytes = 0u64;
                for addr in mine {
                    let asset = session.get::<Asset>(bess_core::Ref::new(addr)).unwrap();
                    bytes += asset.bytes;
                }
                (area, bytes)
            })
        })
        .collect();
    for h in handles {
        let (area, bytes) = h.join().unwrap();
        println!("  area {area}: analysed {bytes} media bytes");
    }

    // Byte-range editing on a huge object: splice an ad break into clip 0
    // (insert), then cut it back out (delete) — §2.1's class interface.
    session.begin().unwrap();
    let a0 = session.get::<Asset>(assets[0]).unwrap();
    let payload = session.fetch_blob(a0.blob.unwrap()).unwrap();
    assert_eq!(payload.len() as u64, a0.bytes);
    println!(
        "clip-000: {} raw bytes (stored compressed as {} bytes)",
        payload.len(),
        session.open_huge(a0.blob.unwrap()).unwrap().len()
    );
    session.commit().unwrap();

    println!("multimedia store OK");
}
