//! On-the-fly database reorganisation in a federated environment (§2.1).
//!
//! "Databases can be re-organized on the fly without affecting object
//! references. ... This is an important issue because our system is planned
//! to be used in a federated environment. In such an environment it is
//! impossible to locate and change references to BeSS objects from the
//! other database management systems that participate in the federation."
//!
//! We build an object graph, hand out references (as a federation partner
//! would hold them), then compact, resize, and move the data across storage
//! areas — and every reference keeps resolving, both mid-session and after
//! a restart.
//!
//! Run with: `cargo run -p bess-core --example federated_reorg`

use std::sync::Arc;

use bess_cache::AreaSet;
use bess_core::{codec, Database, Persist, Ref, Session, SessionConfig};
use bess_segment::TypeDesc;
use bess_storage::{AreaConfig, AreaId, StorageArea};

struct Record {
    id: u64,
    payload: String,
    next: Option<Ref<Record>>,
}

impl Persist for Record {
    fn type_desc() -> TypeDesc {
        TypeDesc {
            name: "fed::Record".into(),
            size: 80,
            ref_offsets: vec![72],
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; 80];
        codec::put_u64(&mut b, 0, self.id);
        codec::put_str(&mut b, 8, 64, &self.payload);
        codec::put_ref(&mut b, 72, self.next);
        b
    }

    fn decode(bytes: &[u8]) -> Self {
        Record {
            id: codec::get_u64(bytes, 0),
            payload: codec::get_str(bytes, 8, 64),
            next: codec::get_ref(bytes, 72),
        }
    }
}

fn walk(session: &Session, head: Ref<Record>) -> (usize, u64) {
    let mut count = 0;
    let mut sum = 0;
    let mut cursor = Some(head);
    while let Some(r) = cursor {
        let rec = session.get(r).unwrap();
        count += 1;
        sum += rec.id;
        cursor = rec.next;
    }
    (count, sum)
}

fn main() {
    let areas = Arc::new(AreaSet::new());
    for id in 0..2 {
        areas.add(Arc::new(
            StorageArea::create_mem(AreaId(id), AreaConfig::default()).unwrap(),
        ));
    }
    let db = Database::create(&*Arc::clone(&areas), "federated", 1, 1, 0).unwrap();
    let session = Session::embedded(db, Arc::clone(&areas), None, None, SessionConfig::default());

    // Build a 100-record chain in area 0, delete half to litter holes.
    session.begin().unwrap();
    let seg = session.create_segment(0, 256, 8).unwrap();
    let mut next: Option<Ref<Record>> = None;
    let mut all = Vec::new();
    for i in (0..100u64).rev() {
        let r = session
            .create(
                seg,
                &Record {
                    id: i,
                    payload: format!("record payload number {i}"),
                    next,
                },
            )
            .unwrap();
        all.push(r);
        next = Some(r);
    }
    let head = next.unwrap();
    session.set_root("chain", head).unwrap();
    session.commit().unwrap();

    let (n, sum) = walk(&session, head);
    println!("built chain: {n} records, id-sum {sum}");

    // Delete every record NOT on the chain... the chain holds all; instead
    // create+delete scratch objects to fragment the data segment.
    session.begin().unwrap();
    let mut scratch = Vec::new();
    for _ in 0..50 {
        scratch.push(session.create_bytes(seg, &[0xAA; 120]).unwrap());
    }
    for s in &scratch {
        session.delete(s.addr()).unwrap();
    }
    session.commit().unwrap();

    // Reorganisation while the "federation" (this session's live Ref
    // values) keeps its pointers:
    println!("compacting data segment...");
    session.compact_segment(seg).unwrap();
    let (n, s2) = walk(&session, head);
    assert_eq!((n, s2), (100, sum));

    println!("moving data segment to storage area 1...");
    session.move_data_segment(seg, 1).unwrap();
    let (n, s3) = walk(&session, head);
    assert_eq!((n, s3), (100, sum));

    println!("shrinking the data segment...");
    session.resize_data(seg, 4).unwrap();
    let (n, s4) = walk(&session, head);
    assert_eq!((n, s4), (100, sum));

    // The same references (persisted in objects) survive a full restart:
    session.save_db().unwrap();
    let db2 = Database::open(&*Arc::clone(&areas), 0).unwrap();
    let session2 = Session::embedded(db2, areas, None, None, SessionConfig::default());
    let head2: Ref<Record> = session2.root("chain").unwrap().unwrap();
    let (n, s5) = walk(&session2, head2);
    assert_eq!((n, s5), (100, sum));
    println!("after restart: {n} records reachable, id-sum unchanged");

    let st = session2.manager().stats();
    println!(
        "restart session swizzled {} refs with {} unresolved",
        st.refs_swizzled.get(),
        st.refs_unresolved.get()
    );
    assert_eq!(st.refs_unresolved.get(), 0);
    println!("federated reorganisation OK — no reference ever broke");
}
