//! The §2.4 extensibility story: primitive events and hook functions.
//!
//! Reproduces the paper's motivating scenario — "a user wants to count the
//! number of transaction commits performed in a BeSS system during some
//! period of time" — plus fault tracing and the stray-pointer trap, all
//! without touching application code or BeSS internals.
//!
//! Run with: `cargo run -p bess-core --example event_hooks`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bess_cache::AreaSet;
use bess_core::{Database, Event, EventKind, Session, SessionConfig};
use bess_storage::{AreaConfig, AreaId, StorageArea};

fn main() {
    let areas = Arc::new(AreaSet::new());
    areas.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    let db = Database::create(&*Arc::clone(&areas), "hooked", 1, 1, 0).unwrap();
    let session = Session::embedded(db, areas, None, None, SessionConfig::default());

    // --- the commit counter of §2.4 --------------------------------------
    let commits = Arc::new(AtomicU64::new(0));
    {
        let commits = Arc::clone(&commits);
        session.hooks().register(
            EventKind::TxnCommit,
            Arc::new(move |_e: &Event| {
                commits.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }

    // --- update-detection tracing (the §2.3 write traps, observed) ------
    let writes = Arc::new(AtomicU64::new(0));
    {
        let writes = Arc::clone(&writes);
        session.hooks().register(
            EventKind::PageWrite,
            Arc::new(move |e: &Event| {
                writes.fetch_add(1, Ordering::Relaxed);
                if let (Some(txn), Some(page)) = (e.txn, e.page) {
                    println!("  [trace] txn {txn} first write to page {page}");
                }
            }),
        );
    }

    // --- object lifecycle auditing ---------------------------------------
    session.hooks().register(
        EventKind::ObjectCreated,
        Arc::new(|e: &Event| {
            if let Some(oid) = e.oid {
                println!("  [audit] created {oid}");
            }
        }),
    );

    // Run a few transactions.
    session.begin().unwrap();
    let seg = session.create_segment(0, 32, 4).unwrap();
    let a = session.create_bytes(seg, b"first object.").unwrap();
    let b = session.create_bytes(seg, b"second object").unwrap();
    session.commit().unwrap();

    session.begin().unwrap();
    session.put_bytes(a, 0, b"FIRST").unwrap();
    session.put_bytes(b, 0, b"SECOND").unwrap();
    session.commit().unwrap();

    session.begin().unwrap();
    session.put_bytes(a, 6, b"object!").unwrap();
    session.abort().unwrap(); // aborts do not count as commits

    println!("commits counted by hook: {}", commits.load(Ordering::Relaxed));
    println!("page write traps seen:  {}", writes.load(Ordering::Relaxed));
    assert_eq!(commits.load(Ordering::Relaxed), 2);
    assert!(writes.load(Ordering::Relaxed) >= 1);

    // --- the hardware trap (§2.2): a stray pointer into an object header
    // is caught at the offending instruction, before corruption spreads.
    let stray = session.manager().space().write_u64(a.addr(), 0xDEAD);
    println!("stray write into a slotted segment: {stray:?}");
    assert!(stray.is_err());
    let denied = session.manager().stats().stray_writes_denied.get();
    println!("stray writes denied so far: {denied}");
    assert!(denied >= 1);
    // The object is intact:
    session.begin().unwrap();
    assert_eq!(&session.get_bytes(a).unwrap()[..5], b"FIRST");
    session.commit().unwrap();

    println!("event hooks OK");
}
