//! The future-work extensions in action (DESIGN.md §7): software
//! object-level locking (§2.3), downgrade callbacks, and client logging at
//! the node server (§6).
//!
//! Run with: `cargo run -p bess-core --example extensions`

use std::sync::Arc;
use std::time::{Duration, Instant};

use bess_cache::{AreaSet, DbPage};
use bess_core::{Database, Ref, Session, SessionConfig};
use bess_lock::LockMode;
use bess_net::{Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, NodeServer,
    NodeServerConfig, PageUpdate, ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::LogManager;

fn main() {
    let net = Network::new(Duration::from_micros(200));
    let dir = Arc::new(Directory::new());
    let set = Arc::new(AreaSet::new());
    set.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, NodeId(100), &set);
    let (server, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        LogManager::create_mem(),
        &net,
    );

    // ---- 1. object-level locking: same page, different objects ----------
    println!("== object-level locking (§2.3 future work) ==");
    let db = Database::create(&*Arc::clone(&set), "ext", 1, 1, 0).unwrap();
    let boot = Session::embedded(
        Arc::clone(&db),
        Arc::clone(&set),
        None,
        None,
        SessionConfig::default(),
    );
    boot.begin().unwrap();
    let seg = boot.create_segment(0, 16, 2).unwrap();
    let a = boot.create_bytes(seg, &[0u8; 64]).unwrap();
    let b = boot.create_bytes(seg, &[0u8; 64]).unwrap();
    let (a_oid, b_oid) = (
        boot.global(a).unwrap().oid(),
        boot.global(b).unwrap().oid(),
    );
    boot.commit().unwrap();
    boot.save_db().unwrap();

    let open_obj_session = |node: u32| {
        let db = Database::open(&*Arc::clone(&set), 0).unwrap();
        let conn = ClientConn::connect(
            &net,
            Arc::clone(&dir),
            ClientConfig::new(NodeId(node), NodeId(100)),
        );
        Session::remote(
            db,
            conn,
            SessionConfig {
                object_locking: true,
                ..SessionConfig::default()
            },
        )
    };
    let s1 = open_obj_session(1);
    let s2 = open_obj_session(2);
    s1.begin().unwrap();
    let a1: Ref<bess_core::RawBytes> = Ref::new(s1.manager().resolve_oid(a_oid).unwrap());
    s1.put_bytes(a1, 0, b"held by one").unwrap();
    // While s1's transaction is still open, s2 commits the *other* object
    // on the very same page.
    s2.begin().unwrap();
    let b2: Ref<bess_core::RawBytes> = Ref::new(s2.manager().resolve_oid(b_oid).unwrap());
    s2.put_bytes(b2, 0, b"done by two").unwrap();
    s2.commit().unwrap();
    println!("  s2 committed object B while s1 still holds object A (same page) ✔");
    s1.commit().unwrap();

    // ---- 2. downgrade callbacks ------------------------------------------
    println!("== downgrade callbacks (callback-read) ==");
    let reader = ClientConn::connect(
        &net,
        Arc::clone(&dir),
        ClientConfig::new(NodeId(5), NodeId(100)),
    );
    let writer = ClientConn::connect(
        &net,
        Arc::clone(&dir),
        ClientConfig::new(NodeId(6), NodeId(100)),
    );
    let page = {
        let seg = set.get(0).unwrap().alloc(1).unwrap();
        DbPage {
            area: 0,
            page: seg.start_page,
        }
    };
    writer.begin().unwrap();
    writer.fetch_page(page, LockMode::X).unwrap();
    writer
        .commit(vec![PageUpdate {
            page,
            offset: 0,
            before: vec![0],
            after: vec![1],
        }])
        .unwrap();
    // The writer's X stays cached... until a reader shows up.
    reader.begin().unwrap();
    reader.fetch_page(page, LockMode::S).unwrap();
    reader.commit(vec![]).unwrap();
    let kept = writer.lock_cache().cached_mode(bess_lock::LockName::Page {
        area: page.area,
        page: page.page,
    });
    println!(
        "  writer's cached lock after a reader's S request: {kept:?} (downgraded, not revoked) ✔"
    );
    assert_eq!(kept, Some(LockMode::S));
    println!(
        "  server downgrade callbacks: {}",
        server.stats().callback_downgrades.get()
    );

    // ---- 3. client logging at the node server (§6) -----------------------
    println!("== client logging at the node server (§6 future work) ==");
    let (ns, _) = NodeServer::start_with_log(
        NodeServerConfig::new(NodeId(50)),
        Arc::clone(&dir),
        &net,
        LogManager::create_mem(),
    );
    let h = ns.handle();
    let txn = h.begin();
    h.lock(
        txn,
        bess_lock::LockName::Page {
            area: page.area,
            page: page.page,
        },
        LockMode::X,
    )
    .unwrap();
    let t0 = Instant::now();
    h.commit(
        txn,
        vec![PageUpdate {
            page,
            offset: 0,
            before: vec![1],
            after: vec![2],
        }],
    )
    .unwrap();
    let local = t0.elapsed();
    println!("  commit returned after {local:?} (local log force; wire latency is 200µs/hop)");
    ns.drain_shipments();
    println!(
        "  shipped to the owner afterwards: local_commits={}, server commits={}",
        ns.stats().local_commits.get(),
        server.stats().commits.get()
    );
    let area = set.get(0).unwrap();
    let mut buf = vec![0u8; area.page_size()];
    area.read_page(page.page, &mut buf).unwrap();
    assert_eq!(buf[0], 2);
    println!("extensions OK");
}
