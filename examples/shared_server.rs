//! The two client operation modes of §4, side by side: several
//! "processes" on one node work through a node server — some over the
//! message protocol (copy on access), some directly in the shared cache
//! (shared memory) — while a remote BeSS server owns the data and keeps
//! every cache consistent with callback locking.
//!
//! Run with: `cargo run -p bess-core --example shared_server`

use std::sync::Arc;
use std::time::Duration;

use bess_cache::{AreaSet, DbPage};
use bess_core::ShmSession;
use bess_lock::LockMode;
use bess_net::{Network, NodeId};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, Msg, NodeServer,
    NodeServerConfig, PageUpdate, ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use bess_wal::LogManager;

fn main() {
    // ---- the data-owning server on its own "machine" -------------------
    let net: Arc<Network<Msg>> = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let areas = Arc::new(AreaSet::new());
    areas.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));
    register_areas(&dir, NodeId(100), &areas);
    let (server, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&areas),
        LogManager::create_mem(),
        &net,
    );

    // A shared counter page.
    let seg = areas.get(0).unwrap().alloc(1).unwrap();
    let page = DbPage {
        area: 0,
        page: seg.start_page,
    };

    // ---- the client node: one node server, two kinds of local apps -----
    let ns = NodeServer::start(NodeServerConfig::new(NodeId(50)), Arc::clone(&dir), &net);

    // Shared-memory processes: direct, in-place access to the node cache.
    let mut shm_handles = Vec::new();
    for p in 0..3 {
        let handle = ns.handle();
        shm_handles.push(std::thread::spawn(move || {
            let session = ShmSession::attach(handle);
            for _ in 0..20 {
                loop {
                    session.begin().unwrap();
                    let mut buf = [0u8; 8];
                    if session.read(page, 0, &mut buf).is_err() {
                        let _ = session.abort();
                        continue;
                    }
                    let v = u64::from_le_bytes(buf);
                    if session.write(page, 0, &(v + 1).to_le_bytes()).is_err() {
                        let _ = session.abort();
                        continue;
                    }
                    match session.commit() {
                        Ok(()) => break,
                        Err(_) => continue,
                    }
                }
            }
            println!("  shm process {p}: 20 increments committed in place");
        }));
    }
    for h in shm_handles {
        h.join().unwrap();
    }

    // Copy-on-access processes: the same interface, but over the message
    // protocol (simulated IPC) with a private copy of each page.
    let mut coa_handles = Vec::new();
    for p in 0..2u32 {
        let net = Arc::clone(&net);
        let dir = Arc::clone(&dir);
        let gateway = ns.node();
        coa_handles.push(std::thread::spawn(move || {
            let mut cfg = ClientConfig::new(NodeId(60 + p), gateway);
            cfg.gateway = Some(gateway);
            let conn = ClientConn::connect(&net, dir, cfg);
            for _ in 0..20 {
                loop {
                    conn.begin().unwrap();
                    let data = match conn.fetch_page(page, LockMode::X) {
                        Ok(d) => d,
                        Err(_) => {
                            let _ = conn.abort();
                            continue;
                        }
                    };
                    let v = u64::from_le_bytes(data[0..8].try_into().unwrap());
                    let update = PageUpdate {
                        page,
                        offset: 0,
                        before: data[0..8].to_vec(),
                        after: (v + 1).to_le_bytes().to_vec(),
                    };
                    match conn.commit(vec![update]) {
                        Ok(()) => break,
                        Err(_) => continue,
                    }
                }
            }
            println!("  copy-on-access process {p}: 20 increments via IPC");
            conn.disconnect();
        }));
    }
    for h in coa_handles {
        h.join().unwrap();
    }

    // ---- verify: every increment survived, fully serialized ------------
    let area = areas.get(0).unwrap();
    let mut buf = vec![0u8; area.page_size()];
    area.read_page(page.page, &mut buf).unwrap();
    let total = u64::from_le_bytes(buf[0..8].try_into().unwrap());
    println!("final counter at the owning server: {total}");
    assert_eq!(total, 5 * 20, "3 shm + 2 copy-on-access processes * 20");

    let ns_stats = ns.stats();
    println!(
        "node server: {} cache hits, {} remote fetches, {} lock RPCs avoided locally",
        ns_stats.cache_hits.get(),
        ns_stats.remote_fetches.get(),
        ns_stats.lock_local.get()
    );
    let sv = server.stats();
    println!(
        "server: {} commits, {} callbacks sent ({} released, {} deferred)",
        sv.commits.get(),
        sv.callbacks_sent.get(),
        sv.callback_releases.get(),
        sv.callback_deferred.get()
    );
    println!("shared server OK");
}
