//! Quickstart: create a database, store a little object graph, name a
//! root, commit, and read everything back through the fast-reference path.
//!
//! Run with: `cargo run -p bess-core --example quickstart`

use std::sync::Arc;

use bess_cache::AreaSet;
use bess_core::{codec, Database, Persist, Ref, Session, SessionConfig};
use bess_segment::TypeDesc;
use bess_storage::{AreaConfig, AreaId, StorageArea};

/// A persistent type: a person with a name and a spouse reference — the
/// exact `ref<Person>` example of the paper's §2.5.
struct Person {
    name: String,
    age: u32,
    spouse: Option<Ref<Person>>,
}

impl Persist for Person {
    fn type_desc() -> TypeDesc {
        TypeDesc {
            name: "quickstart::Person".into(),
            size: 48,
            // The swizzler learns where our reference lives from the type
            // descriptor (§2.1).
            ref_offsets: vec![40],
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut b = vec![0u8; 48];
        codec::put_str(&mut b, 0, 32, &self.name);
        codec::put_u32(&mut b, 32, self.age);
        codec::put_ref(&mut b, 40, self.spouse);
        b
    }

    fn decode(bytes: &[u8]) -> Self {
        Person {
            name: codec::get_str(bytes, 0, 32),
            age: codec::get_u32(bytes, 32),
            spouse: codec::get_ref(bytes, 40),
        }
    }
}

fn main() {
    // 1. Physical storage: one storage area (a UNIX file or raw partition
    //    in the paper; an in-memory area here — use StorageArea::create_file
    //    for a real file).
    let areas = Arc::new(AreaSet::new());
    areas.add(Arc::new(
        StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap(),
    ));

    // 2. A database and an embedded session (the application linked with
    //    the storage manager).
    let db = Database::create(&*Arc::clone(&areas), "quickstart", 1, 1, 0).unwrap();
    let session = Session::embedded(db, Arc::clone(&areas), None, None, SessionConfig::default());

    // 3. A transaction: create two people who reference each other.
    session.begin().unwrap();
    let seg = session.create_segment(0, 64, 4).unwrap();
    let alice = session
        .create(
            seg,
            &Person {
                name: "Alice".into(),
                age: 41,
                spouse: None,
            },
        )
        .unwrap();
    let bob = session
        .create(
            seg,
            &Person {
                name: "Bob".into(),
                age: 39,
                spouse: Some(alice),
            },
        )
        .unwrap();
    // Patch Alice's spouse reference (stored as a swizzled virtual
    // address; the reference table keeps it valid across restarts).
    let mut a = session.get(alice).unwrap();
    a.spouse = Some(bob);
    session.put(alice, &a).unwrap();
    session.set_root("alice", alice).unwrap();
    session.commit().unwrap();
    session.save_db().unwrap();

    // 4. Dereference: p -> spouse -> name, exactly like the paper's
    //    `p->spouse->name`.
    let p: Ref<Person> = session.root("alice").unwrap().unwrap();
    let alice_back = session.get(p).unwrap();
    let spouse = session.get(alice_back.spouse.unwrap()).unwrap();
    println!("{} (age {})", alice_back.name, alice_back.age);
    println!("  spouse: {} (age {})", spouse.name, spouse.age);
    assert_eq!(spouse.name, "Bob");

    // 5. Reopen the database in a fresh session (a new "process": all
    //    virtual addresses change; faults + DP fixups + swizzling make the
    //    same graph reachable).
    let db2 = Database::open(&*Arc::clone(&areas), 0).unwrap();
    let session2 = Session::embedded(db2, areas, None, None, SessionConfig::default());
    let p2: Ref<Person> = session2.root("alice").unwrap().unwrap();
    let alice2 = session2.get(p2).unwrap();
    let spouse2 = session2.get(alice2.spouse.unwrap()).unwrap();
    println!("after reopen: {} -> {}", alice2.name, spouse2.name);
    assert_eq!(spouse2.name, "Bob");

    let stats = session2.manager().stats();
    println!(
        "second session: {} slotted loads, {} data loads, {} DP fixups, {} refs swizzled",
        stats.slotted_loads.get(),
        stats.data_loads.get(),
        stats.dp_fixups.get(),
        stats.refs_swizzled.get()
    );
    println!("quickstart OK");
}
