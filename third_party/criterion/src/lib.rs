//! Offline stand-in for the subset of `criterion` used by the BeSS
//! benchmarks. It keeps the same bench-authoring API (`criterion_group!`,
//! `benchmark_group`, `bench_with_input`, `Throughput`, `black_box`) and
//! reports mean wall-clock time per iteration — no statistics, plots, or
//! baselines, but enough for relative comparisons under `cargo bench`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How work per iteration is expressed in reports.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target_time: Duration,
}

impl Bencher {
    /// Measures `f` repeatedly for the sampling window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration round.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_batch = (self.target_time.as_nanos() / 8 / once.as_nanos()).clamp(1, 100_000) as u64;

        let begin = Instant::now();
        let mut iters = 0u64;
        while begin.elapsed() < self.target_time {
            for _ in 0..per_batch {
                black_box(f());
            }
            iters += per_batch;
        }
        self.iters_done = iters + 1;
        self.elapsed = begin.elapsed() + once;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    target_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (the stand-in sizes samples by time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.target_time = time.min(Duration::from_millis(500));
        self
    }

    /// Sets the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target_time: self.target_time,
        };
        f(&mut b);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target_time: self.target_time,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters_done == 0 {
        println!("{group}/{id:<40} (not measured)");
        return;
    }
    let per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gbps = n as f64 / per_iter; // bytes/ns == GB/s
            format!("  {gbps:>10.3} GB/s")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 * 1e3 / per_iter;
            format!("  {meps:>10.3} Melem/s")
        }
        None => String::new(),
    };
    println!(
        "{group}/{id:<40} {:>12.1} ns/iter  ({} iters){rate}",
        per_iter, b.iters_done
    );
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: the stand-in favours fast signal over tight
            // confidence intervals.
            target_time: Duration::from_millis(120),
        }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let target_time = self.target_time;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            target_time,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target_time: self.target_time,
        };
        f(&mut b);
        report("bench", &id.id, &b, None);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                {
                    let mut criterion = $crate::Criterion::default();
                    $target(&mut criterion);
                }
            )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            target_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("add", 1), |b| {
            b.iter(|| black_box(1u64) + black_box(2u64))
        });
        group.finish();
    }
}
