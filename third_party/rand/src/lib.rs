//! Offline stand-in for the subset of `rand` used by BeSS.
//!
//! Provides a seedable xoshiro256++ generator behind the `StdRng` /
//! `SeedableRng` / `Rng` names the benchmarks and workload generators use.
//! Distribution quality matters less here than determinism and speed;
//! xoshiro256++ passes the statistical bar for Zipf/hot-cold sampling.

/// Core RNG abstraction (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value samplable uniformly from a range (supports `gen_range`).
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Modulo bias is negligible for the spans used in benchmarks
                // (all far below 2^64).
                let v = (rng.next_u64() as u128) % span;
                (low as u128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type with a natural "uniform random value" (supports `gen`).
pub trait Standard {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_half_open(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (xoshiro256++ under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
                Self::splitmix(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
