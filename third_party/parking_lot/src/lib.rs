//! Offline stand-in for the subset of `parking_lot` used by BeSS.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the same API (non-poisoning `Mutex`/`RwLock` whose guards are
//! returned without a `Result`, and a `Condvar` that waits on a guard by
//! `&mut` reference) over `std::sync` primitives. Poisoning is deliberately
//! ignored: a panicking thread must not wedge every later test that touches
//! the same lock, which matches parking_lot semantics.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual exclusion primitive (non-poisoning, like `parking_lot::Mutex`).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can take the std guard out and put a new
    // one back while the caller keeps holding `&mut MutexGuard`.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A reader-writer lock (non-poisoning, like `parking_lot::RwLock`).
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable whose `wait` borrows the guard mutably, matching
/// `parking_lot::Condvar`.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified. Spurious wakeups are possible, as with any
    /// condition variable.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let now = std::time::Instant::now();
        if now >= deadline {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

/// A one-time initialization primitive (subset of `parking_lot::Once`).
#[derive(Default, Debug)]
pub struct Once {
    done: AtomicBool,
    lock: Mutex<()>,
}

impl Once {
    /// Creates a new `Once`.
    pub const fn new() -> Self {
        Once {
            done: AtomicBool::new(false),
            lock: Mutex::new(()),
        }
    }

    /// Runs `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        if self.done.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock();
        if !self.done.load(Ordering::Acquire) {
            f();
            self.done.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "non-poisoning: lock still usable");
    }
}
