//! Offline stand-in for the subset of `proptest` used by BeSS.
//!
//! Provides the `proptest!`/`prop_oneof!` macros, `Strategy` with
//! `prop_map`, `any::<T>()`, `Just`, `prop::collection::vec`, and
//! `ProptestConfig::with_cases`. Inputs are generated from a
//! deterministic per-case PRNG, so failures reproduce exactly; there is
//! no shrinking — the failing case index is printed instead so the case
//! can be replayed under a debugger.

use std::ops::Range;

/// Deterministic generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for the `case`-th test case (fixed base seed, so every
    /// run explores the same inputs).
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0xB555_0001_D00D_F00Du64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 pseudo-random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A failed (or rejected) test case, as produced by `TestCaseError::fail`
/// inside a property body. Bodies may `return Err(...)` with this type, as
/// with real proptest; the runner turns it into a panic naming the case.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// A rejected case. The stand-in has no rejection budget, so this is
    /// treated like a failure to keep properties honest.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Result of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Test-runner configuration (subset of proptest's).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// [`Strategy::prop_map`] adaptor.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates an arbitrary value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// One weighted arm of a [`OneOf`]: `(weight, boxed generator)`.
pub type WeightedArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// Weighted choice between boxed alternative strategies (the engine behind
/// `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<WeightedArm<V>>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds from `(weight, generator)` arms.
    pub fn new(arms: Vec<WeightedArm<V>>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs at least one weighted arm");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, gen) in &self.arms {
            if pick < u64::from(*w) {
                return gen(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights exhausted")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s of `element` with length drawn from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module path used by `proptest::prelude::*` consumers.
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRng,
    };
}

/// Asserts a condition inside a property (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((
                $weight as u32,
                {
                    let __s = $strat;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&__s, rng)) as Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((
                1u32,
                {
                    let __s = $strat;
                    Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&__s, rng)) as Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )),+
        ])
    };
}

/// Declares property tests. Each `fn name(binding in strategy, ...)` runs
/// `config.cases` times with fresh deterministic inputs. The `#[test]`
/// attribute is written by the caller (as in the blocks this crate
/// replaces) and passes through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::TestRng::for_case(__case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // The body runs as a Result-returning closure (like real
                    // proptest) so it may `return Err(TestCaseError::...)`.
                    let __run = || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    };
                    if let Err(__e) = __run() {
                        panic!("property failed at case {__case}: {__e}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B(u64, bool),
        C,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            2 => (0u8..10).prop_map(Op::A),
            1 => (any::<u64>(), any::<bool>()).prop_map(|(x, b)| Op::B(x, b)),
            1 => Just(Op::C),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, ops in prop::collection::vec(op_strategy(), 1..20)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for op in &ops {
                if let Op::A(v) = op {
                    prop_assert!(*v < 10);
                }
            }
        }
    }

    proptest! {
        #[test]
        fn unconfigured_block_works(v in prop::collection::vec(any::<u8>(), 1..5)) {
            prop_assert_eq!(v.len(), v.iter().filter(|b| u16::from(**b) < 256).count());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        let s = prop::collection::vec(0u8..50, 1..30);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
