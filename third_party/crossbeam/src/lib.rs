//! Offline stand-in for the subset of `crossbeam` used by BeSS.
//!
//! Only `crossbeam::channel` is provided: a multi-producer multi-consumer
//! channel whose `Sender` and `Receiver` are both `Clone + Send + Sync`
//! (std's mpsc `Receiver` is neither, which the node-server fan-out
//! relies on). Implemented as a `Mutex<VecDeque>` + `Condvar` — adequate
//! for the simulated network's message volumes.

/// MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
        #[allow(dead_code)] // advisory only; kept for API shape
        capacity: Option<usize>,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders are gone and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel. `send` currently never blocks (the
    /// capacity is advisory); BeSS only uses `bounded(1)` for single
    /// reply slots, which never exceed one in-flight message.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
        match shared.queue.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = lock(&self.shared);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = lock(&self.shared);
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = lock(&self.shared);
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = match self.shared.ready.wait(state) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }

        /// Blocks until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = lock(&self.shared);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = match self.shared.ready.wait_timeout(state, deadline - now) {
                    Ok(v) => v,
                    Err(p) => p.into_inner(),
                };
                state = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.shared).receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            lock(&self.shared).receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_and_disconnect() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(42));
            t.join().unwrap();
        }
    }
}
