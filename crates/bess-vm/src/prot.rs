//! Page protection and virtual-frame states.

/// Protection applied to a virtual page, mirroring `mprotect` levels.
///
/// The paper's BeSS maps slotted segments read-only (write-protected) and
/// newly fetched data pages read-only so the first write traps and can be
/// recorded (§2.2, §2.3). Reserved-but-unfetched ranges are `None`
/// (access-protected), so the first *read* traps too.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protect {
    /// No access permitted; any touch faults.
    None,
    /// Reads permitted; writes fault.
    Read,
    /// Reads and writes permitted.
    ReadWrite,
}

impl Protect {
    /// Whether the protection admits the given kind of access.
    pub fn allows(self, access: Access) -> bool {
        matches!(
            (self, access),
            (Protect::ReadWrite, _) | (Protect::Read, Access::Read)
        )
    }
}

/// The kind of memory access being performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// The state of a virtual frame as used by the clock replacement algorithm
/// (§4.2 of the paper).
///
/// BeSS cannot keep a classic reference bit because applications touch
/// memory directly; instead the replacement clock is driven by the frame
/// state transition `Accessible -> Protected -> Invalid`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FrameState {
    /// Access-protected and not mapped to any cache slot.
    Invalid,
    /// Access-protected but mapped to a cache slot.
    Protected,
    /// Mapped to a cache slot and accessible without faulting.
    Accessible,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protect_allows_matrix() {
        assert!(!Protect::None.allows(Access::Read));
        assert!(!Protect::None.allows(Access::Write));
        assert!(Protect::Read.allows(Access::Read));
        assert!(!Protect::Read.allows(Access::Write));
        assert!(Protect::ReadWrite.allows(Access::Read));
        assert!(Protect::ReadWrite.allows(Access::Write));
    }
}
