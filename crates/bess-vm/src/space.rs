//! The simulated virtual address space.
//!
//! [`AddressSpace`] models, deterministically and in safe Rust, the subset
//! of UNIX virtual-memory behaviour that BeSS is built on:
//!
//! * **reservation** of address ranges without backing storage (the paper
//!   "reserves and access-protects a virtual memory address range" for every
//!   segment before fetching it, §2.1);
//! * **mapping** of pages onto frames of a [`PageStore`] — the analogue of
//!   `mmap` over the buffer-pool file (§4.1.1) or the shared cache (§4.1.2);
//! * **protection** (`mprotect`) with [`Protect::None`]/[`Protect::Read`]/
//!   [`Protect::ReadWrite`] levels; and
//! * **fault delivery**: an access that violates a page's protection invokes
//!   the [`FaultHandler`] registered for the surrounding reserved region,
//!   then retries — the resume semantics of a SIGSEGV handler.
//!
//! Every operation is counted in [`MemStats`], so experiments can report
//! reserved bytes, protection "system calls", and fault counts exactly as
//! the paper discusses them.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::addr::{VAddr, VRange};
use crate::handler::{Fault, FaultHandler, FaultOutcome};
use crate::prot::{Access, FrameState, Protect};
use crate::stats::MemStats;
use crate::store::{FrameId, HeapStore, PageStore};

/// Default page size: 4 KiB, matching the paper's SUN/SGI era hardware.
pub const DEFAULT_PAGE_SIZE: u64 = 4096;

/// Maximum times a single page access is retried after fault handling
/// before the access fails with [`VmError::FaultNotResolved`].
const MAX_FAULT_RETRIES: u32 = 8;

/// Errors raised by address-space operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmError {
    /// The address is not inside any reserved region.
    Unreserved(VAddr),
    /// The access violated page protection and the region's handler (or the
    /// absence of one) denied it. This is BeSS catching a stray pointer.
    ProtectionViolation {
        /// The faulting address.
        addr: VAddr,
        /// The faulting access kind.
        access: Access,
    },
    /// A handler kept resuming without making the page accessible.
    FaultNotResolved(VAddr),
    /// A protection or mapping operation addressed an unreserved page.
    BadRange(VRange),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Unreserved(a) => write!(f, "address {a} is not reserved"),
            VmError::ProtectionViolation { addr, access } => {
                write!(f, "protection violation: {access:?} at {addr}")
            }
            VmError::FaultNotResolved(a) => {
                write!(f, "fault at {a} not resolved after {MAX_FAULT_RETRIES} retries")
            }
            VmError::BadRange(r) => write!(f, "range {r:?} is not fully reserved"),
        }
    }
}

impl std::error::Error for VmError {}

/// Result alias for address-space operations.
pub type VmResult<T> = Result<T, VmError>;

struct PageEntry {
    prot: Protect,
    mapping: Option<(Arc<dyn PageStore>, FrameId)>,
}

struct Region {
    range: VRange,
    handler: Option<Arc<dyn FaultHandler>>,
}

/// A simulated per-process virtual address space.
///
/// Thread-safe; BeSS's shared-memory mode runs several "processes" (threads)
/// each with its own `AddressSpace` mapping the same cache frames.
pub struct AddressSpace {
    page_size: u64,
    next: Mutex<u64>,
    pages: RwLock<HashMap<u64, PageEntry>>,
    regions: RwLock<BTreeMap<u64, Region>>,
    anon: Arc<HeapStore>,
    group: bess_obs::Group,
    stats: MemStats,
}

impl AddressSpace {
    /// Creates a space with the default 4 KiB page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Creates a space with the given page size (must be a power of two).
    pub fn with_page_size(page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        // Give each space a distinct base, like ASLR: different processes
        // (and different runs of the same process) map segments at
        // different addresses, which is exactly the situation the BeSS
        // swizzling machinery must cope with. Without this, consecutive
        // "epochs" would accidentally reuse identical addresses and hide
        // unswizzled references.
        use std::sync::atomic::AtomicU64;
        // LINT: allow(raw-counter) — address-space epoch-id allocator, not a metric
        static SPACE_COUNTER: AtomicU64 = AtomicU64::new(1);
        let instance = SPACE_COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let base = (instance % (1 << 20)) << 33;
        let group = bess_obs::Registry::new().group("vm");
        let stats = MemStats::new(&group);
        AddressSpace {
            page_size,
            // Start above zero so address 0 stays null; one unreserved guard
            // page keeps off-by-one bugs loud.
            next: Mutex::new(base + page_size),
            pages: RwLock::new(HashMap::new()),
            regions: RwLock::new(BTreeMap::new()),
            anon: Arc::new(HeapStore::new(page_size as usize)),
            group,
            stats,
        }
    }

    /// The page size of this space.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Activity counters for this space.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The space's metric group (`vm.*`). The segment manager registers its
    /// `vm.fault.wave{1,2,3}.ns` histograms here so fault-wave latency sits
    /// beside the fault counters it explains.
    pub fn metrics(&self) -> &bess_obs::Group {
        &self.group
    }

    fn round_up(&self, len: u64) -> u64 {
        len.div_ceil(self.page_size) * self.page_size
    }

    /// Reserves (and access-protects) a fresh address range of at least
    /// `len` bytes, rounded up to whole pages. Faults inside the range are
    /// delivered to `handler`; with no handler every fault is a
    /// [`VmError::ProtectionViolation`].
    ///
    /// Reservation allocates *no* frames — only page-table bookkeeping, as
    /// in the paper's lazy scheme.
    pub fn reserve(&self, len: u64, handler: Option<Arc<dyn FaultHandler>>) -> VRange {
        let len = self.round_up(len.max(1));
        let start = {
            let mut next = self.next.lock();
            let start = *next;
            *next = start
                .checked_add(len)
                .and_then(|v| v.checked_add(self.page_size)) // guard page
                .expect("simulated address space exhausted");
            start
        };
        let range = VRange::new(VAddr::from_raw(start), len);
        self.regions
            .write()
            .insert(start, Region { range, handler });
        MemStats::bump(&self.stats.reserve_calls);
        MemStats::add(&self.stats.reserved_bytes, len);
        range
    }

    /// Releases a reserved range, dropping any page mappings inside it.
    pub fn unreserve(&self, range: VRange) -> VmResult<()> {
        let removed = self.regions.write().remove(&range.start().raw());
        match removed {
            Some(region) if region.range == range => {
                let mut pages = self.pages.write();
                for page in range.pages(self.page_size) {
                    pages.remove(&page);
                }
                MemStats::bump(&self.stats.unreserve_calls);
                Ok(())
            }
            Some(region) => {
                // Wrong extent supplied: put it back and fail.
                self.regions.write().insert(range.start().raw(), region);
                Err(VmError::BadRange(range))
            }
            None => Err(VmError::BadRange(range)),
        }
    }

    /// Replaces the fault handler of the region starting at `start`.
    pub fn set_handler(
        &self,
        start: VAddr,
        handler: Option<Arc<dyn FaultHandler>>,
    ) -> VmResult<()> {
        let mut regions = self.regions.write();
        match regions.get_mut(&start.raw()) {
            Some(region) => {
                region.handler = handler;
                Ok(())
            }
            None => Err(VmError::Unreserved(start)),
        }
    }

    /// The reserved region containing `addr`, if any.
    pub fn region_of(&self, addr: VAddr) -> Option<VRange> {
        let regions = self.regions.read();
        regions
            .range(..=addr.raw())
            .next_back()
            .map(|(_, r)| r.range)
            .filter(|r| r.contains(addr))
    }

    fn handler_of(&self, addr: VAddr) -> Option<(VRange, Option<Arc<dyn FaultHandler>>)> {
        let regions = self.regions.read();
        regions
            .range(..=addr.raw())
            .next_back()
            .filter(|(_, r)| r.range.contains(addr))
            .map(|(_, r)| (r.range, r.handler.clone()))
    }

    fn check_reserved(&self, range: VRange) -> VmResult<()> {
        match self.region_of(range.start()) {
            Some(region) if region.contains_range(range) => Ok(()),
            _ => Err(VmError::BadRange(range)),
        }
    }

    /// Maps one page (identified by any address within it) onto `frame` of
    /// `store` with protection `prot`. The page must lie in a reserved
    /// region.
    pub fn map_page(
        &self,
        addr: VAddr,
        store: Arc<dyn PageStore>,
        frame: FrameId,
        prot: Protect,
    ) -> VmResult<()> {
        assert_eq!(
            store.frame_size() as u64,
            self.page_size,
            "store frame size must equal the space page size"
        );
        if self.region_of(addr).is_none() {
            return Err(VmError::Unreserved(addr));
        }
        let page = addr.page(self.page_size);
        self.pages.write().insert(
            page,
            PageEntry {
                prot,
                mapping: Some((store, frame)),
            },
        );
        MemStats::bump(&self.stats.map_calls);
        Ok(())
    }

    /// Maps a whole reserved range onto consecutive `frames` of `store`.
    ///
    /// # Panics
    /// Panics if `frames` does not cover the range exactly.
    pub fn map_range(
        &self,
        range: VRange,
        store: &Arc<dyn PageStore>,
        frames: &[FrameId],
        prot: Protect,
    ) -> VmResult<()> {
        let npages = range.pages(self.page_size).count();
        assert_eq!(
            frames.len(),
            npages,
            "map_range: {} frames for {} pages",
            frames.len(),
            npages
        );
        self.check_reserved(range)?;
        for (page, frame) in range.pages(self.page_size).zip(frames) {
            self.pages.write().insert(
                page,
                PageEntry {
                    prot,
                    mapping: Some((Arc::clone(store), *frame)),
                },
            );
            MemStats::bump(&self.stats.map_calls);
        }
        Ok(())
    }

    /// Maps a reserved range onto fresh zero-filled anonymous frames.
    pub fn map_anon(&self, range: VRange, prot: Protect) -> VmResult<()> {
        self.check_reserved(range)?;
        let store: Arc<dyn PageStore> = Arc::clone(&self.anon) as Arc<dyn PageStore>;
        let frames: Vec<FrameId> = range
            .pages(self.page_size)
            .map(|_| self.anon.alloc())
            .collect();
        self.map_range(range, &store, &frames, prot)
    }

    /// Convenience: reserve + map anonymous memory in one step.
    pub fn alloc_anon(&self, len: u64, prot: Protect) -> VRange {
        let range = self.reserve(len, None);
        self.map_anon(range, prot).expect("fresh range is reserved");
        range
    }

    /// Unmaps the page containing `addr`, returning it to the *invalid*
    /// frame state. The reservation remains.
    pub fn unmap_page(&self, addr: VAddr) -> VmResult<()> {
        if self.region_of(addr).is_none() {
            return Err(VmError::Unreserved(addr));
        }
        let page = addr.page(self.page_size);
        let mut pages = self.pages.write();
        if pages.remove(&page).is_some() {
            MemStats::bump(&self.stats.unmap_calls);
        }
        Ok(())
    }

    /// Changes the protection of every page in `range`. Counts as **one**
    /// protection system call (the paper's §2.2 cost metric), like a single
    /// `mprotect` over the range. Pages in the range that are unmapped stay
    /// unmapped (their state remains *invalid*); mapped pages take the new
    /// protection.
    pub fn protect(&self, range: VRange, prot: Protect) -> VmResult<()> {
        self.check_reserved(range)?;
        let mut pages = self.pages.write();
        for page in range.pages(self.page_size) {
            if let Some(entry) = pages.get_mut(&page) {
                entry.prot = prot;
            }
        }
        MemStats::bump(&self.stats.protect_calls);
        Ok(())
    }

    /// The replacement-relevant state of the page containing `addr`
    /// (see [`FrameState`] and §4.2 of the paper).
    pub fn frame_state(&self, addr: VAddr) -> FrameState {
        let page = addr.page(self.page_size);
        let pages = self.pages.read();
        match pages.get(&page) {
            None => FrameState::Invalid,
            Some(entry) if entry.mapping.is_none() => FrameState::Invalid,
            Some(entry) if entry.prot == Protect::None => FrameState::Protected,
            Some(_) => FrameState::Accessible,
        }
    }

    /// The frame the page containing `addr` is mapped onto, if any.
    pub fn mapping(&self, addr: VAddr) -> Option<FrameId> {
        let page = addr.page(self.page_size);
        self.pages
            .read()
            .get(&page)
            .and_then(|e| e.mapping.as_ref().map(|(_, f)| *f))
    }

    /// The current protection of the page containing `addr`.
    /// Unmapped pages report [`Protect::None`].
    pub fn protection(&self, addr: VAddr) -> Protect {
        let page = addr.page(self.page_size);
        self.pages
            .read()
            .get(&page)
            .map(|e| e.prot)
            .unwrap_or(Protect::None)
    }

    /// Performs `op` on the page containing `addr` if its protection admits
    /// `access`; otherwise faults, dispatches the region handler, and
    /// retries. This is the core "load/store with resume" loop.
    fn access_page<R>(
        &self,
        addr: VAddr,
        access: Access,
        mut op: impl FnMut(&dyn PageStore, FrameId) -> R,
    ) -> VmResult<R> {
        let page = addr.page(self.page_size);
        for _ in 0..=MAX_FAULT_RETRIES {
            {
                let pages = self.pages.read();
                if let Some(entry) = pages.get(&page) {
                    if entry.prot.allows(access) {
                        let (store, frame) = entry
                            .mapping
                            .as_ref()
                            .expect("accessible page must be mapped");
                        return Ok(op(store.as_ref(), *frame));
                    }
                }
            }
            // Fault path: no locks held while the handler runs.
            match access {
                Access::Read => MemStats::bump(&self.stats.read_faults),
                Access::Write => MemStats::bump(&self.stats.write_faults),
            }
            let Some((region, handler)) = self.handler_of(addr) else {
                return Err(VmError::Unreserved(addr));
            };
            let Some(handler) = handler else {
                MemStats::bump(&self.stats.denied_faults);
                return Err(VmError::ProtectionViolation { addr, access });
            };
            match handler.handle(
                self,
                Fault {
                    addr,
                    access,
                    region,
                },
            ) {
                FaultOutcome::Resume => continue,
                FaultOutcome::Deny => {
                    MemStats::bump(&self.stats.denied_faults);
                    return Err(VmError::ProtectionViolation { addr, access });
                }
            }
        }
        Err(VmError::FaultNotResolved(addr))
    }

    /// Reads `buf.len()` bytes starting at `addr`, faulting pages in as
    /// needed. The read may span pages and regions.
    pub fn read(&self, addr: VAddr, buf: &mut [u8]) -> VmResult<()> {
        let mut cursor = addr;
        let mut done = 0usize;
        while done < buf.len() {
            let in_page = (self.page_size - cursor.page_offset(self.page_size)) as usize;
            let chunk = in_page.min(buf.len() - done);
            let offset = cursor.page_offset(self.page_size) as usize;
            self.access_page(cursor, Access::Read, |store, frame| {
                store.read(frame, offset, &mut buf[done..done + chunk]);
            })?;
            done += chunk;
            cursor = cursor.add(chunk as u64);
        }
        MemStats::add(&self.stats.bytes_read, buf.len() as u64);
        Ok(())
    }

    /// Writes `data` starting at `addr`, faulting/unprotecting via the
    /// region handler as needed (this is how BeSS detects updates, §2.3).
    pub fn write(&self, addr: VAddr, data: &[u8]) -> VmResult<()> {
        let mut cursor = addr;
        let mut done = 0usize;
        while done < data.len() {
            let in_page = (self.page_size - cursor.page_offset(self.page_size)) as usize;
            let chunk = in_page.min(data.len() - done);
            let offset = cursor.page_offset(self.page_size) as usize;
            self.access_page(cursor, Access::Write, |store, frame| {
                store.write(frame, offset, &data[done..done + chunk]);
            })?;
            done += chunk;
            cursor = cursor.add(chunk as u64);
        }
        MemStats::add(&self.stats.bytes_written, data.len() as u64);
        Ok(())
    }

    /// Reads bytes ignoring protection (but still requiring a mapping).
    ///
    /// This is the path for *trusted* BeSS-internal code that has already
    /// arranged access — e.g. the fault handler itself inspecting a segment
    /// it just mapped. It never faults.
    pub fn read_unchecked(&self, addr: VAddr, buf: &mut [u8]) -> VmResult<()> {
        self.raw_copy(addr, buf.len(), |store, frame, offset, lo, hi, buf: &mut [u8]| {
            store.read(frame, offset, &mut buf[lo..hi]);
        }, buf)
    }

    /// Writes bytes ignoring protection (but still requiring a mapping).
    /// See [`Self::read_unchecked`].
    pub fn write_unchecked(&self, addr: VAddr, data: &[u8]) -> VmResult<()> {
        let mut cursor = addr;
        let mut done = 0usize;
        while done < data.len() {
            let in_page = (self.page_size - cursor.page_offset(self.page_size)) as usize;
            let chunk = in_page.min(data.len() - done);
            let offset = cursor.page_offset(self.page_size) as usize;
            let page = cursor.page(self.page_size);
            {
                let pages = self.pages.read();
                let entry = pages.get(&page).ok_or(VmError::Unreserved(cursor))?;
                let (store, frame) = entry
                    .mapping
                    .as_ref()
                    .ok_or(VmError::Unreserved(cursor))?;
                store.write(*frame, offset, &data[done..done + chunk]);
            }
            done += chunk;
            cursor = cursor.add(chunk as u64);
        }
        Ok(())
    }

    fn raw_copy(
        &self,
        addr: VAddr,
        len: usize,
        op: impl Fn(&dyn PageStore, FrameId, usize, usize, usize, &mut [u8]),
        buf: &mut [u8],
    ) -> VmResult<()> {
        let mut cursor = addr;
        let mut done = 0usize;
        while done < len {
            let in_page = (self.page_size - cursor.page_offset(self.page_size)) as usize;
            let chunk = in_page.min(len - done);
            let offset = cursor.page_offset(self.page_size) as usize;
            let page = cursor.page(self.page_size);
            {
                let pages = self.pages.read();
                let entry = pages.get(&page).ok_or(VmError::Unreserved(cursor))?;
                let (store, frame) = entry
                    .mapping
                    .as_ref()
                    .ok_or(VmError::Unreserved(cursor))?;
                op(store.as_ref(), *frame, offset, done, done + chunk, buf);
            }
            done += chunk;
            cursor = cursor.add(chunk as u64);
        }
        Ok(())
    }

    // ---- typed helpers -------------------------------------------------

    /// Reads a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: VAddr) -> VmResult<u64> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    pub fn write_u64(&self, addr: VAddr, value: u64) -> VmResult<()> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: VAddr) -> VmResult<u32> {
        let mut buf = [0u8; 4];
        self.read(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&self, addr: VAddr, value: u32) -> VmResult<()> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads `len` bytes at `addr` into a fresh vector.
    pub fn read_vec(&self, addr: VAddr, len: usize) -> VmResult<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read(addr, &mut buf)?;
        Ok(buf)
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AddressSpace")
            .field("page_size", &self.page_size)
            .field("regions", &self.regions.read().len())
            .field("pages", &self.pages.read().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handler::handler_fn;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn anon_alloc_read_write() {
        let space = AddressSpace::new();
        let range = space.alloc_anon(10_000, Protect::ReadWrite);
        assert_eq!(range.len(), 12_288, "rounded to pages");
        let addr = range.start().add(5000);
        space.write(addr, b"persistent objects").unwrap();
        let back = space.read_vec(addr, 18).unwrap();
        assert_eq!(&back, b"persistent objects");
    }

    #[test]
    fn reads_span_pages() {
        let space = AddressSpace::with_page_size(256);
        let range = space.alloc_anon(1024, Protect::ReadWrite);
        // Write across the first page boundary.
        let addr = range.start().add(250);
        let data: Vec<u8> = (0..100).collect();
        space.write(addr, &data).unwrap();
        assert_eq!(space.read_vec(addr, 100).unwrap(), data);
    }

    #[test]
    fn unreserved_access_fails() {
        let space = AddressSpace::new();
        let err = space.read_u64(VAddr::from_raw(0x100)).unwrap_err();
        assert!(matches!(err, VmError::Unreserved(_)));
    }

    #[test]
    fn reserved_without_handler_denies() {
        let space = AddressSpace::new();
        let range = space.reserve(4096, None);
        let err = space.read_u64(range.start()).unwrap_err();
        assert!(matches!(err, VmError::ProtectionViolation { .. }));
        assert_eq!(space.stats().denied_faults.get(), 1);
    }

    #[test]
    fn write_protection_faults_and_handler_grants() {
        let space = AddressSpace::new();
        let writes_seen = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&writes_seen);
        let handler = handler_fn(move |space: &AddressSpace, fault: Fault| {
            assert_eq!(fault.access, Access::Write);
            seen.fetch_add(1, Ordering::Relaxed);
            let page = fault.addr.page_base(space.page_size());
            space
                .protect(VRange::new(page, space.page_size()), Protect::ReadWrite)
                .unwrap();
            FaultOutcome::Resume
        });
        let range = space.reserve(8192, Some(handler));
        space.map_anon(range, Protect::Read).unwrap();

        // Reads do not fault.
        assert_eq!(space.read_u64(range.start()).unwrap(), 0);
        assert_eq!(space.stats().write_faults.get(), 0);

        // First write faults once; later writes to the same page do not.
        space.write_u64(range.start(), 42).unwrap();
        space.write_u64(range.start().add(8), 43).unwrap();
        assert_eq!(writes_seen.load(Ordering::Relaxed), 1);
        assert_eq!(space.stats().write_faults.get(), 1);

        // A write to the second page faults again.
        space.write_u64(range.start().add(4096), 44).unwrap();
        assert_eq!(writes_seen.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn handler_deny_is_violation() {
        let space = AddressSpace::new();
        let handler = handler_fn(|_, _| FaultOutcome::Deny);
        let range = space.reserve(4096, Some(handler));
        space.map_anon(range, Protect::Read).unwrap();
        let err = space.write_u64(range.start(), 1).unwrap_err();
        assert!(matches!(err, VmError::ProtectionViolation { .. }));
        // Reads still fine.
        assert_eq!(space.read_u64(range.start()).unwrap(), 0);
    }

    #[test]
    fn unresolved_fault_bounded() {
        let space = AddressSpace::new();
        // Handler that claims to resolve but never does.
        let handler = handler_fn(|_, _| FaultOutcome::Resume);
        let range = space.reserve(4096, Some(handler));
        let err = space.read_u64(range.start()).unwrap_err();
        assert!(matches!(err, VmError::FaultNotResolved(_)));
    }

    #[test]
    fn lazy_reservation_allocates_no_frames() {
        let space = AddressSpace::new();
        let (rb0, mc0) = (space.stats().reserved_bytes.get(), space.stats().map_calls.get());
        space.reserve(1 << 20, None);
        assert_eq!(space.stats().reserved_bytes.get() - rb0, 1 << 20);
        assert_eq!(space.stats().map_calls.get(), mc0, "no frames mapped");
    }

    #[test]
    fn frame_states_follow_lifecycle() {
        let space = AddressSpace::new();
        let range = space.reserve(4096, None);
        let addr = range.start();
        assert_eq!(space.frame_state(addr), FrameState::Invalid);
        space.map_anon(range, Protect::None).unwrap();
        assert_eq!(space.frame_state(addr), FrameState::Protected);
        space.protect(range, Protect::Read).unwrap();
        assert_eq!(space.frame_state(addr), FrameState::Accessible);
        space.protect(range, Protect::None).unwrap();
        assert_eq!(space.frame_state(addr), FrameState::Protected);
        space.unmap_page(addr).unwrap();
        assert_eq!(space.frame_state(addr), FrameState::Invalid);
    }

    #[test]
    fn shared_frames_are_visible_across_spaces() {
        // Two "processes" map the same frame at different addresses —
        // the essence of Figure 4.
        let store = Arc::new(HeapStore::new(4096));
        let frame = store.alloc();
        let dyn_store: Arc<dyn PageStore> = store;

        let p1 = AddressSpace::new();
        let p2 = AddressSpace::new();
        let r1 = p1.reserve(4096, None);
        let _pad = p2.reserve(8192, None); // shift p2's layout
        let r2 = p2.reserve(4096, None);
        assert_ne!(r1.start(), r2.start(), "different virtual addresses");
        p1.map_page(r1.start(), Arc::clone(&dyn_store), frame, Protect::ReadWrite)
            .unwrap();
        p2.map_page(r2.start(), Arc::clone(&dyn_store), frame, Protect::ReadWrite)
            .unwrap();

        p1.write_u64(r1.start().add(16), 0xBE55).unwrap();
        assert_eq!(p2.read_u64(r2.start().add(16)).unwrap(), 0xBE55);
    }

    #[test]
    fn unreserve_invalidates_pages() {
        let space = AddressSpace::new();
        let range = space.alloc_anon(4096, Protect::ReadWrite);
        space.write_u64(range.start(), 7).unwrap();
        space.unreserve(range).unwrap();
        assert!(matches!(
            space.read_u64(range.start()),
            Err(VmError::Unreserved(_))
        ));
    }

    #[test]
    fn unchecked_access_ignores_protection() {
        let space = AddressSpace::new();
        let range = space.alloc_anon(4096, Protect::None);
        // Normal access faults...
        assert!(space.read_u64(range.start()).is_err());
        // ...but trusted access works.
        space.write_unchecked(range.start(), &7u64.to_le_bytes()).unwrap();
        let mut buf = [0u8; 8];
        space.read_unchecked(range.start(), &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
    }

    #[test]
    fn cascading_handlers_model_fault_waves() {
        // Region B's handler maps B; region A's handler maps A and reserves
        // nothing else. Accessing A then B mimics the wave structure where
        // resolving one fault leads to another on a later access.
        let space = Arc::new(AddressSpace::new());
        let mapper = handler_fn(move |space: &AddressSpace, fault: Fault| {
            space.map_anon(fault.region, Protect::ReadWrite).unwrap();
            FaultOutcome::Resume
        });
        let a = space.reserve(4096, Some(Arc::clone(&mapper)));
        let b = space.reserve(4096, Some(mapper));

        assert_eq!(space.stats().faults(), 0);
        space.read_u64(a.start()).unwrap();
        assert_eq!(space.stats().faults(), 1);
        space.read_u64(b.start()).unwrap();
        assert_eq!(space.stats().faults(), 2);
        // Warm accesses are fault-free.
        space.read_u64(a.start()).unwrap();
        space.read_u64(b.start()).unwrap();
        assert_eq!(space.stats().faults(), 2);
    }

    #[test]
    fn protect_counts_one_syscall_per_call() {
        let space = AddressSpace::new();
        let range = space.alloc_anon(16 * 4096, Protect::Read);
        let before = space.stats().protect_calls.get();
        space.protect(range, Protect::ReadWrite).unwrap();
        assert_eq!(space.stats().protect_calls.get(), before + 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    

    /// Operations against a reserved-region model.
    #[derive(Debug, Clone)]
    enum Op {
        Reserve { pages: u8 },
        MapAnon { region: u8, prot: u8 },
        Protect { region: u8, prot: u8 },
        Write { region: u8, offset: u16, len: u8 },
        Read { region: u8, offset: u16, len: u8 },
        Unreserve { region: u8 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (1u8..4).prop_map(|pages| Op::Reserve { pages }),
            (any::<u8>(), 0u8..3).prop_map(|(region, prot)| Op::MapAnon { region, prot }),
            (any::<u8>(), 0u8..3).prop_map(|(region, prot)| Op::Protect { region, prot }),
            (any::<u8>(), any::<u16>(), 1u8..64)
                .prop_map(|(region, offset, len)| Op::Write { region, offset, len }),
            (any::<u8>(), any::<u16>(), 1u8..64)
                .prop_map(|(region, offset, len)| Op::Read { region, offset, len }),
            any::<u8>().prop_map(|region| Op::Unreserve { region }),
        ]
    }

    fn prot_of(code: u8) -> Protect {
        match code {
            0 => Protect::None,
            1 => Protect::Read,
            _ => Protect::ReadWrite,
        }
    }

    #[derive(Clone)]
    struct RegionModel {
        range: VRange,
        mapped: bool,
        prot: Protect,
        bytes: Vec<u8>,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        /// The address space agrees with a simple model on every outcome:
        /// reads/writes succeed iff the page protection admits them (no
        /// handlers registered), and successful reads return exactly the
        /// bytes written.
        #[test]
        fn space_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
            const PS: u64 = 256;
            let space = AddressSpace::with_page_size(PS);
            let mut regions: Vec<RegionModel> = Vec::new();
            let mut seq: u8 = 0;

            for op in ops {
                match op {
                    Op::Reserve { pages } => {
                        let len = u64::from(pages) * PS;
                        let range = space.reserve(len, None);
                        regions.push(RegionModel {
                            range,
                            mapped: false,
                            prot: Protect::None,
                            bytes: vec![0; len as usize],
                        });
                    }
                    Op::MapAnon { region, prot } => {
                        if regions.is_empty() { continue; }
                        let idx = region as usize % regions.len();
                        let m = &mut regions[idx];
                        if m.range.is_empty() { continue; }
                        let prot = prot_of(prot);
                        let r = space.map_anon(m.range, prot);
                        if m.mapped {
                            // Remapping resets content to zero (fresh anon
                            // frames) — mirror that.
                            m.bytes.iter_mut().for_each(|b| *b = 0);
                        }
                        prop_assert!(r.is_ok());
                        m.mapped = true;
                        m.prot = prot;
                        m.bytes.iter_mut().for_each(|b| *b = 0);
                    }
                    Op::Protect { region, prot } => {
                        if regions.is_empty() { continue; }
                        let idx = region as usize % regions.len();
                        let m = &mut regions[idx];
                        let prot = prot_of(prot);
                        prop_assert!(space.protect(m.range, prot).is_ok());
                        if m.mapped {
                            m.prot = prot;
                        }
                    }
                    Op::Write { region, offset, len } => {
                        if regions.is_empty() { continue; }
                        let idx = region as usize % regions.len();
                        let m = &mut regions[idx];
                        let max = m.range.len();
                        let offset = u64::from(offset) % max;
                        let len = (u64::from(len)).min(max - offset) as usize;
                        seq = seq.wrapping_add(1);
                        let data = vec![seq; len];
                        let r = space.write(m.range.start().add(offset), &data);
                        let should = m.mapped && m.prot == Protect::ReadWrite;
                        prop_assert_eq!(r.is_ok(), should, "write admitted iff RW");
                        if should {
                            m.bytes[offset as usize..offset as usize + len]
                                .copy_from_slice(&data);
                        }
                    }
                    Op::Read { region, offset, len } => {
                        if regions.is_empty() { continue; }
                        let idx = region as usize % regions.len();
                        let m = &regions[idx];
                        let max = m.range.len();
                        let offset = u64::from(offset) % max;
                        let len = (u64::from(len)).min(max - offset) as usize;
                        let mut buf = vec![0u8; len];
                        let r = space.read(m.range.start().add(offset), &mut buf);
                        let should = m.mapped && m.prot != Protect::None;
                        prop_assert_eq!(r.is_ok(), should, "read admitted iff >= R");
                        if should {
                            prop_assert_eq!(
                                &buf[..],
                                &m.bytes[offset as usize..offset as usize + len]
                            );
                        }
                    }
                    Op::Unreserve { region } => {
                        if regions.is_empty() { continue; }
                        let idx = region as usize % regions.len();
                        let m = regions.remove(idx);
                        prop_assert!(space.unreserve(m.range).is_ok());
                        // Any later access must fail.
                        let mut b = [0u8; 1];
                        prop_assert!(space.read(m.range.start(), &mut b).is_err());
                    }
                }
            }
        }
    }
}
