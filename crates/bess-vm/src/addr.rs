//! Virtual addresses and address ranges.
//!
//! BeSS object references are virtual-memory addresses (§2.1 of the paper).
//! In this reproduction an address is a location in a *simulated* 64-bit
//! address space managed by [`crate::AddressSpace`]; it is never a real
//! machine pointer, which keeps the fault-driven reference mechanism
//! deterministic and memory-safe.

use std::fmt;
use std::num::NonZeroU64;

/// A virtual address in a simulated address space.
///
/// Address `0` is reserved as the null address (like `NULL` in the original
/// C++ implementation), so `Option<VAddr>` is pointer-sized.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VAddr(NonZeroU64);

impl VAddr {
    /// Creates an address from a raw value. Returns `None` for 0.
    pub fn new(raw: u64) -> Option<Self> {
        NonZeroU64::new(raw).map(VAddr)
    }

    /// Creates an address from a raw value, panicking on 0.
    ///
    /// # Panics
    /// Panics if `raw` is zero.
    pub fn from_raw(raw: u64) -> Self {
        VAddr(NonZeroU64::new(raw).expect("VAddr must be non-zero"))
    }

    /// The raw numeric value of the address.
    pub fn raw(self) -> u64 {
        self.0.get()
    }

    /// Returns the address advanced by `offset` bytes.
    ///
    /// # Panics
    /// Panics on overflow of the 64-bit address space.
    #[allow(clippy::should_implement_trait)] // pointer arithmetic, not ops::Add
    pub fn add(self, offset: u64) -> Self {
        VAddr::from_raw(
            self.raw()
                .checked_add(offset)
                .expect("virtual address overflow"),
        )
    }

    /// Byte distance from `base` to `self`.
    ///
    /// # Panics
    /// Panics if `self < base`.
    pub fn offset_from(self, base: VAddr) -> u64 {
        self.raw()
            .checked_sub(base.raw())
            .expect("VAddr::offset_from: address below base")
    }

    /// The page number containing this address for the given page size.
    pub fn page(self, page_size: u64) -> u64 {
        self.raw() / page_size
    }

    /// The address rounded down to its page boundary.
    pub fn page_base(self, page_size: u64) -> VAddr {
        VAddr::from_raw(self.raw() - self.raw() % page_size)
    }

    /// Offset of this address within its page.
    pub fn page_offset(self, page_size: u64) -> u64 {
        self.raw() % page_size
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#x})", self.raw())
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.raw())
    }
}

/// A half-open range `[start, start + len)` of virtual addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct VRange {
    start: VAddr,
    len: u64,
}

impl VRange {
    /// Creates a range starting at `start` spanning `len` bytes.
    ///
    /// # Panics
    /// Panics if the range would overflow the address space.
    pub fn new(start: VAddr, len: u64) -> Self {
        // Validate that the end is representable.
        let _ = start.raw().checked_add(len).expect("VRange overflow");
        VRange { start, len }
    }

    /// First address of the range.
    pub fn start(self) -> VAddr {
        self.start
    }

    /// Length of the range in bytes.
    pub fn len(self) -> u64 {
        self.len
    }

    /// Whether the range is empty.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// One past the last raw address of the range.
    pub fn end_raw(self) -> u64 {
        self.start.raw() + self.len
    }

    /// Whether `addr` falls inside the range.
    pub fn contains(self, addr: VAddr) -> bool {
        addr.raw() >= self.start.raw() && addr.raw() < self.end_raw()
    }

    /// Whether `self` fully contains `other`.
    pub fn contains_range(self, other: VRange) -> bool {
        other.start.raw() >= self.start.raw() && other.end_raw() <= self.end_raw()
    }

    /// Whether the two ranges share any address.
    pub fn overlaps(self, other: VRange) -> bool {
        self.start.raw() < other.end_raw() && other.start.raw() < self.end_raw()
    }

    /// Iterates over the page numbers covered by this range.
    pub fn pages(self, page_size: u64) -> impl Iterator<Item = u64> {
        let first = self.start.raw() / page_size;
        let last = if self.len == 0 {
            first
        } else {
            (self.end_raw() - 1) / page_size + 1
        };
        first..last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_rejected() {
        assert!(VAddr::new(0).is_none());
        assert_eq!(VAddr::new(1).unwrap().raw(), 1);
    }

    #[test]
    fn option_vaddr_is_pointer_sized() {
        assert_eq!(
            std::mem::size_of::<Option<VAddr>>(),
            std::mem::size_of::<u64>()
        );
    }

    #[test]
    fn add_and_offset_round_trip() {
        let a = VAddr::from_raw(0x1000);
        let b = a.add(0x234);
        assert_eq!(b.raw(), 0x1234);
        assert_eq!(b.offset_from(a), 0x234);
    }

    #[test]
    #[should_panic]
    fn offset_from_below_base_panics() {
        let a = VAddr::from_raw(0x1000);
        let b = VAddr::from_raw(0x800);
        let _ = b.offset_from(a);
    }

    #[test]
    fn page_math() {
        let a = VAddr::from_raw(0x2345);
        assert_eq!(a.page(0x1000), 2);
        assert_eq!(a.page_base(0x1000).raw(), 0x2000);
        assert_eq!(a.page_offset(0x1000), 0x345);
    }

    #[test]
    fn range_contains_and_overlap() {
        let r = VRange::new(VAddr::from_raw(0x1000), 0x1000);
        assert!(r.contains(VAddr::from_raw(0x1000)));
        assert!(r.contains(VAddr::from_raw(0x1fff)));
        assert!(!r.contains(VAddr::from_raw(0x2000)));

        let r2 = VRange::new(VAddr::from_raw(0x1800), 0x1000);
        let r3 = VRange::new(VAddr::from_raw(0x2000), 0x1000);
        assert!(r.overlaps(r2));
        assert!(!r.overlaps(r3));
        assert!(r.contains_range(VRange::new(VAddr::from_raw(0x1100), 0x100)));
        assert!(!r.contains_range(r2));
    }

    #[test]
    fn range_pages() {
        let r = VRange::new(VAddr::from_raw(0x1800), 0x1000);
        let pages: Vec<u64> = r.pages(0x1000).collect();
        assert_eq!(pages, vec![1, 2]);

        let empty = VRange::new(VAddr::from_raw(0x1000), 0);
        assert_eq!(empty.pages(0x1000).count(), 0);

        let exact = VRange::new(VAddr::from_raw(0x1000), 0x1000);
        assert_eq!(exact.pages(0x1000).collect::<Vec<_>>(), vec![1]);
    }
}
