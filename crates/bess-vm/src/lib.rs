//! # bess-vm — software-MMU substrate for the BeSS storage manager
//!
//! BeSS ("A High Performance Configurable Storage Manager", Biliris &
//! Panagos, ICDE 1995) builds its fast object-reference mechanism, its
//! corruption prevention, and its automatic update detection directly on
//! UNIX virtual-memory facilities: address-range reservation, `mprotect`,
//! and SIGSEGV/SIGBUS trapping. This crate reproduces those facilities as a
//! deterministic **software MMU**:
//!
//! * [`AddressSpace`] — a simulated 64-bit per-process address space with
//!   page-granular reservation, mapping, and protection;
//! * [`PageStore`] / [`HeapStore`] — frame stores that pages map onto;
//!   mapping the *same* frame into several spaces reproduces the shared
//!   client cache of the paper's Figures 3–4;
//! * [`FaultHandler`] — the analogue of the BeSS interrupt handler: invoked
//!   on protection violations, it fetches/maps/swizzles and resumes the
//!   access;
//! * [`MemStats`] — counters for reserved bytes, protection "system calls",
//!   and faults, the paper's cost metrics.
//!
//! Why simulate rather than `mmap`+`SIGSEGV` for real? Dereferencing raw
//! mapped pointers and recovering from signals is UB-adjacent in Rust, is
//! non-deterministic under test, and adds nothing to the *algorithms* under
//! study: which faults occur, in what order, what gets reserved, fetched,
//! swizzled, protected. The software MMU performs exactly those state
//! transitions and makes them observable and testable.
//!
//! ```
//! use bess_vm::{AddressSpace, Protect, FaultOutcome, handler_fn};
//!
//! let space = AddressSpace::new();
//! // Reserve an access-protected range whose faults map pages on demand.
//! let handler = handler_fn(|space: &AddressSpace, fault| {
//!     space.map_anon(fault.region, Protect::ReadWrite).unwrap();
//!     FaultOutcome::Resume
//! });
//! let range = space.reserve(8192, Some(handler));
//! space.write_u64(range.start(), 7).unwrap(); // faults once, then resumes
//! assert_eq!(space.read_u64(range.start()).unwrap(), 7);
//! assert_eq!(space.stats().write_faults.get(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addr;
mod handler;
mod prot;
mod space;
mod stats;
mod store;

pub use addr::{VAddr, VRange};
pub use handler::{handler_fn, Fault, FaultHandler, FaultOutcome, FnHandler};
pub use prot::{Access, FrameState, Protect};
pub use space::{AddressSpace, VmError, VmResult, DEFAULT_PAGE_SIZE};
pub use stats::MemStats;
pub use store::{FrameId, HeapStore, PageStore};
