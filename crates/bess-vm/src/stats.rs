//! Counters for virtual-memory activity.
//!
//! The paper argues two quantitative points about its memory architecture:
//! that address space is reserved *lazily* (§2.1, versus the greedy schemes
//! of ObjectStore/Texas/QuickStore) and that the cost of protection-based
//! corruption prevention is "an increased number of system calls" (§2.2).
//! These counters make both observable: every reservation, protection
//! change ("system call"), mapping, and fault is counted.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters maintained by an [`crate::AddressSpace`].
#[derive(Debug, Default)]
pub struct MemStats {
    /// Calls to `reserve`.
    pub reserve_calls: AtomicU64,
    /// Total bytes ever reserved.
    pub reserved_bytes: AtomicU64,
    /// Calls to `unreserve`.
    pub unreserve_calls: AtomicU64,
    /// Protection changes — each models one `mprotect(2)` system call.
    pub protect_calls: AtomicU64,
    /// Pages mapped onto store frames.
    pub map_calls: AtomicU64,
    /// Pages unmapped.
    pub unmap_calls: AtomicU64,
    /// Faults taken on loads.
    pub read_faults: AtomicU64,
    /// Faults taken on stores.
    pub write_faults: AtomicU64,
    /// Faults that no handler resolved (the SIGSEGV that would have killed
    /// the process — or, for BeSS, caught a stray pointer; §2.2).
    pub denied_faults: AtomicU64,
    /// Bytes copied out of mapped frames.
    pub bytes_read: AtomicU64,
    /// Bytes copied into mapped frames.
    pub bytes_written: AtomicU64,
}

impl MemStats {
    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reserve_calls: self.reserve_calls.load(Ordering::Relaxed),
            reserved_bytes: self.reserved_bytes.load(Ordering::Relaxed),
            unreserve_calls: self.unreserve_calls.load(Ordering::Relaxed),
            protect_calls: self.protect_calls.load(Ordering::Relaxed),
            map_calls: self.map_calls.load(Ordering::Relaxed),
            unmap_calls: self.unmap_calls.load(Ordering::Relaxed),
            read_faults: self.read_faults.load(Ordering::Relaxed),
            write_faults: self.write_faults.load(Ordering::Relaxed),
            denied_faults: self.denied_faults.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`MemStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Calls to `reserve`.
    pub reserve_calls: u64,
    /// Total bytes ever reserved.
    pub reserved_bytes: u64,
    /// Calls to `unreserve`.
    pub unreserve_calls: u64,
    /// Protection changes (modelled `mprotect` system calls).
    pub protect_calls: u64,
    /// Pages mapped onto store frames.
    pub map_calls: u64,
    /// Pages unmapped.
    pub unmap_calls: u64,
    /// Faults taken on loads.
    pub read_faults: u64,
    /// Faults taken on stores.
    pub write_faults: u64,
    /// Faults no handler resolved.
    pub denied_faults: u64,
    /// Bytes copied out of mapped frames.
    pub bytes_read: u64,
    /// Bytes copied into mapped frames.
    pub bytes_written: u64,
}

impl StatsSnapshot {
    /// Total faults of both kinds.
    pub fn faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }

    /// Element-wise difference `self - earlier`, for measuring an interval.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reserve_calls: self.reserve_calls - earlier.reserve_calls,
            reserved_bytes: self.reserved_bytes - earlier.reserved_bytes,
            unreserve_calls: self.unreserve_calls - earlier.unreserve_calls,
            protect_calls: self.protect_calls - earlier.protect_calls,
            map_calls: self.map_calls - earlier.map_calls,
            unmap_calls: self.unmap_calls - earlier.unmap_calls,
            read_faults: self.read_faults - earlier.read_faults,
            write_faults: self.write_faults - earlier.write_faults,
            denied_faults: self.denied_faults - earlier.denied_faults,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let stats = MemStats::default();
        MemStats::bump(&stats.read_faults);
        MemStats::add(&stats.reserved_bytes, 4096);
        let a = stats.snapshot();
        MemStats::bump(&stats.read_faults);
        MemStats::bump(&stats.write_faults);
        let b = stats.snapshot();
        let d = b.since(&a);
        assert_eq!(d.read_faults, 1);
        assert_eq!(d.write_faults, 1);
        assert_eq!(d.faults(), 2);
        assert_eq!(d.reserved_bytes, 0);
        assert_eq!(b.reserved_bytes, 4096);
    }
}
