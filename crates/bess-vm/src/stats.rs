//! Counters for virtual-memory activity.
//!
//! The paper argues two quantitative points about its memory architecture:
//! that address space is reserved *lazily* (§2.1, versus the greedy schemes
//! of ObjectStore/Texas/QuickStore) and that the cost of protection-based
//! corruption prevention is "an increased number of system calls" (§2.2).
//! These counters make both observable: every reservation, protection
//! change ("system call"), mapping, and fault is counted.

use bess_obs::{Counter, Group};

/// Counters maintained by an [`crate::AddressSpace`] — [`bess_obs`]
/// handles registered under the `vm.` prefix of
/// [`crate::AddressSpace::metrics`].
#[derive(Debug)]
pub struct MemStats {
    /// Calls to `reserve` (`vm.reserve_calls`).
    pub reserve_calls: Counter,
    /// Total bytes ever reserved (`vm.reserved_bytes`).
    pub reserved_bytes: Counter,
    /// Calls to `unreserve` (`vm.unreserve_calls`).
    pub unreserve_calls: Counter,
    /// Protection changes — each models one `mprotect(2)` system call
    /// (`vm.protect_calls`).
    pub protect_calls: Counter,
    /// Pages mapped onto store frames (`vm.map_calls`).
    pub map_calls: Counter,
    /// Pages unmapped (`vm.unmap_calls`).
    pub unmap_calls: Counter,
    /// Faults taken on loads (`vm.read_faults`).
    pub read_faults: Counter,
    /// Faults taken on stores (`vm.write_faults`).
    pub write_faults: Counter,
    /// Faults that no handler resolved (the SIGSEGV that would have killed
    /// the process — or, for BeSS, caught a stray pointer; §2.2) —
    /// `vm.denied_faults`.
    pub denied_faults: Counter,
    /// Bytes copied out of mapped frames (`vm.read_bytes`).
    pub bytes_read: Counter,
    /// Bytes copied into mapped frames (`vm.write_bytes`).
    pub bytes_written: Counter,
}

impl MemStats {
    pub(crate) fn new(group: &Group) -> MemStats {
        MemStats {
            reserve_calls: group.counter("reserve_calls"),
            reserved_bytes: group.counter("reserved_bytes"),
            unreserve_calls: group.counter("unreserve_calls"),
            protect_calls: group.counter("protect_calls"),
            map_calls: group.counter("map_calls"),
            unmap_calls: group.counter("unmap_calls"),
            read_faults: group.counter("read_faults"),
            write_faults: group.counter("write_faults"),
            denied_faults: group.counter("denied_faults"),
            bytes_read: group.counter("read_bytes"),
            bytes_written: group.counter("write_bytes"),
        }
    }


    /// Total faults taken, read and write combined.
    pub fn faults(&self) -> u64 {
        self.read_faults.get() + self.write_faults.get()
    }

    pub(crate) fn bump(counter: &Counter) {
        counter.inc();
    }

    pub(crate) fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_faults() {
        let stats = MemStats::new(&bess_obs::Registry::new().group("vm"));
        MemStats::bump(&stats.read_faults);
        MemStats::add(&stats.reserved_bytes, 4096);
        let (rf0, wf0) = (stats.read_faults.get(), stats.write_faults.get());
        MemStats::bump(&stats.read_faults);
        MemStats::bump(&stats.write_faults);
        assert_eq!(stats.read_faults.get() - rf0, 1);
        assert_eq!(stats.write_faults.get() - wf0, 1);
        assert_eq!(stats.faults(), 3);
        assert_eq!(stats.reserved_bytes.get(), 4096);
    }
}
