//! Counters for virtual-memory activity.
//!
//! The paper argues two quantitative points about its memory architecture:
//! that address space is reserved *lazily* (§2.1, versus the greedy schemes
//! of ObjectStore/Texas/QuickStore) and that the cost of protection-based
//! corruption prevention is "an increased number of system calls" (§2.2).
//! These counters make both observable: every reservation, protection
//! change ("system call"), mapping, and fault is counted.

use bess_obs::{Counter, Group};

/// Counters maintained by an [`crate::AddressSpace`] — [`bess_obs`]
/// handles registered under the `vm.` prefix of
/// [`crate::AddressSpace::metrics`].
#[derive(Debug)]
pub struct MemStats {
    /// Calls to `reserve` (`vm.reserve_calls`).
    pub reserve_calls: Counter,
    /// Total bytes ever reserved (`vm.reserved_bytes`).
    pub reserved_bytes: Counter,
    /// Calls to `unreserve` (`vm.unreserve_calls`).
    pub unreserve_calls: Counter,
    /// Protection changes — each models one `mprotect(2)` system call
    /// (`vm.protect_calls`).
    pub protect_calls: Counter,
    /// Pages mapped onto store frames (`vm.map_calls`).
    pub map_calls: Counter,
    /// Pages unmapped (`vm.unmap_calls`).
    pub unmap_calls: Counter,
    /// Faults taken on loads (`vm.read_faults`).
    pub read_faults: Counter,
    /// Faults taken on stores (`vm.write_faults`).
    pub write_faults: Counter,
    /// Faults that no handler resolved (the SIGSEGV that would have killed
    /// the process — or, for BeSS, caught a stray pointer; §2.2) —
    /// `vm.denied_faults`.
    pub denied_faults: Counter,
    /// Bytes copied out of mapped frames (`vm.read_bytes`).
    pub bytes_read: Counter,
    /// Bytes copied into mapped frames (`vm.write_bytes`).
    pub bytes_written: Counter,
}

impl MemStats {
    pub(crate) fn new(group: &Group) -> MemStats {
        MemStats {
            reserve_calls: group.counter("reserve_calls"),
            reserved_bytes: group.counter("reserved_bytes"),
            unreserve_calls: group.counter("unreserve_calls"),
            protect_calls: group.counter("protect_calls"),
            map_calls: group.counter("map_calls"),
            unmap_calls: group.counter("unmap_calls"),
            read_faults: group.counter("read_faults"),
            write_faults: group.counter("write_faults"),
            denied_faults: group.counter("denied_faults"),
            bytes_read: group.counter("read_bytes"),
            bytes_written: group.counter("write_bytes"),
        }
    }

    /// Takes a consistent-enough snapshot for reporting.
    ///
    /// Deprecated shim: prefer [`crate::AddressSpace::metrics`] and
    /// [`bess_obs::Registry::snapshot`]; this stays one PR so downstream
    /// callers migrate incrementally.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reserve_calls: self.reserve_calls.get(),
            reserved_bytes: self.reserved_bytes.get(),
            unreserve_calls: self.unreserve_calls.get(),
            protect_calls: self.protect_calls.get(),
            map_calls: self.map_calls.get(),
            unmap_calls: self.unmap_calls.get(),
            read_faults: self.read_faults.get(),
            write_faults: self.write_faults.get(),
            denied_faults: self.denied_faults.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
        }
    }

    pub(crate) fn bump(counter: &Counter) {
        counter.inc();
    }

    pub(crate) fn add(counter: &Counter, n: u64) {
        counter.add(n);
    }
}

/// A point-in-time copy of [`MemStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Calls to `reserve`.
    pub reserve_calls: u64,
    /// Total bytes ever reserved.
    pub reserved_bytes: u64,
    /// Calls to `unreserve`.
    pub unreserve_calls: u64,
    /// Protection changes (modelled `mprotect` system calls).
    pub protect_calls: u64,
    /// Pages mapped onto store frames.
    pub map_calls: u64,
    /// Pages unmapped.
    pub unmap_calls: u64,
    /// Faults taken on loads.
    pub read_faults: u64,
    /// Faults taken on stores.
    pub write_faults: u64,
    /// Faults no handler resolved.
    pub denied_faults: u64,
    /// Bytes copied out of mapped frames.
    pub bytes_read: u64,
    /// Bytes copied into mapped frames.
    pub bytes_written: u64,
}

impl StatsSnapshot {
    /// Total faults of both kinds.
    pub fn faults(&self) -> u64 {
        self.read_faults + self.write_faults
    }

    /// Element-wise difference `self - earlier`, for measuring an interval.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            reserve_calls: self.reserve_calls - earlier.reserve_calls,
            reserved_bytes: self.reserved_bytes - earlier.reserved_bytes,
            unreserve_calls: self.unreserve_calls - earlier.unreserve_calls,
            protect_calls: self.protect_calls - earlier.protect_calls,
            map_calls: self.map_calls - earlier.map_calls,
            unmap_calls: self.unmap_calls - earlier.unmap_calls,
            read_faults: self.read_faults - earlier.read_faults,
            write_faults: self.write_faults - earlier.write_faults,
            denied_faults: self.denied_faults - earlier.denied_faults,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_since() {
        let stats = MemStats::new(&bess_obs::Registry::new().group("vm"));
        MemStats::bump(&stats.read_faults);
        MemStats::add(&stats.reserved_bytes, 4096);
        let a = stats.snapshot();
        MemStats::bump(&stats.read_faults);
        MemStats::bump(&stats.write_faults);
        let b = stats.snapshot();
        let d = b.since(&a);
        assert_eq!(d.read_faults, 1);
        assert_eq!(d.write_faults, 1);
        assert_eq!(d.faults(), 2);
        assert_eq!(d.reserved_bytes, 0);
        assert_eq!(b.reserved_bytes, 4096);
    }
}
