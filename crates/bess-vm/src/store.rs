//! Backing stores for mapped pages.
//!
//! A virtual page in an [`crate::AddressSpace`] is *mapped* onto a frame of
//! some [`PageStore`]. Several virtual pages — possibly in different address
//! spaces (the per-"process" PVMAs of §4.1.2) — may map the same frame, which
//! is exactly how the shared cache of Figure 3/4 is realised: writes through
//! one process's mapping are visible through every other mapping of the same
//! frame.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Identifies a frame within a [`PageStore`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId(pub u64);

/// A page-granular byte store that virtual pages can be mapped onto.
///
/// Implementations must be internally synchronised; BeSS serialises logical
/// access with latches and locks above this layer, but concurrent physical
/// reads and writes of distinct byte ranges must be sound.
pub trait PageStore: Send + Sync {
    /// Size in bytes of every frame in this store.
    fn frame_size(&self) -> usize;

    /// Copies `buf.len()` bytes starting at `offset` within `frame` into `buf`.
    ///
    /// # Panics
    /// Panics if the range exceeds the frame or the frame does not exist.
    fn read(&self, frame: FrameId, offset: usize, buf: &mut [u8]);

    /// Copies `data` into `frame` starting at `offset`.
    ///
    /// # Panics
    /// Panics if the range exceeds the frame or the frame does not exist.
    fn write(&self, frame: FrameId, offset: usize, data: &[u8]);
}

/// A simple growable in-memory [`PageStore`].
///
/// Used for private buffer pools (copy-on-access mode, §4.1.1), for tests,
/// and as scratch memory. Frames are allocated with [`HeapStore::alloc`] and
/// never reused unless [`HeapStore::free`] is called.
pub struct HeapStore {
    frame_size: usize,
    frames: RwLock<Vec<Option<Box<[u8]>>>>,
    free: RwLock<Vec<u64>>,
    // LINT: allow(raw-counter) — frame-store high-water bookkeeping asserted on by tests, not a metric
    allocated: AtomicU64,
}

impl HeapStore {
    /// Creates a store whose frames are `frame_size` bytes.
    pub fn new(frame_size: usize) -> Self {
        assert!(frame_size > 0, "frame size must be positive");
        HeapStore {
            frame_size,
            frames: RwLock::new(Vec::new()),
            free: RwLock::new(Vec::new()),
            allocated: AtomicU64::new(0),
        }
    }

    /// Allocates a zero-filled frame.
    pub fn alloc(&self) -> FrameId {
        self.allocated.fetch_add(1, Ordering::Relaxed);
        let frame = vec![0u8; self.frame_size].into_boxed_slice();
        if let Some(idx) = self.free.write().pop() {
            self.frames.write()[idx as usize] = Some(frame);
            return FrameId(idx);
        }
        let mut frames = self.frames.write();
        frames.push(Some(frame));
        FrameId(frames.len() as u64 - 1)
    }

    /// Releases a frame; its id may be recycled by a later [`Self::alloc`].
    ///
    /// # Panics
    /// Panics if the frame is not currently allocated.
    pub fn free(&self, frame: FrameId) {
        let mut frames = self.frames.write();
        let slot = frames
            .get_mut(frame.0 as usize)
            .expect("HeapStore::free: no such frame");
        assert!(slot.is_some(), "HeapStore::free: frame already free");
        *slot = None;
        self.free.write().push(frame.0);
        self.allocated.fetch_sub(1, Ordering::Relaxed);
    }

    /// Number of live frames.
    pub fn live_frames(&self) -> u64 {
        self.allocated.load(Ordering::Relaxed)
    }
}

impl PageStore for HeapStore {
    fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn read(&self, frame: FrameId, offset: usize, buf: &mut [u8]) {
        let frames = self.frames.read();
        let data = frames
            .get(frame.0 as usize)
            .and_then(|f| f.as_ref())
            .expect("HeapStore::read: no such frame");
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
    }

    fn write(&self, frame: FrameId, offset: usize, data: &[u8]) {
        let mut frames = self.frames.write();
        let dst = frames
            .get_mut(frame.0 as usize)
            .and_then(|f| f.as_mut())
            .expect("HeapStore::write: no such frame");
        dst[offset..offset + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_round_trip() {
        let store = HeapStore::new(64);
        let f = store.alloc();
        store.write(f, 10, b"hello");
        let mut buf = [0u8; 5];
        store.read(f, 10, &mut buf);
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn frames_start_zeroed() {
        let store = HeapStore::new(16);
        let f = store.alloc();
        let mut buf = [0xffu8; 16];
        store.read(f, 0, &mut buf);
        assert_eq!(buf, [0u8; 16]);
    }

    #[test]
    fn free_recycles_ids_with_zeroed_content() {
        let store = HeapStore::new(8);
        let a = store.alloc();
        store.write(a, 0, &[1; 8]);
        store.free(a);
        assert_eq!(store.live_frames(), 0);
        let b = store.alloc();
        assert_eq!(a, b, "freed id should be recycled");
        let mut buf = [0xau8; 8];
        store.read(b, 0, &mut buf);
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    #[should_panic]
    fn double_free_panics() {
        let store = HeapStore::new(8);
        let a = store.alloc();
        store.free(a);
        store.free(a);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let store = HeapStore::new(8);
        let a = store.alloc();
        let mut buf = [0u8; 4];
        store.read(a, 6, &mut buf);
    }
}
