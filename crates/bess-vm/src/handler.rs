//! Fault handlers — the software analogue of the BeSS SIGSEGV/SIGBUS traps.
//!
//! The paper's BeSS "traps the SIGSEGV and SIGBUS signals delivered by the
//! underlying hardware when a virtual memory protection violation is caught"
//! (§2.4) and runs its interrupt handler, which fetches segments, swizzles
//! references, records updates and acquires locks before the offending
//! instruction is resumed (§2.1, §2.3). Here each reserved region carries a
//! [`FaultHandler`]; when an access violates the page protection the handler
//! runs, and the access is retried — the exact resume semantics of a signal
//! handler, without the signals.

use std::sync::Arc;

use crate::addr::{VAddr, VRange};
use crate::prot::Access;

/// Description of a protection violation delivered to a handler.
#[derive(Clone, Copy, Debug)]
pub struct Fault {
    /// The faulting address.
    pub addr: VAddr,
    /// Whether the faulting access was a load or a store.
    pub access: Access,
    /// The reserved region containing the address.
    pub region: VRange,
}

/// What the handler did about a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The handler resolved the fault (mapped/unprotected the page); the
    /// access should be retried.
    Resume,
    /// The handler refuses the access: this is a genuine protection
    /// violation (e.g. a stray user write into a slotted segment, §2.2).
    Deny,
}

/// A handler invoked when an access violates a region's page protection.
///
/// Handlers receive the faulting [`Fault`] and a reference to the address
/// space so they can map pages, change protections, or reserve further
/// ranges (the "three waves" of §2.1 cascade this way). A handler must make
/// the faulting page accessible before returning [`FaultOutcome::Resume`],
/// otherwise the access is retried a bounded number of times and then fails.
pub trait FaultHandler: Send + Sync {
    /// Handles `fault` against `space`.
    fn handle(&self, space: &crate::space::AddressSpace, fault: Fault) -> FaultOutcome;
}

/// A handler built from a closure. Convenient in tests and small tools.
pub struct FnHandler<F>(pub F);

impl<F> FaultHandler for FnHandler<F>
where
    F: Fn(&crate::space::AddressSpace, Fault) -> FaultOutcome + Send + Sync,
{
    fn handle(&self, space: &crate::space::AddressSpace, fault: Fault) -> FaultOutcome {
        (self.0)(space, fault)
    }
}

/// Wraps a closure into an `Arc<dyn FaultHandler>`.
pub fn handler_fn<F>(f: F) -> Arc<dyn FaultHandler>
where
    F: Fn(&crate::space::AddressSpace, Fault) -> FaultOutcome + Send + Sync + 'static,
{
    Arc::new(FnHandler(f))
}
