// Fixture: entry point of a 3-deep cross-crate inversion chain. `entry`
// holds `state` (rank 40) while calling MidCoord::middle (another
// "crate"), which reaches LeafPool::acquire_pool and its rank-20 `pool`
// lock — an inversion no single function exhibits. `clean` drops the
// guard first and must pass.

pub struct WalHold {
    state: Mutex<u32>,
}

impl WalHold {
    pub fn entry(&self, m: &MidCoord, l: &LeafPool) {
        let state = self.state.lock();
        m.middle(l);
        drop(state);
    }

    pub fn clean(&self, m: &MidCoord, l: &LeafPool) {
        let state = self.state.lock();
        drop(state);
        m.middle(l);
    }
}
