// A fixture: annotated panic sites and test-module panics pass.

pub fn f(v: Option<u32>) -> u32 {
    // LINT: allow(panic) — v is produced by f's caller and always Some.
    v.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
