// A fixture: `unsafe` with no SAFETY comment must be flagged.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
