// Fixture: the leader-force pattern — ordered guards dropped before the
// device wait — plus an annotated deliberate block. Neither may be
// flagged.

pub struct OkFlush {
    state: Mutex<u32>,
    dev: Disk,
}

impl OkFlush {
    pub fn drops_first(&self, d: &DevIo2) {
        let state = self.state.lock();
        let data = vec![0u8];
        drop(state);
        self.dev.write_at(&data, 0);
        d.flush_all();
    }

    pub fn annotated(&self) {
        let state = self.state.lock();
        // LINT: allow(blocking-under-lock) — fixture: deliberate solo-force baseline.
        self.dev.sync();
        drop(state);
    }

    pub fn drains_after_drop(&self, q: &IoQueue) {
        let state = self.state.lock();
        drop(state);
        q.drain();
        q.complete(0);
    }
}

pub struct DevIo2 {
    file: u32,
}

impl DevIo2 {
    pub fn flush_all(&self) {
        self.note();
    }

    fn note(&self) {}
}
