// Fixture: a `dyn Trait` call the type index cannot resolve. The
// conservative any-callee fallback must still connect `run` — which holds
// `gate` (rank 20) — to DiskFlusher::flush_now and its rank-10 `dev` lock.

pub trait Flusher {
    fn flush_now(&self);
}

pub struct DiskFlusher {
    dev: Mutex<u32>,
}

impl Flusher for DiskFlusher {
    fn flush_now(&self) {
        let dev = self.dev.lock();
        drop(dev);
    }
}

pub struct Driver {
    gate: Mutex<u32>,
}

impl Driver {
    pub fn run(&self, f: &dyn Flusher) {
        let gate = self.gate.lock();
        f.flush_now();
        drop(gate);
    }
}
