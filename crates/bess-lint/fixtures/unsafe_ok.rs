// A fixture: a properly documented unsafe block passes.

pub fn peek(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads and aligned.
    unsafe { *p }
}
