// Fixture: blocking operations while an ordered guard is live — direct
// device I/O, a direct sleep, and a chained block through DevIo::flush_all.

pub struct BadFlush {
    state: Mutex<u32>,
    dev: Disk,
}

impl BadFlush {
    pub fn direct(&self) {
        let state = self.state.lock();
        self.dev.write_at(&[0u8], 0);
        drop(state);
    }

    pub fn sleepy(&self) {
        let state = self.state.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
        drop(state);
    }

    pub fn chained(&self, d: &DevIo) {
        let state = self.state.lock();
        d.flush_all();
        drop(state);
    }

    pub fn completes(&self, q: &IoQueue, t: Ticket) {
        let state = self.state.lock();
        q.complete(t);
        drop(state);
    }

    pub fn drains(&self, q: &IoQueue) {
        let state = self.state.lock();
        q.drain();
        drop(state);
    }
}

pub struct DevIo {
    file: File,
}

impl DevIo {
    pub fn flush_all(&self) {
        self.sync_dev();
    }

    fn sync_dev(&self) {
        self.file.sync_all();
    }
}
