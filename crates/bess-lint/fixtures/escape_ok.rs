// Fixture: guard uses that stay local — a scoped binding, an annotated
// deliberate escape, and a guard temporary inside a larger expression
// (only the cloned value escapes, not the guard).

pub struct Fine {
    m: Mutex<u32>,
}

impl Fine {
    pub fn local(&self) -> u32 {
        let g = self.m.lock();
        *g
    }

    pub fn annotated(&self) -> MutexGuard<'_, u32> {
        // LINT: allow(guard-escape) — fixture: accessor deliberately hands the guard out.
        self.m.lock()
    }

    pub fn clones_inner(&self) -> u32 {
        u32::clone(&self.m.lock())
    }
}
