// A fixture: acquiring `a` (rank 10) while `b` (rank 20) is held inverts
// the declared hierarchy and must be flagged; so must re-acquiring an
// equal rank.

pub struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl S {
    pub fn inverted(&self) {
        let b = self.b.lock();
        let a = self.a.lock();
        drop(a);
        drop(b);
    }

    pub fn fine_after_drop(&self) {
        let b = self.b.lock();
        drop(b);
        let a = self.a.lock();
        drop(a);
    }
}
