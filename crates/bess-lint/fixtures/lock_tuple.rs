// Fixture: guard bindings the original scanner lost — tuple destructuring
// and `if let` — now tracked. `tuple_inverted` and `if_let_inverted` must
// be flagged; `tuple_held` (ascending) and `if_let_scoped` (guard dies
// with its block) must pass.

pub struct T {
    a: Mutex<u32>,
    b: Mutex<u32>,
    c: Mutex<u32>,
}

impl T {
    pub fn tuple_held(&self) {
        let (b, c) = (self.b.lock(), self.c.lock());
        drop(c);
        drop(b);
    }

    pub fn tuple_inverted(&self) {
        let (b, a) = (self.b.lock(), self.a.lock());
        drop(a);
        drop(b);
    }

    pub fn if_let_scoped(&self) {
        if let Some(b) = self.b.try_lock() {
            let _x = *b;
        }
        let a = self.a.lock();
        drop(a);
    }

    pub fn if_let_inverted(&self) {
        if let Some(b) = self.b.try_lock() {
            let a = self.a.lock();
            drop(a);
        }
    }
}
