// Fixture: the leaf of the 3-deep chain — acquires `pool` (rank 20),
// which is fine locally but inverts under interproc_hold's rank-40 guard.

pub struct LeafPool {
    pool: Mutex<Vec<u8>>,
}

impl LeafPool {
    pub fn acquire_pool(&self) {
        let pool = self.pool.lock();
        drop(pool);
    }
}
