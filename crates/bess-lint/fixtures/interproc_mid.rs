// Fixture: the middle hop of the 3-deep chain — acquires nothing itself,
// just forwards to the leaf.

pub struct MidCoord {
    hops: u32,
}

impl MidCoord {
    pub fn middle(&self, l: &LeafPool) {
        self.note();
        l.acquire_pool();
    }

    fn note(&self) {}
}
