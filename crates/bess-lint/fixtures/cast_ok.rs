// A fixture: checked conversions, annotated casts, and widening casts
// all pass, as does a narrowing cast on unrelated arithmetic.

pub fn page_of(page: u64) -> Option<u32> {
    u32::try_from(page).ok()
}

pub fn order_bits(pages: u32) -> u8 {
    // LINT: allow(cast) — leading_zeros of a u32 is at most 32.
    (32 - pages.leading_zeros()) as u8
}

pub fn widen(page: u32) -> u64 {
    page as u64
}

pub fn unrelated(color: u64) -> u32 {
    color as u32
}
