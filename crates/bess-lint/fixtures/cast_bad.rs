// A fixture: bare narrowing casts on page/LSN/offset arithmetic.

pub fn page_of(page: u64) -> u32 {
    page as u32
}

pub fn lsn_low(lsn: u64) -> u16 {
    lsn as u16
}

pub fn offset_byte(offset: usize) -> u8 {
    offset as u8
}
