// A fixture: unannotated panic sites in non-test code.

pub fn f(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn g(v: Option<u32>) -> u32 {
    v.expect("present")
}

pub fn h() {
    panic!("boom");
}

// An annotation without a reason is itself a violation.
pub fn i(v: Option<u32>) -> u32 {
    v.unwrap() // LINT: allow(panic)
}
