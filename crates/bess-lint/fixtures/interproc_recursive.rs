// Fixture: mutual recursion (`ping` <-> `pong`). The fixpoint must
// terminate, and `entry` — which holds `h` (rank 20) while calling into
// the cycle that acquires `r` (rank 10) — must still be flagged.

pub struct Recur {
    h: Mutex<u32>,
    r: Mutex<u32>,
}

impl Recur {
    pub fn entry(&self) {
        let h = self.h.lock();
        self.ping(3);
        drop(h);
    }

    fn ping(&self, n: u32) {
        let r = self.r.lock();
        drop(r);
        if n > 0 {
            self.pong(n - 1);
        }
    }

    fn pong(&self, n: u32) {
        self.ping(n);
    }
}
