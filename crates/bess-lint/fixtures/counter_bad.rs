// Fixture: raw AtomicU64 declarations that should trip the raw-counter
// rule, plus shapes that must pass.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Stats {
    hits: AtomicU64,                           // flagged: bare field
    misses: std::sync::atomic::AtomicU64,      // flagged: qualified field
}

static TOTAL: AtomicU64 = AtomicU64::new(0); // flagged (type position only)

// LINT: allow(raw-counter)
static BAD_ANNOTATION: AtomicU64 = AtomicU64::new(0); // flagged: no reason

// LINT: allow(raw-counter) — request-id allocator, not a metric
static NEXT_ID: AtomicU64 = AtomicU64::new(1); // passes: annotated

pub fn bump(s: &Stats) {
    s.hits.fetch_add(1, Ordering::Relaxed); // passes: not a declaration
}

#[cfg(test)]
mod tests {
    use super::*;
    static TEST_COUNTER: AtomicU64 = AtomicU64::new(0); // passes: test code
}
