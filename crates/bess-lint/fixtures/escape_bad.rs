// Fixture: ordered guards escaping their function — returned explicitly,
// returned as the tail expression, and stored into a struct. All three
// defeat static rank tracking and must be flagged.

pub struct Escapes {
    m: Mutex<u32>,
}

pub struct Stash<'a> {
    guard: MutexGuard<'a, u32>,
}

impl Escapes {
    pub fn returned(&self) -> MutexGuard<'_, u32> {
        return self.m.lock();
    }

    pub fn tail(&self) -> MutexGuard<'_, u32> {
        self.m.lock()
    }

    pub fn stored(&self) -> Stash<'_> {
        Stash { guard: self.m.lock() }
    }
}
