// A fixture: ascending acquisitions pass, including a method-call
// receiver and a guard released by `drop` before a lower rank is taken.

pub struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl S {
    fn a(&self) -> &std::sync::Mutex<u32> {
        &self.a
    }

    pub fn ascending(&self) {
        let a = self.a().lock();
        let b = self.b.lock();
        drop(b);
        drop(a);
    }

    pub fn resequenced(&self) {
        let b = self.b.lock();
        drop(b);
        let a = self.a.lock();
        let b = self.b.lock();
        drop(b);
        drop(a);
    }
}
