// Fixture: diamond call graph. `top` holds `hi` (rank 30) and calls both
// `via1` and `via2`; each reaches `bottom`, which acquires `lo` (rank 10).
// Both call sites in `top` must be reported — and the shared `bottom`
// node must not confuse the fixpoint.

pub struct Diamond {
    hi: Mutex<u32>,
    lo: Mutex<u32>,
}

impl Diamond {
    pub fn top(&self) {
        let hi = self.hi.lock();
        self.via1();
        self.via2();
        drop(hi);
    }

    fn via1(&self) {
        self.bottom();
    }

    fn via2(&self) {
        self.bottom();
    }

    fn bottom(&self) {
        let lo = self.lo.lock();
        drop(lo);
    }
}
