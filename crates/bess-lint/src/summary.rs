//! Per-function concurrency summaries — the intraprocedural half of the
//! interprocedural analysis (DESIGN.md §15).
//!
//! [`summarize`] runs one linear scan over every function body in a masked
//! file and produces a [`FnSummary`] per function:
//!
//! * which ranked locks (declared in `lock_order.toml` for this file) the
//!   body acquires, and where;
//! * every outgoing call site, with the set of ordered guards held at that
//!   point — the raw material for [`crate::callgraph`]'s whole-workspace
//!   fixpoint;
//! * every lexically blocking operation (`write_at`/`read_at`/`sync`,
//!   condvar waits, channel `recv`, `thread::sleep`), again with the held
//!   set — the **no-blocking-under-lock** rule;
//! * ordered guards that escape the function (returned, stored into a
//!   struct, or yielded as the tail expression) — the **guard-escape**
//!   rule, since a guard outliving its static scope defeats rank tracking.
//!
//! The intra-function lock-order rule is evaluated during the same scan
//! (it used to live in [`crate::rules`]); guard liveness tracks plain
//! `let` bindings, `let (a, b) = ...` tuple destructuring, `if let`/`while
//! let` bindings (scoped to their block), explicit `drop(g)`, and block
//! scopes.

use std::collections::HashMap;

use crate::config::LockOrder;
use crate::lexer::is_ident;
use crate::rules::{annotation_reason_ok, find_word, match_brace, FileCtx};
use crate::Violation;

/// Annotation marker exempting a lock acquisition or call site from the
/// (intra- or interprocedural) lock-order rule.
pub const ALLOW_LOCK_ORDER: &str = "LINT: allow(lock-order)";
/// Annotation marker exempting a site from the no-blocking-under-lock rule.
pub const ALLOW_BLOCKING: &str = "LINT: allow(blocking-under-lock)";
/// Annotation marker exempting a site from the guard-escape rule.
pub const ALLOW_ESCAPE: &str = "LINT: allow(guard-escape)";
/// Annotation marker severing a call site from interprocedural resolution
/// — for receivers the any-callee fallback would resolve spuriously (e.g.
/// slice elements sharing a method name with a locking wrapper).
pub const ALLOW_CALLGRAPH: &str = "LINT: allow(callgraph)";

/// Method names treated as lexically blocking: device I/O, condvar waits,
/// and channel receives. `thread::sleep` is matched by path instead. These
/// never become call-graph edges — they are the sinks the
/// no-blocking-under-lock rule protects.
pub const BLOCKING_METHODS: &[&str] = &[
    "write_at",
    "read_at",
    "sync",
    "sync_all",
    "sync_data",
    "set_len",
    "wait",
    "wait_for",
    "wait_until",
    "wait_while",
    "write_all",
    "write_all_at",
    "read_exact",
    "recv",
    "recv_timeout",
    "complete",
    "drain",
];

/// Identifiers that introduce control flow, not calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "move", "else", "let", "fn",
    "impl", "struct", "enum", "trait", "use", "pub", "mod", "ref", "dyn", "where", "unsafe",
    "break", "continue", "crate", "super", "await", "yield",
];

/// A registered ordered-lock guard held at some program point.
#[derive(Debug, Clone)]
pub struct HeldLock {
    /// Receiver name as registered in `lock_order.toml`.
    pub recv: String,
    /// Declared rank.
    pub rank: u16,
    /// Binding name holding the guard.
    pub binding: String,
    /// Line the guard was acquired on.
    pub line: usize,
    /// Brace depth at acquisition (scanner bookkeeping).
    depth: usize,
}

/// One local acquisition of a registered ordered lock.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Receiver name as registered in `lock_order.toml`.
    pub recv: String,
    /// Declared rank.
    pub rank: u16,
    /// 1-based line of the acquisition.
    pub line: usize,
}

/// How a call site names its target.
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// `recv.name(..)`: receiver path segments in source order, e.g.
    /// `self.backend.write_at(..)` → `["self", "backend"]`. `complex` means
    /// a segment was itself a call or index, so the chain is unresolvable.
    Method {
        /// Receiver path segments in source order.
        chain: Vec<String>,
        /// A segment was a call/index expression; type is unknowable here.
        complex: bool,
    },
    /// `Qual::name(..)` — the last path segment before the `::`.
    Qualified {
        /// Type (uppercase) or module (lowercase) qualifier.
        qualifier: String,
    },
    /// A bare `name(..)` call.
    Free,
}

/// An outgoing call site with the ordered guards held around it.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name as written at the call site.
    pub name: String,
    /// 1-based line of the call.
    pub line: usize,
    /// How the callee is named (drives resolution heuristics).
    pub target: CallTarget,
    /// Ordered guards held at the call.
    pub held: Vec<HeldLock>,
    /// Site carries a well-formed `LINT: allow(lock-order)` annotation.
    pub allow_lock_order: bool,
    /// Site carries a well-formed `LINT: allow(blocking-under-lock)`.
    pub allow_blocking: bool,
    /// Site carries `LINT: allow(callgraph)` — excluded from resolution.
    pub allow_callgraph: bool,
}

/// A lexically blocking operation (device I/O, condvar wait, sleep, recv).
#[derive(Debug, Clone)]
pub struct BlockSite {
    /// What blocks, e.g. `write_at()` or `thread::sleep`.
    pub what: String,
    /// 1-based line.
    pub line: usize,
}

/// Summary of one function body.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Type this function is an inherent/trait method of, if any.
    pub impl_type: Option<String>,
    /// Takes some form of `self`.
    pub is_method: bool,
    /// Defined under `#[cfg(test)]` or in a test-context file; violations
    /// from blocking/escape rules are not reported for such functions.
    pub in_test: bool,
    /// Ranked locks acquired directly in this body.
    pub acquires: Vec<Acquire>,
    /// Outgoing calls (the call-graph edges), with held sets.
    pub calls: Vec<CallSite>,
    /// Lexically blocking operations anywhere in the body (held or not);
    /// any entry makes the function "may block" for propagation.
    pub blocks: Vec<BlockSite>,
    /// Known local variable/parameter types (base type names).
    pub var_types: HashMap<String, String>,
}

/// A struct declaration: field name → base type, for receiver resolution.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// Struct name.
    pub name: String,
    /// `(field, base type)` pairs.
    pub fields: Vec<(String, String)>,
}

/// Everything the workspace pass needs from one file.
#[derive(Debug)]
pub struct FileSummary {
    /// Workspace-relative path.
    pub file: String,
    /// Per-function summaries, in source order.
    pub fns: Vec<FnSummary>,
    /// Struct field types declared in this file.
    pub structs: Vec<StructInfo>,
    /// Intra-function findings: lock-order inversions, guard escapes, and
    /// malformed annotations.
    pub violations: Vec<Violation>,
    /// Direct blocking-under-lock findings (unannotated, non-test); the
    /// caller applies the `[blocking]` baseline before reporting.
    pub blocking: Vec<Violation>,
}

/// Whether `text[at..]` starts with `word` on identifier boundaries.
fn word_at(text: &str, at: usize, word: &str) -> bool {
    let bytes = text.as_bytes();
    if !text[at..].starts_with(word) {
        return false;
    }
    if at > 0 && is_ident(bytes[at - 1] as char) {
        return false;
    }
    let end = at + word.len();
    end >= bytes.len() || !is_ident(bytes[end] as char)
}

/// Byte offset of the `)` matching the `(` at `open` (masked text).
fn match_paren(text: &str, open: usize) -> usize {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

/// The identifier ending at (or before, skipping whitespace) `at`.
fn ident_before(text: &str, at: usize) -> Option<(usize, usize)> {
    let bytes = text.as_bytes();
    let mut i = at;
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident(bytes[i - 1] as char) {
        i -= 1;
    }
    if i == end {
        None
    } else {
        Some((i, end))
    }
}

/// Walks a method receiver backwards from the `.` before the method name.
/// Returns the path segments in source order (`self.backend` →
/// `["self", "backend"]`), whether any segment was a call/index expression,
/// and the byte offset where the receiver expression starts.
fn receiver_chain(text: &str, dot_at: usize) -> (Vec<String>, bool, usize) {
    let bytes = text.as_bytes();
    let mut segs: Vec<String> = Vec::new();
    let mut complex = false;
    let mut i = dot_at;
    let mut start = dot_at;
    for _ in 0..4 {
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        // Skip one balanced () or [] group (a call or index segment).
        if i > 0 && (bytes[i - 1] == b')' || bytes[i - 1] == b']') {
            let (open, shut) = if bytes[i - 1] == b')' { (b'(', b')') } else { (b'[', b']') };
            complex = true;
            let mut depth = 0usize;
            while i > 0 {
                i -= 1;
                if bytes[i] == shut {
                    depth += 1;
                } else if bytes[i] == open {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
            while i > 0 && (bytes[i - 1] as char).is_whitespace() {
                i -= 1;
            }
        }
        let end = i;
        while i > 0 && is_ident(bytes[i - 1] as char) {
            i -= 1;
        }
        if i == end {
            break;
        }
        segs.insert(0, text[i..end].to_string());
        start = i;
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i > 0 && bytes[i - 1] == b'.' {
            i -= 1;
            continue;
        }
        if i >= 2 && &text[i - 2..i] == "::" {
            // `Path::seg.method()` — rare; treat as unresolvable.
            complex = true;
        }
        break;
    }
    (segs, complex, start)
}

/// Strips references, lifetimes, `mut`/`dyn`, and smart-pointer wrappers
/// down to the base type name (`&mut Arc<FaultDisk>` → `FaultDisk`).
/// Returns `None` for primitives, closures, and anything unrecognizable.
pub fn base_type(s: &str) -> Option<String> {
    let mut t = s.trim();
    loop {
        if let Some(rest) = t.strip_prefix('&') {
            t = rest.trim_start();
            continue;
        }
        if t.starts_with('\'') {
            match t.find(char::is_whitespace) {
                Some(d) => t = t[d..].trim_start(),
                None => return None,
            }
            continue;
        }
        if let Some(rest) = t.strip_prefix("mut ") {
            t = rest.trim_start();
            continue;
        }
        if let Some(rest) = t.strip_prefix("dyn ") {
            t = rest.trim_start();
            continue;
        }
        break;
    }
    let (head, inner) = match t.find('<') {
        // `rfind` can land *before* the `<` on closure-typed params whose
        // `->` arrow supplies the last `>` (`impl FnMut() -> Result<T`,
        // already clipped at a top-level comma); treat that as no generics.
        Some(d) => (&t[..d], t.rfind('>').filter(|&e| e > d).map(|e| &t[d + 1..e])),
        None => (t, None),
    };
    let head = head.trim();
    let seg = head.rsplit("::").next().unwrap_or(head).trim();
    if matches!(seg, "Arc" | "Box" | "Rc" | "RefCell" | "Cell" | "Mutex" | "RwLock") {
        if let Some(inner) = inner {
            // Wrapper: the interesting type is the first generic argument.
            let first = top_level_split(inner, ',').into_iter().next().unwrap_or(inner);
            return base_type(first);
        }
    }
    if seg.is_empty() || !seg.starts_with(|c: char| c.is_ascii_uppercase()) {
        return None;
    }
    Some(seg.to_string())
}

/// Splits `s` on `sep` at zero angle/paren/bracket depth.
fn top_level_split(s: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            c if c == sep && depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// Parses struct declarations (brace form) into field-type tables.
fn parse_structs(text: &str) -> Vec<StructInfo> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    let mut pos = 0;
    while let Some(at) = find_word(text, "struct", pos) {
        pos = at + 6;
        let Some((ns, ne)) = next_ident(text, pos) else { continue };
        let name = text[ns..ne].to_string();
        let mut j = ne;
        // Skip generics.
        j = skip_ws(text, j);
        if j < bytes.len() && bytes[j] == b'<' {
            j = skip_angles(text, j);
        }
        // Find the body opener; `(`/`;` mean tuple/unit struct (no fields).
        let Some(d) = text[j..].find(['{', '(', ';']) else { continue };
        if bytes[j + d] != b'{' {
            continue;
        }
        let open = j + d;
        let close = match_brace(text, open);
        let body = &text[open + 1..close];
        let mut fields = Vec::new();
        for part in top_level_split(body, ',') {
            let part = part.trim();
            // Strip attributes and visibility.
            let part = strip_meta(part);
            if let Some((fname, fty)) = part.split_once(':') {
                let fname = fname.trim();
                if fname.chars().all(is_ident) && !fname.is_empty() {
                    if let Some(base) = base_type(fty) {
                        fields.push((fname.to_string(), base));
                    }
                }
            }
        }
        out.push(StructInfo { name, fields });
        pos = close;
    }
    out
}

/// Strips leading `#[...]` attributes and `pub(...)` visibility from a
/// field declaration.
fn strip_meta(mut s: &str) -> &str {
    loop {
        s = s.trim_start();
        if s.starts_with("#[") {
            let mut depth = 0usize;
            let mut cut = s.len();
            for (i, c) in s.char_indices() {
                match c {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            cut = i + 1;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            s = &s[cut..];
            continue;
        }
        if let Some(rest) = s.strip_prefix("pub") {
            let rest = rest.trim_start();
            if let Some(r2) = rest.strip_prefix('(') {
                match r2.find(')') {
                    Some(d) => s = &r2[d + 1..],
                    None => return "",
                }
            } else {
                s = rest;
            }
            continue;
        }
        return s;
    }
}

fn skip_ws(text: &str, mut i: usize) -> usize {
    let bytes = text.as_bytes();
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

fn skip_angles(text: &str, open: usize) -> usize {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

fn next_ident(text: &str, at: usize) -> Option<(usize, usize)> {
    let bytes = text.as_bytes();
    let s = skip_ws(text, at);
    let mut e = s;
    while e < bytes.len() && is_ident(bytes[e] as char) {
        e += 1;
    }
    if e == s {
        None
    } else {
        Some((s, e))
    }
}

/// `impl`/`trait` block ranges with the type (or trait) name they define
/// methods for.
fn parse_impl_ranges(text: &str) -> Vec<(usize, usize, String)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    for kw in ["impl", "trait"] {
        let mut pos = 0;
        while let Some(at) = find_word(text, kw, pos) {
            pos = at + kw.len();
            // `-> impl Trait` / `(impl Trait` / `: impl` are type positions,
            // not item definitions.
            let mut p = at;
            while p > 0 && (bytes[p - 1] as char).is_whitespace() {
                p -= 1;
            }
            if p > 0 && matches!(bytes[p - 1], b'>' | b'(' | b',' | b':' | b'&' | b'<' | b'=') {
                continue;
            }
            let mut j = skip_ws(text, pos);
            if kw == "impl" && j < bytes.len() && bytes[j] == b'<' {
                j = skip_ws(text, skip_angles(text, j));
            }
            let Some(brace_rel) = text[j..].find(['{', ';']) else { break };
            if bytes[j + brace_rel] == b';' {
                continue;
            }
            let open = j + brace_rel;
            let mut header = &text[j..open];
            if let Some(w) = find_word(header, "where", 0) {
                header = &header[..w];
            }
            let ty_str = if kw == "impl" {
                match find_word(header, "for", 0) {
                    Some(f) => &header[f + 3..],
                    None => header,
                }
            } else {
                header
            };
            let Some(ty) = base_type(ty_str) else {
                continue;
            };
            let close = match_brace(text, open);
            out.push((open, close, ty));
            pos = open + 1;
        }
    }
    out
}

/// Computes summaries (and intra-function findings) for one file.
/// `file_is_test` marks whole-file test contexts (integration tests,
/// benches): their functions never produce blocking/escape reports, but
/// their summaries still feed the call graph.
pub fn summarize(ctx: &FileCtx, cfg: &LockOrder, file_is_test: bool) -> FileSummary {
    let text = &ctx.masked.text;
    let decls: Vec<_> = cfg.locks.iter().filter(|d| d.file == ctx.file).collect();
    let rank_of = |recv: &str| decls.iter().find(|d| d.recv == recv).map(|d| d.rank);

    let structs = parse_structs(text);
    let impls = parse_impl_ranges(text);
    let mut out = FileSummary {
        file: ctx.file.to_string(),
        fns: Vec::new(),
        structs,
        violations: Vec::new(),
        blocking: Vec::new(),
    };

    let bytes = text.as_bytes();
    let mut pos = 0;
    while let Some(at) = find_word(text, "fn", pos) {
        pos = at + 2;
        let Some((ns, ne)) = next_ident(text, at + 2) else { continue };
        // `fn` pointer types (`fn(u32) -> u32`) have no name ident directly
        // after; `next_ident` returning the next word over would misfire,
        // so require the name to start right after whitespace.
        if text[at + 2..ns].contains(|c: char| !c.is_whitespace()) {
            continue;
        }
        let Some(d) = text[ne..].find(['{', ';']) else { break };
        if bytes[ne + d] == b';' {
            pos = ne + d + 1;
            continue;
        }
        let open = ne + d;
        let close = match_brace(text, open);
        let line = ctx.line_of(at);
        let impl_type = impls
            .iter()
            .filter(|&&(o, c, _)| o < at && at < c)
            .min_by_key(|&&(o, c, _)| c - o)
            .map(|(_, _, ty)| ty.clone());

        // Parameter types.
        let mut var_types = HashMap::new();
        let mut is_method = false;
        if let Some(po) = text[ne..open].find('(') {
            let popen = ne + po;
            let pclose = match_paren(text, popen);
            if pclose < open {
                for param in top_level_split(&text[popen + 1..pclose], ',') {
                    let p = param.trim();
                    let bare = p.trim_start_matches(['&', ' ']).trim_start_matches("mut ");
                    if bare == "self" || bare.starts_with("self ") || p.starts_with("self") {
                        is_method = true;
                        continue;
                    }
                    if let Some((pname, pty)) = p.split_once(':') {
                        let pname = pname.trim().trim_start_matches("mut ").trim();
                        if pname.chars().all(is_ident) && !pname.is_empty() {
                            if let Some(base) = base_type(pty) {
                                var_types.insert(pname.to_string(), base);
                            }
                        }
                    }
                }
            }
        }

        let mut fun = FnSummary {
            name: text[ns..ne].to_string(),
            line,
            impl_type,
            is_method,
            in_test: file_is_test || ctx.in_test_item(line),
            acquires: Vec::new(),
            calls: Vec::new(),
            blocks: Vec::new(),
            var_types,
        };
        scan_body(ctx, &rank_of, open, close, &mut fun, &mut out);
        out.fns.push(fun);
        pos = close;
    }
    out
}

/// Reads the annotation state for `marker` at `line`: `None` if absent,
/// `Some(true)` if present with a reason, `Some(false)` if malformed.
fn annotation_state(ctx: &FileCtx, line: usize, marker: &str) -> Option<bool> {
    ctx.annotation(line, marker)
        .map(|text| annotation_reason_ok(text, marker))
}

/// The linear walk over one function body.
#[allow(clippy::too_many_lines)]
fn scan_body(
    ctx: &FileCtx,
    rank_of: &dyn Fn(&str) -> Option<u16>,
    open: usize,
    close: usize,
    fun: &mut FnSummary,
    out: &mut FileSummary,
) {
    let text = &ctx.masked.text;
    let bytes = text.as_bytes();
    let mut held: Vec<HeldLock> = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < close {
        match bytes[i] {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
                i += 1;
            }
            b'r' if word_at(text, i, "return") => {
                // `return g;` where `g` is a held ordered guard.
                if let Some((gs, ge)) = next_ident(text, i + 6) {
                    let name = &text[gs..ge];
                    let stmt_done = text[ge..].trim_start().starts_with(';');
                    if stmt_done {
                        if let Some(h) = held.iter().find(|h| h.binding == name) {
                            report_escape(ctx, fun, out, &h.recv.clone(), h.rank, ctx.line_of(gs), "is returned");
                        }
                    }
                }
                i += 6;
            }
            b'l' if word_at(text, i, "let") => {
                record_let_type(text, i, fun);
                i += 3;
            }
            b'(' => {
                handle_paren(ctx, rank_of, i, open, close, &mut held, depth, fun, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// Records `let name: Type = ...` / `let name = Type::...` local types.
fn record_let_type(text: &str, let_at: usize, fun: &mut FnSummary) {
    let bytes = text.as_bytes();
    let mut j = skip_ws(text, let_at + 3);
    if text[j..].starts_with("mut ") {
        j = skip_ws(text, j + 4);
    }
    let Some((ns, ne)) = next_ident(text, j) else { return };
    if ns != j {
        return;
    }
    let name = &text[ns..ne];
    let mut k = skip_ws(text, ne);
    if k >= bytes.len() || bytes[k] == b'(' {
        // Pattern (`let Some(x)` / tuple) — handled by guard binding logic.
        return;
    }
    if bytes[k] == b':' {
        let ty_end = text[k + 1..]
            .find(['=', ';'])
            .map(|d| k + 1 + d)
            .unwrap_or(text.len());
        if let Some(base) = base_type(&text[k + 1..ty_end]) {
            fun.var_types.insert(name.to_string(), base);
        }
        return;
    }
    if bytes[k] == b'=' {
        k = skip_ws(text, k + 1);
        let Some((ts, te)) = next_ident(text, k) else { return };
        if ts != k {
            return;
        }
        let ty = &text[ts..te];
        if !ty.starts_with(|c: char| c.is_ascii_uppercase()) {
            return;
        }
        let after = skip_ws(text, te);
        // `Type::ctor(...)` or `Type { ... }` both pin the type.
        if text[after..].starts_with("::") || bytes.get(after) == Some(&b'{') {
            fun.var_types.insert(name.to_string(), ty.to_string());
        }
    }
}

/// Classifies the `(` at `paren`: lock token, blocking op, `drop`, or call.
#[allow(clippy::too_many_arguments)]
fn handle_paren(
    ctx: &FileCtx,
    rank_of: &dyn Fn(&str) -> Option<u16>,
    paren: usize,
    open: usize,
    close: usize,
    held: &mut Vec<HeldLock>,
    depth: usize,
    fun: &mut FnSummary,
    out: &mut FileSummary,
) {
    let text = &ctx.masked.text;
    let bytes = text.as_bytes();
    let Some((ns, ne)) = ident_before(text, paren) else { return };
    let name = &text[ns..ne];
    if KEYWORDS.contains(&name) {
        return;
    }
    let mut q = ns;
    while q > open && (bytes[q - 1] as char).is_whitespace() {
        q -= 1;
    }
    // A nested `fn` definition, not a call.
    if q >= 2 && word_at(text, q - 2, "fn") {
        return;
    }
    let is_method = q > 0 && bytes[q - 1] == b'.';
    let qualified = !is_method && q >= 2 && &text[q - 2..q] == "::";
    let end = match_paren(text, paren);
    let line = ctx.line_of(ns);
    let argless = text[paren + 1..end.min(close)].trim().is_empty();

    // Ordered-lock acquisition.
    if is_method && argless && matches!(name, "lock" | "read" | "write" | "try_lock") {
        let (chain, _complex, recv_start) = receiver_chain(text, q - 1);
        let Some(recv) = chain.last().cloned() else { return };
        let Some(rank) = rank_of(&recv) else { return };
        handle_acquisition(
            ctx, held, depth, fun, out, &recv, rank, line, recv_start, end + 1, close,
        );
        return;
    }

    // Blocking operations (lexical sinks; never call-graph edges).
    let thread_sleep = qualified && name == "sleep" && {
        let (qs, qe) = ident_before(text, q - 2).unwrap_or((q, q));
        &text[qs..qe] == "thread"
    };
    if (is_method && BLOCKING_METHODS.contains(&name)) || thread_sleep {
        let what = if thread_sleep {
            "thread::sleep".to_string()
        } else {
            format!("{name}()")
        };
        fun.blocks.push(BlockSite { what: what.clone(), line });
        if !held.is_empty() && !fun.in_test && !ctx.in_test_item(line) {
            match annotation_state(ctx, line, ALLOW_BLOCKING) {
                Some(true) => {}
                Some(false) => out.violations.push(Violation {
                    file: ctx.file.to_string(),
                    line,
                    rule: "blocking-under-lock",
                    message: "`LINT: allow(blocking-under-lock)` annotation is missing a reason"
                        .into(),
                }),
                None => {
                    let h = held.iter().max_by_key(|h| h.rank).cloned();
                    if let Some(h) = h {
                        out.blocking.push(Violation {
                            file: ctx.file.to_string(),
                            line,
                            rule: "blocking-under-lock",
                            message: format!(
                                "`{what}` while `{}` (rank {}, bound as `{}` on line {}) is \
                                 held — drop ordered guards before blocking calls or annotate \
                                 `LINT: allow(blocking-under-lock) — reason`",
                                h.recv, h.rank, h.binding, h.line
                            ),
                        });
                    }
                }
            }
        }
        return;
    }

    // `drop(g)` releases a held binding.
    if name == "drop" && !is_method && !qualified {
        if let Some((as_, ae)) = next_ident(text, paren + 1) {
            let arg = &text[as_..ae];
            if text[ae..].trim_start().starts_with(')') {
                if let Some(idx) = held.iter().rposition(|h| h.binding == arg) {
                    held.remove(idx);
                }
            }
        }
        return;
    }

    // An ordinary call site.
    let target = if is_method {
        let (chain, complex, _) = receiver_chain(text, q - 1);
        CallTarget::Method { chain, complex }
    } else if qualified {
        let (qs, qe) = match ident_before(text, q - 2) {
            Some(p) => p,
            None => (q, q),
        };
        CallTarget::Qualified { qualifier: text[qs..qe].to_string() }
    } else {
        CallTarget::Free
    };
    let allow_callgraph = match annotation_state(ctx, line, ALLOW_CALLGRAPH) {
        Some(true) => true,
        Some(false) => {
            out.violations.push(Violation {
                file: ctx.file.to_string(),
                line,
                rule: "callgraph",
                message: "`LINT: allow(callgraph)` annotation is missing a reason".into(),
            });
            false
        }
        None => false,
    };
    fun.calls.push(CallSite {
        name: name.to_string(),
        line,
        target,
        held: held.clone(),
        allow_lock_order: annotation_state(ctx, line, ALLOW_LOCK_ORDER) == Some(true),
        allow_blocking: annotation_state(ctx, line, ALLOW_BLOCKING) == Some(true),
        allow_callgraph,
    });
}

/// One tracked acquisition: ordering check, escape check, guard binding.
#[allow(clippy::too_many_arguments)]
fn handle_acquisition(
    ctx: &FileCtx,
    held: &mut Vec<HeldLock>,
    depth: usize,
    fun: &mut FnSummary,
    out: &mut FileSummary,
    recv: &str,
    rank: u16,
    line: usize,
    recv_start: usize,
    after: usize,
    close: usize,
) {
    let text = &ctx.masked.text;
    fun.acquires.push(Acquire { recv: recv.to_string(), rank, line });

    let allowed = match annotation_state(ctx, line, ALLOW_LOCK_ORDER) {
        Some(true) => true,
        Some(false) => {
            out.violations.push(Violation {
                file: ctx.file.to_string(),
                line,
                rule: "lock-order",
                message: "`LINT: allow(lock-order)` annotation is missing a reason".into(),
            });
            false
        }
        None => false,
    };
    if !allowed {
        for h in held.iter() {
            if h.rank >= rank {
                out.violations.push(Violation {
                    file: ctx.file.to_string(),
                    line,
                    rule: "lock-order",
                    message: format!(
                        "`{recv}` (rank {rank}) acquired while `{}` (rank {}, bound as `{}` \
                         on line {}) is held; ranks must strictly ascend",
                        h.recv, h.rank, h.binding, h.line
                    ),
                });
            }
        }
    }

    // Guard escape: the lock call itself is returned, stored into a
    // struct, or is the function's tail value. A lock call nested inside a
    // larger expression (`Arc::clone(&self.plan.lock())`) is a temporary —
    // dropped at the end of the statement — and does not escape.
    if !fun.in_test && !ctx.in_test_item(line) {
        let stmt_start = text[..recv_start]
            .rfind([';', '{', '}'])
            .map(|i| i + 1)
            .unwrap_or(0);
        let stmt = &text[stmt_start..recv_start];
        let before = text[..recv_start].trim_end();
        let returns_call = before.ends_with("return")
            && find_word(before, "return", before.len() - 6) == Some(before.len() - 6);
        let is_whole_tail = stmt.trim().is_empty()
            && text[after..close]
                .chars()
                .all(|c| c.is_whitespace() || matches!(c, ')' | ']' | '}'));
        let how = if returns_call {
            Some("is returned")
        } else if is_struct_field_value(text, recv_start, after)
            || is_field_assignment(stmt, text, after)
        {
            Some("is stored outside the function")
        } else if is_whole_tail {
            Some("escapes as the tail expression")
        } else {
            None
        };
        if let Some(how) = how {
            report_escape(ctx, fun, out, recv, rank, line, how);
        }
    }

    // Guard binding: plain `let`, tuple destructuring, or `if let`.
    if let Some((binding, extra_depth)) = guard_binding(text, recv_start, after) {
        held.push(HeldLock {
            recv: recv.to_string(),
            rank,
            binding,
            line,
            depth: depth + extra_depth,
        });
    }
}

fn report_escape(
    ctx: &FileCtx,
    fun: &FnSummary,
    out: &mut FileSummary,
    recv: &str,
    rank: u16,
    line: usize,
    how: &str,
) {
    if fun.in_test {
        return;
    }
    match annotation_state(ctx, line, ALLOW_ESCAPE) {
        Some(true) => {}
        Some(false) => out.violations.push(Violation {
            file: ctx.file.to_string(),
            line,
            rule: "guard-escape",
            message: "`LINT: allow(guard-escape)` annotation is missing a reason".into(),
        }),
        None => out.violations.push(Violation {
            file: ctx.file.to_string(),
            line,
            rule: "guard-escape",
            message: format!(
                "ordered guard for `{recv}` (rank {rank}) {how} — a guard outliving its \
                 function defeats static rank tracking; keep it local or annotate \
                 `LINT: allow(guard-escape) — reason`"
            ),
        }),
    }
}

/// `field: recv.lock()` inside a struct literal.
fn is_struct_field_value(text: &str, recv_start: usize, after: usize) -> bool {
    let bytes = text.as_bytes();
    let mut i = recv_start;
    while i > 0 && (bytes[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b':' || (i >= 2 && bytes[i - 2] == b':') {
        return false;
    }
    let has_field_ident = ident_before(text, i - 1).is_some();
    let next = text[after..].trim_start();
    has_field_ident && (next.starts_with(',') || next.starts_with('}'))
}

/// `self.field = recv.lock();` — assignment into a field.
fn is_field_assignment(stmt: &str, text: &str, after: usize) -> bool {
    if find_word(stmt, "let", 0).is_some() {
        return false;
    }
    let Some(eq) = stmt.find('=') else { return false };
    // Not `==`, `+=`, etc.
    if stmt.as_bytes().get(eq + 1) == Some(&b'=') || (eq > 0 && !matches!(stmt.as_bytes()[eq - 1], b' ' | b'\t' | b'\n')) {
        return false;
    }
    stmt[..eq].contains('.') && text[after..].trim_start().starts_with(';')
}

/// If the statement containing the lock call binds the guard, returns the
/// binding name and the extra brace depth it lives at (1 for `if let` /
/// `while let`, whose binding is scoped to the following block).
///
/// Handles `let [mut] g = recv.lock();`, tuple destructuring
/// `let (a, b) = (x.lock(), y.lock());` (each call matched to its pattern
/// slot), and `if let Some(g) = recv.try_lock() { ... }`.
fn guard_binding(text: &str, recv_start: usize, after: usize) -> Option<(String, usize)> {
    let stmt_start = text[..recv_start]
        .rfind([';', '{', '}'])
        .map(|i| i + 1)
        .unwrap_or(0);
    let stmt = &text[stmt_start..recv_start];
    let let_at = find_word(stmt, "let", 0)?;
    let is_if_let = find_word(stmt, "if", 0).map(|p| p < let_at).unwrap_or(false)
        || find_word(stmt, "while", 0).map(|p| p < let_at).unwrap_or(false);
    let rest = stmt[let_at + 3..].trim_start();

    // Tuple pattern: `let (a, b) = (x.lock(), y.lock());`
    if let Some(pat) = rest.strip_prefix('(') {
        let pat_close = pat.find(')')?;
        let names: Vec<&str> = pat[..pat_close]
            .split(',')
            .map(|s| s.trim().trim_start_matches("mut ").trim())
            .collect();
        // Which tuple slot is this lock call in? Count top-level commas in
        // the RHS tuple literal before the call.
        let eq_rel = stmt[let_at..].find('=')? + let_at;
        let rhs = &text[stmt_start + eq_rel + 1..recv_start];
        if !rhs.trim_start().starts_with('(') {
            return None;
        }
        let mut depth = 0i32;
        let mut slot = 0usize;
        for c in rhs.chars() {
            match c {
                '(' | '[' => depth += 1,
                ')' | ']' => depth -= 1,
                ',' if depth == 1 => slot += 1,
                _ => {}
            }
        }
        let name = *names.get(slot)?;
        if name.is_empty() || name == "_" {
            return None;
        }
        return Some((name.to_string(), 0));
    }

    // `if let Some(g) = recv.try_lock() { ... }`
    if is_if_let {
        let mut chars = rest.char_indices();
        let (_, first) = chars.next()?;
        if first.is_ascii_uppercase() {
            let inner_open = rest.find('(')?;
            let inner = rest[inner_open + 1..]
                .trim_start()
                .trim_start_matches("mut ");
            let name: String = inner.chars().take_while(|&c| is_ident(c)).collect();
            if !name.is_empty()
                && name != "_"
                && text[after..].trim_start().starts_with('{')
            {
                return Some((name, 1));
            }
        }
        return None;
    }

    // Plain `let [mut] g = recv.lock();` — the call must end the statement.
    if !text[after..].trim_start().starts_with(';') {
        return None;
    }
    let mut rest = rest;
    if let Some(stripped) = rest.strip_prefix("mut ") {
        rest = stripped.trim_start();
    }
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name == "_" {
        None
    } else {
        Some((name, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::base_type;

    #[test]
    fn base_type_survives_closure_params() {
        // A closure-typed parameter clipped at its generics' top-level
        // comma: the last `>` in the string is the `->` arrow, *before*
        // the `<`. Must not slice backwards (panic), must not resolve.
        assert_eq!(base_type("impl FnMut() -> Result<T"), None);
        assert_eq!(base_type("impl FnOnce() -> u64"), None);
        // Sanity: the usual shapes still resolve.
        assert_eq!(base_type("&Arc<StorageArea>"), Some("StorageArea".into()));
        assert_eq!(base_type("Result<T, E>"), Some("Result".into()));
    }
}
