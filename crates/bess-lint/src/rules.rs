//! The eight workspace invariants, as substring-level scans over masked
//! source (see [`crate::lexer`]).
//!
//! 1. `unsafe` requires an immediately preceding `// SAFETY:` comment.
//! 2. `unwrap()` / `expect(` / `panic!` in non-test code must be annotated
//!    `// LINT: allow(panic) — reason` or stay within the per-file
//!    grandfather baseline.
//! 3. Locks declared in `lock_order.toml` must be acquired in strictly
//!    ascending rank order within each function (see [`crate::summary`]).
//! 4. Narrowing `as` casts on page/LSN/offset/extent arithmetic must use
//!    `try_into`/`try_from` or carry a `// LINT: allow(cast) — reason`.
//! 5. Bare `AtomicU64` declarations outside `bess-obs` must carry a
//!    `// LINT: allow(raw-counter) — reason` — counters belong in the
//!    metrics registry, where snapshots and exposition can see them.
//! 6. Lock-order, interprocedurally: a call chain that may acquire a rank
//!    at or below one already held is an inversion no matter how many
//!    functions (or crates) separate the two acquisitions
//!    (see [`crate::callgraph`]).
//! 7. No blocking under an ordered lock: device I/O, condvar waits,
//!    channel `recv`, and `thread::sleep` must not run while an
//!    OrderedMutex/OrderedRwLock guard is live, directly or through any
//!    call chain — baseline-able via `[blocking]` in `lint_baseline.toml`
//!    or `// LINT: allow(blocking-under-lock) — reason`.
//! 8. Ordered guards stay local: a guard that is returned or stored
//!    escapes static rank tracking and must carry a
//!    `// LINT: allow(guard-escape) — reason`.

use std::collections::HashMap;

use crate::config::LockOrder;
use crate::lexer::{is_ident, Masked};
use crate::Violation;

/// Per-file context shared by the rules: the masked text plus line lookup
/// tables built once.
pub struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    pub file: &'a str,
    /// Masked source (same line structure as the original).
    pub masked: &'a Masked,
    /// Byte offset of the start of each line of the masked text.
    line_starts: Vec<usize>,
    /// Comment text concatenated per starting line.
    comments_by_line: HashMap<usize, String>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(usize, usize)>,
}

impl<'a> FileCtx<'a> {
    /// Builds the lookup tables for one masked file.
    pub fn new(file: &'a str, masked: &'a Masked) -> Self {
        let mut line_starts = vec![0usize];
        for (i, b) in masked.text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut comments_by_line: HashMap<usize, String> = HashMap::new();
        for c in &masked.comments {
            comments_by_line.entry(c.line).or_default().push_str(&c.text);
        }
        let test_ranges = test_item_ranges(&masked.text, &line_starts);
        FileCtx { file, masked, line_starts, comments_by_line, test_ranges }
    }

    /// 1-based line of a byte offset into the masked text.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_item(&self, line: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| line >= a && line <= b)
    }

    /// The annotation comment covering `line`: a trailing comment on the
    /// same line or a comment on the line directly above.
    pub(crate) fn annotation(&self, line: usize, marker: &str) -> Option<&str> {
        for l in [line, line.saturating_sub(1)] {
            if l == 0 {
                continue;
            }
            if let Some(text) = self.comments_by_line.get(&l) {
                if text.contains(marker) {
                    return Some(text);
                }
            }
        }
        None
    }

    fn violation(&self, offset: usize, rule: &'static str, message: String) -> Violation {
        Violation { file: self.file.to_string(), line: self.line_of(offset), rule, message }
    }
}

/// Line ranges of items guarded by `#[cfg(test)]` (typically `mod tests`).
fn test_item_ranges(text: &str, line_starts: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(rel) = text[pos..].find("#[cfg(test)]") {
        let attr = pos + rel;
        let after = attr + "#[cfg(test)]".len();
        // The guarded item runs to the matching brace of the first `{`
        // after the attribute (or to end of line for brace-less items).
        let (start_line, end_line) = match text[after..].find(['{', ';']) {
            Some(d) if text.as_bytes()[after + d] == b'{' => {
                let open = after + d;
                let close = match_brace(text, open);
                (line_no(line_starts, attr), line_no(line_starts, close))
            }
            _ => (line_no(line_starts, attr), line_no(line_starts, after)),
        };
        out.push((start_line, end_line));
        pos = after;
    }
    out
}

fn line_no(line_starts: &[usize], offset: usize) -> usize {
    match line_starts.binary_search(&offset) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

/// Byte offset just past the brace matching the `{` at `open` (masked text,
/// so literal braces cannot confuse the count).
pub(crate) fn match_brace(text: &str, open: usize) -> usize {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    bytes.len()
}

/// Finds the next word-boundary occurrence of `word` at or after `from`.
pub(crate) fn find_word(text: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut pos = from;
    while let Some(rel) = text[pos..].find(word) {
        let at = pos + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            return Some(at);
        }
        pos = at + word.len();
    }
    None
}

/// Checks that an annotation carries a non-empty reason after the marker,
/// e.g. `// LINT: allow(panic) — guarded by the assert above`.
pub(crate) fn annotation_reason_ok(text: &str, marker: &str) -> bool {
    match text.find(marker) {
        Some(at) => {
            let rest = text[at + marker.len()..]
                .trim_start_matches([' ', '\t', '—', '-', ':', '.']);
            rest.chars().filter(|c| c.is_alphanumeric()).count() >= 3
        }
        None => false,
    }
}

// ---------------------------------------------------------------------------
// Rule 1: unsafe requires // SAFETY:
// ---------------------------------------------------------------------------

/// Every `unsafe` keyword must be immediately preceded by a comment block
/// containing `SAFETY:`. Applies to all code, tests included.
pub fn check_unsafe(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut pos = 0;
    while let Some(at) = find_word(&ctx.masked.text, "unsafe", pos) {
        pos = at + "unsafe".len();
        let line = ctx.line_of(at);
        // Accept SAFETY: on the same line or on the contiguous comment
        // block directly above.
        let mut ok = ctx
            .comments_by_line
            .get(&line)
            .map(|t| t.contains("SAFETY:"))
            .unwrap_or(false);
        let mut l = line.saturating_sub(1);
        while !ok && l > 0 {
            match ctx.comments_by_line.get(&l) {
                Some(text) => {
                    if text.contains("SAFETY:") {
                        ok = true;
                    }
                    l -= 1;
                }
                None => break,
            }
        }
        if !ok {
            out.push(ctx.violation(
                at,
                "unsafe-comment",
                "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 2: panic sites
// ---------------------------------------------------------------------------

/// An unannotated panic site found in non-test code.
#[derive(Debug)]
pub struct PanicSite {
    /// 1-based line.
    pub line: usize,
    /// Which construct was found.
    pub what: &'static str,
}

/// Finds `unwrap()` / `expect(` / `panic!` sites outside test code.
/// Sites annotated `// LINT: allow(panic) — reason` are exempt; annotations
/// without a reason are reported as violations outright.
pub fn panic_sites(ctx: &FileCtx) -> (Vec<PanicSite>, Vec<Violation>) {
    let mut sites = Vec::new();
    let mut violations = Vec::new();
    let text = &ctx.masked.text;
    for (token, what, word_boundary) in [
        (".unwrap()", "unwrap()", false),
        (".expect(", "expect()", false),
        ("panic!", "panic!", true),
    ] {
        let mut pos = 0;
        while let Some(rel) = text[pos..].find(token) {
            let at = pos + rel;
            pos = at + token.len();
            if word_boundary {
                // Skip e.g. `core::panic!` is fine ( `:` is a boundary), but
                // `debug_panic!` is not this macro.
                let before = at.checked_sub(1).map(|i| text.as_bytes()[i] as char);
                if before.map(is_ident).unwrap_or(false) {
                    continue;
                }
            }
            let line = ctx.line_of(at);
            if ctx.in_test_item(line) {
                continue;
            }
            match ctx.annotation(line, "LINT: allow(panic)") {
                Some(comment) => {
                    if !annotation_reason_ok(comment, "LINT: allow(panic)") {
                        violations.push(ctx.violation(
                            at,
                            "panic",
                            "`LINT: allow(panic)` annotation is missing a reason".into(),
                        ));
                    }
                }
                None => sites.push(PanicSite { line, what }),
            }
        }
    }
    (sites, violations)
}

// ---------------------------------------------------------------------------
// Rule 3: lock acquisition order
// ---------------------------------------------------------------------------

/// Checks that, within each function, locks registered in `lock_order.toml`
/// for this file are acquired in strictly ascending rank order. Guard
/// bindings — plain `let g = recv.lock();`, tuple-destructured
/// `let (a, b) = ...`, and `if let Some(g) = recv.try_lock()` — hold their
/// rank until `drop(g)` or the end of their scope.
///
/// This is a thin wrapper over [`crate::summary::summarize`], which also
/// feeds the interprocedural pass; it exists so the intra-function rule can
/// be exercised on fixtures in isolation.
pub fn check_lock_order(ctx: &FileCtx, cfg: &LockOrder) -> Vec<Violation> {
    let summary = crate::summary::summarize(ctx, cfg, false);
    summary.violations.into_iter().filter(|v| v.rule == "lock-order").collect()
}

// ---------------------------------------------------------------------------
// Rule 4: narrowing casts on page/LSN/offset arithmetic
// ---------------------------------------------------------------------------

const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
const HOT_TOKENS: [&str; 4] = ["page", "lsn", "off", "extent"];

/// Flags bare `as` narrowing casts on lines mentioning page/LSN/offset/
/// extent quantities. `try_from`/`try_into` or an annotated cast pass.
pub fn check_casts(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    let text = &ctx.masked.text;
    let mut pos = 0;
    while let Some(at) = find_word(text, "as", pos) {
        pos = at + 2;
        let target: String = text[pos..]
            .trim_start()
            .chars()
            .take_while(|&c| is_ident(c))
            .collect();
        if !NARROW.contains(&target.as_str()) {
            continue;
        }
        let line = ctx.line_of(at);
        if ctx.in_test_item(line) {
            continue;
        }
        let line_start = ctx.line_starts[line - 1];
        let line_end = text[line_start..].find('\n').map(|d| line_start + d).unwrap_or(text.len());
        let lower = text[line_start..line_end].to_ascii_lowercase();
        if !HOT_TOKENS.iter().any(|t| lower.contains(t)) {
            continue;
        }
        match ctx.annotation(line, "LINT: allow(cast)") {
            Some(comment) => {
                if !annotation_reason_ok(comment, "LINT: allow(cast)") {
                    out.push(ctx.violation(
                        at,
                        "cast",
                        "`LINT: allow(cast)` annotation is missing a reason".into(),
                    ));
                }
            }
            None => out.push(ctx.violation(
                at,
                "cast",
                format!(
                    "bare `as {target}` narrowing cast on page/LSN/offset arithmetic; \
                     use `try_from`/`try_into`, a typed helper, or annotate \
                     `// LINT: allow(cast) — reason`"
                ),
            )),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule 5: raw AtomicU64 counters outside bess-obs
// ---------------------------------------------------------------------------

/// Flags `AtomicU64` in type position (a field, static, or parameter
/// declaration) outside `bess-obs` and test code. A raw atomic counter is
/// invisible to [`Registry::snapshot`]-style exposition; product metrics
/// belong in `bess_obs::Counter`. Non-metric uses (ID allocators,
/// fault-plan bookkeeping) stay, annotated
/// `// LINT: allow(raw-counter) — reason`.
pub fn check_raw_counters(ctx: &FileCtx) -> Vec<Violation> {
    let mut out = Vec::new();
    let text = &ctx.masked.text;
    let bytes = text.as_bytes();
    let mut pos = 0;
    while let Some(at) = find_word(text, "AtomicU64", pos) {
        pos = at + "AtomicU64".len();
        // `AtomicU64::new(...)` and other associated calls are initialiser
        // expressions, not declarations; the matching type position on the
        // same statement is what gets flagged.
        if text[pos..].trim_start().starts_with("::") {
            continue;
        }
        let line = ctx.line_of(at);
        if ctx.in_test_item(line) {
            continue;
        }
        // Skip imports (`use std::sync::atomic::AtomicU64;`).
        let line_start = ctx.line_starts[line - 1];
        if text[line_start..at].trim_start().starts_with("use ") {
            continue;
        }
        // Only type positions: the previous non-whitespace run must end in
        // `:`, `<`, `[`, `&`, or `(` — a declaration, generic argument, or
        // parameter, possibly `::`-qualified.
        let mut i = at;
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        // Walk back over a `path::` qualifier to the introducing token.
        loop {
            while i > 0 && is_ident(bytes[i - 1] as char) {
                i -= 1;
            }
            if i >= 2 && &text[i - 2..i] == "::" {
                i -= 2;
            } else {
                break;
            }
        }
        while i > 0 && (bytes[i - 1] as char).is_whitespace() {
            i -= 1;
        }
        if i == 0 || !matches!(bytes[i - 1], b':' | b'<' | b'[' | b'&' | b'(') {
            continue;
        }
        match ctx.annotation(line, "LINT: allow(raw-counter)") {
            Some(comment) => {
                if !annotation_reason_ok(comment, "LINT: allow(raw-counter)") {
                    out.push(ctx.violation(
                        at,
                        "raw-counter",
                        "`LINT: allow(raw-counter)` annotation is missing a reason".into(),
                    ));
                }
            }
            None => out.push(ctx.violation(
                at,
                "raw-counter",
                "bare `AtomicU64` declaration outside bess-obs; use a registered \
                 `bess_obs::Counter` so snapshots and exposition can see it, or \
                 annotate `// LINT: allow(raw-counter) — reason` for non-metric \
                 uses (ID allocators, fault-plan bookkeeping)"
                    .into(),
            )),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rank table sync: lock_order.toml <-> bess-lock's Rank enum
// ---------------------------------------------------------------------------

/// Parses `pub enum Rank { Name = N, ... }` out of bess-lock's `order.rs`
/// and cross-checks it against the `[ranks]` table.
pub fn check_rank_sync(order_rs: &FileCtx, cfg: &LockOrder) -> Vec<Violation> {
    let text = &order_rs.masked.text;
    let mut out = Vec::new();
    let Some(enum_at) = text.find("enum Rank") else {
        out.push(Violation {
            file: order_rs.file.to_string(),
            line: 1,
            rule: "rank-sync",
            message: "could not find `enum Rank` in bess-lock/src/order.rs".into(),
        });
        return out;
    };
    let Some(open_rel) = text[enum_at..].find('{') else {
        return out;
    };
    let open = enum_at + open_rel;
    let close = match_brace(text, open);
    let body = &text[open + 1..close];

    let mut enum_ranks: Vec<(String, u16)> = Vec::new();
    for part in body.split(',') {
        let part = part.trim();
        if let Some((name, value)) = part.rsplit_once('=') {
            let name = name.trim();
            if let Ok(v) = value.trim().parse::<u16>() {
                if !name.is_empty() && name.chars().all(is_ident) {
                    enum_ranks.push((name.to_string(), v));
                }
            }
        }
    }

    for (name, value) in &enum_ranks {
        match cfg.rank_value(name) {
            None => out.push(Violation {
                file: "lock_order.toml".into(),
                line: 1,
                rule: "rank-sync",
                message: format!("Rank::{name} (= {value}) is missing from [ranks]"),
            }),
            Some(v) if v != *value => out.push(Violation {
                file: "lock_order.toml".into(),
                line: 1,
                rule: "rank-sync",
                message: format!("[ranks] {name} = {v} but Rank::{name} = {value} in order.rs"),
            }),
            _ => {}
        }
    }
    for (name, value) in &cfg.ranks {
        if !enum_ranks.iter().any(|(n, _)| n == name) {
            out.push(Violation {
                file: "lock_order.toml".into(),
                line: 1,
                rule: "rank-sync",
                message: format!("[ranks] declares {name} = {value} but Rank has no such variant"),
            });
        }
    }
    for decl in &cfg.locks {
        if !cfg.ranks.iter().any(|(_, v)| *v == decl.rank) {
            out.push(Violation {
                file: "lock_order.toml".into(),
                line: 1,
                rule: "rank-sync",
                message: format!(
                    "[[lock]] {}:{} uses rank {} which is not in [ranks]",
                    decl.file, decl.recv, decl.rank
                ),
            });
        }
    }
    out
}
