//! CLI entry point: `cargo run -p bess-lint [-- --update-baseline] [root]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 configuration error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut update_baseline = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                println!("usage: bess-lint [--update-baseline] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| {
        // Prefer the current directory when it looks like the workspace
        // root (the normal `cargo run -p bess-lint` case); fall back to
        // the compile-time manifest location.
        let cwd = PathBuf::from(".");
        if cwd.join(bess_lint::LOCK_ORDER_FILE).exists() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
        }
    });

    match bess_lint::lint_workspace(&root, update_baseline) {
        Ok(report) => {
            for v in &report.violations {
                println!("{v}");
            }
            println!(
                "bess-lint: {} file(s) scanned, {} function(s), {} call edge(s), \
                 {} violation(s), {} grandfathered panic site(s)",
                report.files_scanned,
                report.functions,
                report.call_edges,
                report.violations.len(),
                report.panic_total
            );
            if report.violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("bess-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
