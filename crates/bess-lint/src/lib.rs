//! Offline static-analysis checks for the BeSS workspace.
//!
//! `cargo run -p bess-lint` walks every `.rs` file under `crates/` and
//! enforces eight invariants (see [`rules`]): SAFETY comments on `unsafe`,
//! a shrinking baseline of panic sites, the declared lock-acquisition
//! hierarchy of `lock_order.toml` (both within each function and across
//! arbitrary call chains), no blocking operations while an ordered guard
//! is held, no ordered guards escaping their function, no bare narrowing
//! casts on page/LSN/offset arithmetic, and no unregistered raw
//! `AtomicU64` counters outside `bess-obs`. It is pure `std` — no proc
//! macros, no syn — so it runs offline and builds in well under a second.
//!
//! The interprocedural half works in two passes: [`summary`] computes a
//! per-function lock summary (acquisitions, call sites with held-guard
//! sets, blocking operations, escapes) in a single scan per file, then
//! [`callgraph`] resolves call sites across the workspace and propagates
//! the summaries to a fixpoint, reporting inversions and blocking calls
//! with the full call chain (DESIGN.md §15).
//!
//! The static lock-order rule is the compile-time half of a pair: the
//! `cfg(debug_assertions)` runtime validator in `bess_lock::order` (and
//! the ThreadSanitizer CI job) catch whatever the static approximation
//! cannot — dynamic dispatch, function pointers, data races outside the
//! ordered-lock API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod rules;
pub mod summary;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One finding, printed as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier.
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// The outcome of a whole-tree lint run.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by file then line.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Total unannotated panic sites in non-test code (baseline or not).
    pub panic_total: usize,
    /// Number of functions in the interprocedural call graph.
    pub functions: usize,
    /// Number of resolved call edges in the graph.
    pub call_edges: usize,
}

/// Name of the lock-hierarchy declaration file at the workspace root.
pub const LOCK_ORDER_FILE: &str = "lock_order.toml";
/// Name of the grandfathered-panic baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint_baseline.toml";

/// Lints the workspace rooted at `root`. With `update_baseline`, rewrites
/// the panic baseline to the current counts instead of reporting overages.
pub fn lint_workspace(root: &Path, update_baseline: bool) -> Result<LintReport, String> {
    let cfg_path = root.join(LOCK_ORDER_FILE);
    let cfg_text = fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = config::parse_lock_order(&cfg_text)?;

    let baseline = match fs::read_to_string(root.join(BASELINE_FILE)) {
        Ok(text) => config::parse_baseline(&text)?,
        Err(_) => config::Baseline::default(),
    };

    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    let mut panic_counts: Vec<(String, usize)> = Vec::new();
    let mut panic_total = 0usize;
    let mut seen_order_rs = false;
    let mut scanned_rel: Vec<String> = Vec::new();
    let mut summaries: Vec<summary::FileSummary> = Vec::new();

    for path in &files {
        let rel = rel_path(root, path);
        let source = fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let masked = lexer::mask(&source);
        let ctx = rules::FileCtx::new(&rel, &masked);

        violations.extend(rules::check_unsafe(&ctx));
        // Intra-function lock order, guard escapes, and direct blocking
        // sites, plus the call-graph inputs for the second pass.
        let file_summary = summary::summarize(&ctx, &cfg, is_test_context(&rel));
        violations.extend(file_summary.violations.iter().cloned());

        if !is_test_context(&rel) {
            let (sites, annotation_violations) = rules::panic_sites(&ctx);
            violations.extend(annotation_violations);
            violations.extend(rules::check_casts(&ctx));
            if !rel.starts_with("crates/bess-obs/") {
                violations.extend(rules::check_raw_counters(&ctx));
            }
            panic_total += sites.len();
            if !sites.is_empty() {
                let allowed = baseline.panics_for(&rel);
                if sites.len() > allowed && !update_baseline {
                    let first = &sites[0];
                    violations.push(Violation {
                        file: rel.clone(),
                        line: first.line,
                        rule: "panic",
                        message: format!(
                            "{} unannotated panic/unwrap/expect sites (baseline allows {}); \
                             first is a {} on this line — convert to a typed error or \
                             annotate `// LINT: allow(panic) — reason`",
                            sites.len(),
                            allowed,
                            first.what
                        ),
                    });
                }
                panic_counts.push((rel.clone(), sites.len()));
            }
        }

        if rel == "crates/bess-lock/src/order.rs" {
            seen_order_rs = true;
            violations.extend(rules::check_rank_sync(&ctx, &cfg));
        }
        scanned_rel.push(rel);
        summaries.push(file_summary);
    }

    // Second pass: the interprocedural fixpoint over all summaries.
    let graph = callgraph::check_workspace(&summaries);
    violations.extend(graph.lock_order);

    // Blocking-under-lock findings (direct + chained) gate per file
    // against the `[blocking]` baseline.
    let mut blocking_by_file: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for v in summaries
        .iter()
        .flat_map(|s| s.blocking.iter().cloned())
        .chain(graph.blocking)
    {
        blocking_by_file.entry(v.file.clone()).or_default().push(v);
    }
    let mut blocking_counts: Vec<(String, usize)> = Vec::new();
    for (file, found) in blocking_by_file {
        let allowed = baseline.blocking_for(&file);
        let count = found.len();
        if count > allowed && !update_baseline {
            violations.extend(found);
        }
        blocking_counts.push((file, count));
    }

    if !seen_order_rs {
        violations.push(Violation {
            file: "crates/bess-lock/src/order.rs".into(),
            line: 1,
            rule: "rank-sync",
            message: "expected the Rank enum definition here; file not found".into(),
        });
    }
    for decl in &cfg.locks {
        if !scanned_rel.iter().any(|f| f == &decl.file) {
            violations.push(Violation {
                file: LOCK_ORDER_FILE.into(),
                line: 1,
                rule: "lock-order",
                message: format!(
                    "[[lock]] entry for {}:{} points at a file that was not scanned",
                    decl.file, decl.recv
                ),
            });
        }
    }

    if update_baseline {
        let rendered = config::render_baseline(&config::Baseline {
            panics: panic_counts,
            blocking: blocking_counts,
        });
        fs::write(root.join(BASELINE_FILE), rendered)
            .map_err(|e| format!("cannot write {BASELINE_FILE}: {e}"))?;
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintReport {
        violations,
        files_scanned: files.len(),
        panic_total,
        functions: graph.functions,
        call_edges: graph.call_edges,
    })
}

/// Crates whose non-test code is still exempt from the panic/cast rules:
/// test harnesses and benchmarks.
fn is_test_context(rel: &str) -> bool {
    rel.contains("/tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("crates/bess-bench/")
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Recursively collects `.rs` files, skipping build output and the lint's
/// own intentionally-bad fixtures.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("readdir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
