//! Comment- and literal-aware masking of Rust source.
//!
//! The lint rules are plain substring scans, so they must never see a
//! `panic!` inside a doc comment or a `".lock()"` inside a string literal.
//! [`mask`] produces a copy of the source in which comment bodies and
//! string/char literal contents are blanked out with spaces while newlines
//! are preserved, so every byte offset in the masked text is on the same
//! line as in the original. Comments are collected separately (with their
//! starting line) so annotation rules (`// SAFETY:`, `// LINT: allow(...)`)
//! can still read them.

/// A comment extracted from the source.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: usize,
    /// Full comment text, including the `//` or `/* */` introducer.
    pub text: String,
}

/// The result of masking one source file.
#[derive(Debug)]
pub struct Masked {
    /// Source with comments and literal contents replaced by spaces.
    pub text: String,
    /// All comments, in order of appearance.
    pub comments: Vec<Comment>,
}

/// Blanks out comments and literal contents, preserving line structure.
pub fn mask(src: &str) -> Masked {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = String::with_capacity(src.len());
    let mut comments = Vec::new();
    let mut i = 0;
    let mut line = 1usize;

    // Emits one masked character, keeping newlines so lines stay aligned.
    macro_rules! blank {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
                out.push('\n');
            } else {
                out.push(' ');
            }
        };
    }

    while i < n {
        let c = b[i];

        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start_line = line;
            let mut text = String::new();
            while i < n && b[i] != '\n' {
                text.push(b[i]);
                out.push(' ');
                i += 1;
            }
            comments.push(Comment { line: start_line, text });
            continue;
        }

        // Block comment (nestable).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let mut text = String::new();
            let mut depth = 0usize;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    text.push_str("/*");
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth = depth.saturating_sub(1);
                    text.push_str("*/");
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(b[i]);
                    blank!(b[i]);
                    i += 1;
                }
            }
            comments.push(Comment { line: start_line, text });
            continue;
        }

        // Raw string: r"..." / r#"..."# (optionally with a leading b).
        if (c == 'r' || (c == 'b' && i + 1 < n && b[i + 1] == 'r'))
            && (i == 0 || !is_ident(b[i - 1]))
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                // Emit the introducer as-is (it contains no newlines).
                out.extend(&b[i..=j]);
                i = j + 1;
                // Consume until `"` followed by `hashes` hashes.
                while i < n {
                    if b[i] == '"' {
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while k < n && seen < hashes && b[k] == '#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i = k;
                            break;
                        }
                    }
                    blank!(b[i]);
                    i += 1;
                }
                continue;
            }
            // Not actually a raw string; fall through as a normal char.
        }

        // Plain (or byte) string literal. A leading `b` passes through the
        // normal-character path and this branch handles the quote.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    blank!(b[i + 1]);
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                blank!(b[i]);
                i += 1;
            }
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if i + 1 < n && b[i + 1] == '\\' {
                // Escaped char literal: consume through the closing quote.
                out.push('\'');
                i += 1;
                while i < n && b[i] != '\'' {
                    blank!(b[i]);
                    i += 1;
                }
                if i < n {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                // Simple char literal like 'x'.
                out.push('\'');
                blank!(b[i + 1]);
                out.push('\'');
                i += 3;
                continue;
            }
            // Lifetime: keep the tick, continue normally.
            out.push('\'');
            i += 1;
            continue;
        }

        if c == '\n' {
            line += 1;
        }
        out.push(c);
        i += 1;
    }

    Masked { text: out, comments }
}

/// Whether `c` can be part of an identifier.
pub fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let a = \"panic!\"; // unsafe note\nlet b = 1;\n";
        let m = mask(src);
        assert!(!m.text.contains("panic!"));
        assert!(!m.text.contains("unsafe"));
        assert!(m.text.contains("let b = 1;"));
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].line, 1);
        assert!(m.comments[0].text.contains("unsafe note"));
    }

    #[test]
    fn preserves_line_numbers() {
        let src = "/* multi\nline\ncomment */\nfn f() {}\n";
        let m = mask(src);
        let lines: Vec<&str> = m.text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[3].contains("fn f()"));
        assert_eq!(m.comments[0].line, 1);
    }

    #[test]
    fn raw_strings_and_chars() {
        let src = "let s = r#\"unsafe \" here\"#; let c = 'x'; let lt: &'a str = s;\n";
        let m = mask(src);
        assert!(!m.text.contains("unsafe"));
        assert!(m.text.contains("let c ="));
        assert!(m.text.contains("&'a str"));
    }
}
