//! Hand-rolled parsers for the two lint data files.
//!
//! Both `lock_order.toml` and `lint_baseline.toml` use a deliberately tiny
//! TOML subset — `[section]`, `[[array-of-tables]]`, and `key = value`
//! lines where a value is either an integer or a double-quoted string —
//! so the lint stays dependency-free.

/// One declared lock site: the mutex/rwlock field `recv` in `file` holds
/// hierarchy rank `rank`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDecl {
    /// Workspace-relative path (forward slashes) of the file.
    pub file: String,
    /// Receiver name as it appears before `.lock()` / `.read()` / `.write()`.
    pub recv: String,
    /// Rank from the `[ranks]` table.
    pub rank: u16,
}

/// Parsed contents of `lock_order.toml`.
#[derive(Debug, Clone, Default)]
pub struct LockOrder {
    /// The declared hierarchy: `Rank` variant name -> numeric rank.
    pub ranks: Vec<(String, u16)>,
    /// All declared lock sites.
    pub locks: Vec<LockDecl>,
}

impl LockOrder {
    /// Numeric rank for a variant name, if declared.
    pub fn rank_value(&self, name: &str) -> Option<u16> {
        self.ranks.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

enum Section {
    None,
    Ranks,
    Lock,
}

/// Parses `lock_order.toml`.
pub fn parse_lock_order(text: &str) -> Result<LockOrder, String> {
    let mut out = LockOrder::default();
    let mut section = Section::None;
    // The [[lock]] entry currently being filled.
    let mut cur: Option<(Option<String>, Option<String>, Option<u16>)> = None;

    let finish = |cur: &mut Option<(Option<String>, Option<String>, Option<u16>)>,
                      locks: &mut Vec<LockDecl>|
     -> Result<(), String> {
        if let Some((file, recv, rank)) = cur.take() {
            match (file, recv, rank) {
                (Some(file), Some(recv), Some(rank)) => {
                    locks.push(LockDecl { file, recv, rank });
                    Ok(())
                }
                _ => Err("[[lock]] entry missing file, recv, or rank".into()),
            }
        } else {
            Ok(())
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("lock_order.toml:{}: {}", idx + 1, msg);
        if line == "[[lock]]" {
            finish(&mut cur, &mut out.locks).map_err(|e| err(&e))?;
            section = Section::Lock;
            cur = Some((None, None, None));
            continue;
        }
        if line == "[ranks]" {
            finish(&mut cur, &mut out.locks).map_err(|e| err(&e))?;
            section = Section::Ranks;
            continue;
        }
        if line.starts_with('[') {
            return Err(err("unknown section"));
        }
        let (key, value) = split_kv(line).ok_or_else(|| err("expected `key = value`"))?;
        match section {
            Section::None => return Err(err("key outside a section")),
            Section::Ranks => {
                let v = parse_int(value).ok_or_else(|| err("rank must be an integer"))?;
                out.ranks.push((key.to_string(), v));
            }
            Section::Lock => {
                let entry = cur.as_mut().ok_or_else(|| err("key outside [[lock]]"))?;
                match key {
                    "file" => {
                        entry.0 =
                            Some(parse_str(value).ok_or_else(|| err("file must be a string"))?)
                    }
                    "recv" => {
                        entry.1 =
                            Some(parse_str(value).ok_or_else(|| err("recv must be a string"))?)
                    }
                    "rank" => {
                        entry.2 = Some(parse_int(value).ok_or_else(|| err("rank must be an integer"))?)
                    }
                    other => return Err(err(&format!("unknown [[lock]] key `{other}`"))),
                }
            }
        }
    }
    finish(&mut cur, &mut out.locks)?;
    if out.ranks.is_empty() {
        return Err("lock_order.toml declares no [ranks]".into());
    }
    Ok(out)
}

/// Parsed contents of `lint_baseline.toml`: per-file grandfather counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `[panics]`: unannotated panic/unwrap/expect sites allowed per file.
    pub panics: Vec<(String, usize)>,
    /// `[blocking]`: unannotated blocking-under-lock findings allowed per
    /// file (prefer `LINT: allow(blocking-under-lock)` annotations; this
    /// section exists for sites the annotation cannot reach, e.g. findings
    /// attributed to call sites in generated or churn-heavy code).
    pub blocking: Vec<(String, usize)>,
}

impl Baseline {
    fn count_in(entries: &[(String, usize)], file: &str) -> usize {
        entries.iter().find(|(f, _)| f == file).map(|&(_, c)| c).unwrap_or(0)
    }

    /// Grandfathered panic-site count for `file`.
    pub fn panics_for(&self, file: &str) -> usize {
        Self::count_in(&self.panics, file)
    }

    /// Grandfathered blocking-under-lock count for `file`.
    pub fn blocking_for(&self, file: &str) -> usize {
        Self::count_in(&self.blocking, file)
    }
}

/// Parses `lint_baseline.toml` (sections `[panics]` and `[blocking]`,
/// lines `"file" = count`). A missing file is represented by the caller as
/// an empty baseline.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let mut out = Baseline::default();
    let mut section: Option<bool> = None; // Some(true) = panics, Some(false) = blocking
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: &str| format!("lint_baseline.toml:{}: {}", idx + 1, msg);
        if line == "[panics]" {
            section = Some(true);
            continue;
        }
        if line == "[blocking]" {
            section = Some(false);
            continue;
        }
        if line.starts_with('[') {
            return Err(err("unknown section"));
        }
        let Some(is_panics) = section else {
            return Err(err("key outside [panics]/[blocking]"));
        };
        let (key, value) = split_kv(line).ok_or_else(|| err("expected `\"file\" = count`"))?;
        let file = parse_str(key).ok_or_else(|| err("file key must be quoted"))?;
        let count = parse_int(value).ok_or_else(|| err("count must be an integer"))? as usize;
        if is_panics {
            out.panics.push((file, count));
        } else {
            out.blocking.push((file, count));
        }
    }
    Ok(out)
}

/// Renders the baseline file, sorted by path for stable diffs.
pub fn render_baseline(baseline: &Baseline) -> String {
    let mut out = String::from(
        "# Grandfathered lint findings per file, maintained by\n\
         # `cargo run -p bess-lint -- --update-baseline`. Counts may only go\n\
         # down: new panic sites need a `// LINT: allow(panic) — reason`\n\
         # annotation or a typed error instead, and new blocking-under-lock\n\
         # sites need `// LINT: allow(blocking-under-lock) — reason`.\n\n[panics]\n",
    );
    let render = |out: &mut String, entries: &[(String, usize)]| {
        let mut sorted: Vec<&(String, usize)> = entries.iter().filter(|(_, c)| *c > 0).collect();
        sorted.sort();
        for (file, count) in sorted {
            out.push_str(&format!("\"{file}\" = {count}\n"));
        }
    };
    render(&mut out, &baseline.panics);
    out.push_str("\n[blocking]\n");
    render(&mut out, &baseline.blocking);
    out
}

/// Drops a trailing `#` comment (quote-aware).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_kv(line: &str) -> Option<(&str, &str)> {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '=' if !in_str => return Some((line[..i].trim(), line[i + 1..].trim())),
            _ => {}
        }
    }
    None
}

fn parse_int(v: &str) -> Option<u16> {
    v.trim().parse().ok()
}

fn parse_str(v: &str) -> Option<String> {
    let v = v.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Some(v[1..v.len() - 1].to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_lock_order() {
        let cfg = parse_lock_order(
            "# hierarchy\n[ranks]\nA = 10\nB = 20\n\n[[lock]]\nfile = \"src/a.rs\"\nrecv = \"inner\"\nrank = 10\n",
        )
        .unwrap();
        assert_eq!(cfg.ranks, vec![("A".into(), 10), ("B".into(), 20)]);
        assert_eq!(cfg.locks.len(), 1);
        assert_eq!(cfg.locks[0].recv, "inner");
        assert_eq!(cfg.rank_value("B"), Some(20));
    }

    #[test]
    fn rejects_incomplete_lock_entry() {
        let err = parse_lock_order("[ranks]\nA = 1\n[[lock]]\nfile = \"x\"\n").unwrap_err();
        assert!(err.contains("missing"));
    }

    #[test]
    fn baseline_round_trips() {
        let baseline = Baseline {
            panics: vec![("src/b.rs".to_string(), 2), ("src/a.rs".to_string(), 1)],
            blocking: vec![("src/c.rs".to_string(), 3)],
        };
        let text = render_baseline(&baseline);
        let back = parse_baseline(&text).unwrap();
        assert_eq!(back.panics, vec![("src/a.rs".to_string(), 1), ("src/b.rs".to_string(), 2)]);
        assert_eq!(back.blocking, vec![("src/c.rs".to_string(), 3)]);
        assert_eq!(back.panics_for("src/b.rs"), 2);
        assert_eq!(back.blocking_for("src/c.rs"), 3);
        assert_eq!(back.blocking_for("src/a.rs"), 0);
    }
}
