//! Whole-workspace call graph and summary propagation — the
//! interprocedural half of the analysis (DESIGN.md §15).
//!
//! Nodes are the [`crate::summary::FnSummary`]s from every scanned file.
//! Edges come from call-site name resolution:
//!
//! * `Type::method(..)` / `Self::method(..)` → the method on that type;
//! * `self.method(..)` → the method on the enclosing `impl` type;
//! * `self.field.method(..)` / `var.method(..)` / `var.field.method(..)`
//!   → resolved through struct field and local variable types;
//! * anything unresolvable (trait objects, closures, complex receivers)
//!   falls back to **any workspace method of that name**, minus a list of
//!   ubiquitous names (`len`, `get`, `clone`, …) that would connect
//!   everything to everything.
//!
//! Two facts propagate to a fixpoint over the condensed graph:
//!
//! * `min_acquire`: the minimum lock rank a function may acquire,
//!   transitively. A call site holding rank R with a callee whose
//!   `min_acquire ≤ R` is an inversion, no matter the call depth.
//! * `may_block`: the function may reach a lexically blocking operation
//!   (device I/O, condvar wait, `thread::sleep`, channel `recv`). A call
//!   site holding any ordered guard with a blocking callee violates
//!   no-blocking-under-lock.
//!
//! Each fact carries a provenance link ([`Via`]) so diagnostics print the
//! full call chain down to the offending acquisition or blocking call.
//! Facts only ever tighten (rank strictly decreases, blocking flips once),
//! so the fixpoint terminates and provenance links cannot form cycles.

use std::collections::{HashMap, HashSet};

use crate::summary::{CallSite, CallTarget, FileSummary, FnSummary};
use crate::Violation;

/// Method names excluded from the any-callee fallback: they are so common
/// that an unresolved receiver would link the whole workspace into one
/// blob of false positives. Calls to these still resolve through *typed*
/// receivers.
const FALLBACK_EXCLUDE: &[&str] = &[
    "new", "default", "clone", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "drop", "deref",
    "from", "into", "try_from", "try_into", "as_ref", "as_mut", "borrow", "to_string", "to_owned",
    "to_vec", "len", "is_empty", "get", "get_mut", "insert", "remove", "push", "pop", "iter",
    "iter_mut", "into_iter", "next", "contains", "contains_key", "extend", "clear", "drain",
    "retain", "take", "replace", "swap", "min", "max", "map", "filter", "find", "position",
    "count", "sum", "fold", "all", "any", "collect", "join", "split", "starts_with", "ends_with",
    "trim", "parse", "push_str", "chars", "bytes", "value", "name", "label", "id", "index",
    // Atomic operations: `x.load(Ordering::..)` / `x.store(..)` on an
    // untyped receiver must not link to workspace methods that happen to
    // share the name (e.g. a pool's `load`).
    "load", "store", "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "fetch_update", "fetch_max", "fetch_min", "compare_exchange", "compare_exchange_weak",
    // Lock tokens with arguments (`mgr.lock(txn, page, mode)`): an untyped
    // receiver must resolve through its type or not at all — falling back
    // would wire every caller to `LockManager::lock`.
    "lock", "read", "write", "try_lock",
];

/// Provenance of a propagated fact: either this function does the thing
/// directly, or it calls a function that (transitively) does.
#[derive(Debug, Clone)]
enum Via {
    /// The fact originates in this function at `line` (`what` is the lock
    /// receiver or the blocking operation).
    Direct { what: String, line: usize },
    /// The fact flows in from `callee` (node index).
    Call { callee: usize },
}

/// Result of the whole-workspace pass.
pub struct GraphReport {
    /// Interprocedural lock-order inversions.
    pub lock_order: Vec<Violation>,
    /// Interprocedural blocking-under-lock findings (pre-baseline; the
    /// caller merges them with direct findings and applies `[blocking]`).
    pub blocking: Vec<Violation>,
    /// Number of functions in the graph.
    pub functions: usize,
    /// Number of resolved call edges.
    pub call_edges: usize,
}

struct Node<'a> {
    file: &'a str,
    fun: &'a FnSummary,
}

/// Builds the call graph over all file summaries, propagates lock/blocking
/// facts to a fixpoint, and reports violations at the outermost call site
/// where a guard is held.
pub fn check_workspace(files: &[FileSummary]) -> GraphReport {
    let mut nodes: Vec<Node> = Vec::new();
    for fs in files {
        for fun in &fs.fns {
            nodes.push(Node { file: &fs.file, fun });
        }
    }

    // Name/type indexes.
    let mut methods_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut free_by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    let mut by_type_name: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
    let mut workspace_types: HashSet<&str> = HashSet::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.fun.is_method || n.fun.impl_type.is_some() {
            methods_by_name.entry(&n.fun.name).or_default().push(i);
        } else {
            free_by_name.entry(&n.fun.name).or_default().push(i);
        }
        if let Some(ty) = &n.fun.impl_type {
            by_type_name.entry((ty.as_str(), &n.fun.name)).or_default().push(i);
            workspace_types.insert(ty.as_str());
        }
    }
    let mut field_types: HashMap<(&str, &str), &str> = HashMap::new();
    for fs in files {
        for s in &fs.structs {
            workspace_types.insert(&s.name);
            for (fname, fty) in &s.fields {
                field_types.insert((s.name.as_str(), fname.as_str()), fty.as_str());
            }
        }
    }

    // Resolve every call site to candidate node indexes.
    let resolved: Vec<Vec<Vec<usize>>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            n.fun
                .calls
                .iter()
                .map(|c| {
                    resolve(
                        i,
                        n,
                        c,
                        &methods_by_name,
                        &free_by_name,
                        &by_type_name,
                        &field_types,
                        &workspace_types,
                    )
                })
                .collect()
        })
        .collect();
    let call_edges: usize = resolved.iter().flatten().map(Vec::len).sum();

    // Fixpoint: per node, the minimum rank transitively acquirable and
    // whether a blocking operation is transitively reachable.
    let mut min_acq: Vec<Option<(u16, Via)>> = nodes
        .iter()
        .map(|n| {
            n.fun
                .acquires
                .iter()
                .min_by_key(|a| a.rank)
                .map(|a| (a.rank, Via::Direct { what: a.recv.clone(), line: a.line }))
        })
        .collect();
    let mut may_block: Vec<Option<Via>> = nodes
        .iter()
        .map(|n| {
            n.fun
                .blocks
                .first()
                .map(|b| Via::Direct { what: b.what.clone(), line: b.line })
        })
        .collect();

    loop {
        let mut changed = false;
        for (i, n) in nodes.iter().enumerate() {
            for (ci, _call) in n.fun.calls.iter().enumerate() {
                for &t in &resolved[i][ci] {
                    if let Some((trank, _)) = &min_acq[t] {
                        let better = match &min_acq[i] {
                            Some((r, _)) => *trank < *r,
                            None => true,
                        };
                        if better {
                            min_acq[i] = Some((*trank, Via::Call { callee: t }));
                            changed = true;
                        }
                    }
                    if may_block[i].is_none() && may_block[t].is_some() {
                        may_block[i] = Some(Via::Call { callee: t });
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Report at the outermost call site where an ordered guard is held.
    let mut lock_order = Vec::new();
    let mut blocking = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.fun.in_test {
            continue;
        }
        for (ci, call) in n.fun.calls.iter().enumerate() {
            if call.held.is_empty() {
                continue;
            }
            let Some(max_held) = call.held.iter().max_by_key(|h| h.rank) else {
                continue;
            };
            if !call.allow_lock_order {
                // The worst acquisition among this site's candidates.
                let offender = resolved[i][ci]
                    .iter()
                    .filter_map(|&t| min_acq[t].as_ref().map(|(r, _)| (*r, t)))
                    .min();
                if let Some((rank, t)) = offender {
                    if rank <= max_held.rank {
                        let (chain, origin) = describe_chain(&nodes, &min_acq, t, chain_acq);
                        lock_order.push(Violation {
                            file: n.file.to_string(),
                            line: call.line,
                            rule: "lock-order",
                            message: format!(
                                "calling `{}` while `{}` (rank {}, bound as `{}` on line {}) \
                                 is held may acquire `{origin}` (rank {rank}); ranks must \
                                 strictly ascend — call chain: {} -> {chain}",
                                call.name,
                                max_held.recv,
                                max_held.rank,
                                max_held.binding,
                                max_held.line,
                                n.fun.name,
                            ),
                        });
                    }
                }
            }
            if !call.allow_blocking {
                let sink = resolved[i][ci].iter().find(|&&t| may_block[t].is_some());
                if let Some(&t) = sink {
                    let (chain, origin) = describe_chain(&nodes, &may_block, t, chain_block);
                    blocking.push(Violation {
                        file: n.file.to_string(),
                        line: call.line,
                        rule: "blocking-under-lock",
                        message: format!(
                            "calling `{}` while `{}` (rank {}, bound as `{}` on line {}) is \
                             held may block on {origin} — drop ordered guards before blocking \
                             calls or annotate `LINT: allow(blocking-under-lock) — reason`; \
                             call chain: {} -> {chain}",
                            call.name,
                            max_held.recv,
                            max_held.rank,
                            max_held.binding,
                            max_held.line,
                            n.fun.name,
                        ),
                    });
                }
            }
        }
    }

    GraphReport { lock_order, blocking, functions: nodes.len(), call_edges }
}

fn chain_acq(fact: &Option<(u16, Via)>) -> Option<&Via> {
    fact.as_ref().map(|(_, v)| v)
}

fn chain_block(fact: &Option<Via>) -> Option<&Via> {
    fact.as_ref()
}

/// Renders the provenance chain from node `start` down to the originating
/// site: `("middle -> leaf_acquire", "`pool`.lock() at crates/.../leaf.rs:12")`.
fn describe_chain<T>(
    nodes: &[Node],
    facts: &[T],
    start: usize,
    via_of: impl Fn(&T) -> Option<&Via>,
) -> (String, String) {
    let mut names: Vec<&str> = Vec::new();
    let mut seen = HashSet::new();
    let mut cur = start;
    loop {
        if !seen.insert(cur) {
            break;
        }
        names.push(&nodes[cur].fun.name);
        match via_of(&facts[cur]) {
            Some(Via::Call { callee }) => cur = *callee,
            Some(Via::Direct { what, line }) => {
                return (
                    names.join(" -> "),
                    format!("`{what}` at {}:{line}", nodes[cur].file),
                );
            }
            None => break,
        }
    }
    (names.join(" -> "), "<unknown>".to_string())
}

/// Resolves one call site to candidate callee nodes.
#[allow(clippy::too_many_arguments)]
fn resolve(
    node_idx: usize,
    node: &Node,
    call: &CallSite,
    methods_by_name: &HashMap<&str, Vec<usize>>,
    free_by_name: &HashMap<&str, Vec<usize>>,
    by_type_name: &HashMap<(&str, &str), Vec<usize>>,
    field_types: &HashMap<(&str, &str), &str>,
    workspace_types: &HashSet<&str>,
) -> Vec<usize> {
    // `LINT: allow(callgraph)` severs this site from resolution entirely —
    // the documented escape hatch for fallback imprecision.
    if call.allow_callgraph {
        return Vec::new();
    }
    let name = call.name.as_str();
    let fallback = || -> Vec<usize> {
        if FALLBACK_EXCLUDE.contains(&name) {
            return Vec::new();
        }
        // The caller itself never joins its own fallback set: a same-name
        // "recursion" through an unresolved receiver is noise, while real
        // recursion resolves through `self`/typed receivers.
        methods_by_name
            .get(name)
            .map(|ids| ids.iter().copied().filter(|&t| t != node_idx).collect())
            .unwrap_or_default()
    };
    match &call.target {
        CallTarget::Free => free_by_name.get(name).cloned().unwrap_or_default(),
        CallTarget::Qualified { qualifier } => {
            let ty = if qualifier == "Self" {
                node.fun.impl_type.clone()
            } else if qualifier.starts_with(|c: char| c.is_ascii_uppercase()) {
                Some(qualifier.clone())
            } else {
                // Module-qualified free function (`log::replay(..)`).
                return free_by_name.get(name).cloned().unwrap_or_default();
            };
            match ty {
                Some(t) => by_type_name.get(&(t.as_str(), name)).cloned().unwrap_or_default(),
                None => Vec::new(),
            }
        }
        CallTarget::Method { chain, complex } => {
            if *complex || chain.is_empty() || chain.len() > 2 {
                return fallback();
            }
            let root_ty: Option<&str> = if chain[0] == "self" {
                node.fun.impl_type.as_deref()
            } else {
                node.fun.var_types.get(&chain[0]).map(String::as_str)
            };
            let ty: Option<&str> = match (root_ty, chain.len()) {
                (Some(t), 1) if chain[0] == "self" || !chain[0].is_empty() => Some(t),
                (Some(t), 2) => field_types.get(&(t, chain[1].as_str())).copied(),
                _ => None,
            };
            // `self.field.method()` where the field type is unknown: fall
            // back; `var.method()` with an unknown local type: fall back.
            let ty = match ty {
                Some(t) => t,
                None => return fallback(),
            };
            match by_type_name.get(&(ty, name)) {
                Some(ids) => ids.clone(),
                // A known workspace type without this method: the callee is
                // foreign (std, a trait default elsewhere) — assume clean
                // rather than linking to every same-named method.
                None if workspace_types.contains(ty) => Vec::new(),
                None => fallback(),
            }
        }
    }
}
