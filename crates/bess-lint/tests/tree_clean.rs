//! The whole workspace must lint clean: this is the same scan CI runs via
//! `cargo run -p bess-lint`, pointed at the checkout this test compiled
//! from.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = match bess_lint::lint_workspace(&root, false) {
        Ok(r) => r,
        Err(e) => panic!("lint configuration error: {e}"),
    };
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    // The interprocedural pass really ran: the workspace has far more
    // functions and call edges than this floor.
    assert!(report.functions > 500, "suspiciously few functions summarized: {}", report.functions);
    assert!(report.call_edges > 1000, "suspiciously few call edges: {}", report.call_edges);
    let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(
        report.violations.is_empty(),
        "workspace has lint violations:\n{}",
        rendered.join("\n")
    );
}
