//! The lint engine against the intentionally-bad (and intentionally-good)
//! fixture files in `fixtures/`. Fixtures live outside `src/` so they are
//! never compiled and never scanned by the whole-tree walk.

use bess_lint::config::{LockDecl, LockOrder};
use bess_lint::lexer::mask;
use bess_lint::rules::{self, FileCtx};

fn toy_lock_config(file: &str) -> LockOrder {
    LockOrder {
        ranks: vec![("A".into(), 10), ("B".into(), 20)],
        locks: vec![
            LockDecl { file: file.into(), recv: "a".into(), rank: 10 },
            LockDecl { file: file.into(), recv: "b".into(), rank: 20 },
        ],
    }
}

#[test]
fn unsafe_without_safety_comment_is_flagged() {
    let m = mask(include_str!("../fixtures/unsafe_bad.rs"));
    let ctx = FileCtx::new("fixtures/unsafe_bad.rs", &m);
    let v = rules::check_unsafe(&ctx);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "unsafe-comment");
    assert_eq!(v[0].line, 4);
}

#[test]
fn unsafe_with_safety_comment_passes() {
    let m = mask(include_str!("../fixtures/unsafe_ok.rs"));
    let ctx = FileCtx::new("fixtures/unsafe_ok.rs", &m);
    assert!(rules::check_unsafe(&ctx).is_empty());
}

#[test]
fn panic_sites_are_counted_and_bad_annotations_flagged() {
    let m = mask(include_str!("../fixtures/panic_bad.rs"));
    let ctx = FileCtx::new("fixtures/panic_bad.rs", &m);
    let (sites, violations) = rules::panic_sites(&ctx);
    // unwrap in f, expect in g, panic! in h; the reason-less annotation in
    // i exempts the site but is reported as malformed.
    assert_eq!(sites.len(), 3, "{sites:?}");
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].message.contains("missing a reason"));
}

#[test]
fn annotated_and_test_module_panics_pass() {
    let m = mask(include_str!("../fixtures/panic_ok.rs"));
    let ctx = FileCtx::new("fixtures/panic_ok.rs", &m);
    let (sites, violations) = rules::panic_sites(&ctx);
    assert!(sites.is_empty(), "{sites:?}");
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn lock_inversion_is_flagged() {
    let m = mask(include_str!("../fixtures/lock_bad.rs"));
    let ctx = FileCtx::new("fixtures/lock_bad.rs", &m);
    let cfg = toy_lock_config("fixtures/lock_bad.rs");
    let v = rules::check_lock_order(&ctx, &cfg);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].rule, "lock-order");
    assert!(v[0].message.contains("rank 10"), "{}", v[0].message);
    assert!(v[0].message.contains("rank 20"), "{}", v[0].message);
}

#[test]
fn ascending_and_drop_resequenced_locks_pass() {
    let m = mask(include_str!("../fixtures/lock_ok.rs"));
    let ctx = FileCtx::new("fixtures/lock_ok.rs", &m);
    let cfg = toy_lock_config("fixtures/lock_ok.rs");
    let v = rules::check_lock_order(&ctx, &cfg);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn equal_ranks_are_rejected() {
    let src = "fn f(s: &S) { let a = s.a.lock(); let b = s.b.lock(); }\n";
    let m = mask(src);
    let ctx = FileCtx::new("inline.rs", &m);
    let cfg = LockOrder {
        ranks: vec![("A".into(), 10)],
        locks: vec![
            LockDecl { file: "inline.rs".into(), recv: "a".into(), rank: 10 },
            LockDecl { file: "inline.rs".into(), recv: "b".into(), rank: 10 },
        ],
    };
    let v = rules::check_lock_order(&ctx, &cfg);
    assert_eq!(v.len(), 1, "{v:?}");
}

#[test]
fn narrowing_casts_on_page_arithmetic_are_flagged() {
    let m = mask(include_str!("../fixtures/cast_bad.rs"));
    let ctx = FileCtx::new("fixtures/cast_bad.rs", &m);
    let v = rules::check_casts(&ctx);
    assert_eq!(v.len(), 3, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "cast"));
}

#[test]
fn checked_annotated_and_widening_casts_pass() {
    let m = mask(include_str!("../fixtures/cast_ok.rs"));
    let ctx = FileCtx::new("fixtures/cast_ok.rs", &m);
    let v = rules::check_casts(&ctx);
    assert!(v.is_empty(), "{v:?}");
}

#[test]
fn raw_counters_flagged_and_annotations_respected() {
    let m = mask(include_str!("../fixtures/counter_bad.rs"));
    let ctx = FileCtx::new("fixtures/counter_bad.rs", &m);
    let v = rules::check_raw_counters(&ctx);
    // Two bare fields, one bare static, one reason-less annotation; the
    // annotated static, the use, the fetch_add, the constructor calls, and
    // the test-module counter all pass.
    assert_eq!(v.len(), 4, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "raw-counter"));
    assert!(
        v.iter().any(|v| v.message.contains("missing a reason")),
        "{v:?}"
    );
}

#[test]
fn rank_sync_catches_drift() {
    let order_rs = "pub enum Rank {\n    Alpha = 10,\n    Beta = 20,\n}\n";
    let m = mask(order_rs);
    let ctx = FileCtx::new("crates/bess-lock/src/order.rs", &m);
    // Beta disagrees, Gamma is stale, Alpha is fine.
    let cfg = LockOrder {
        ranks: vec![("Alpha".into(), 10), ("Beta".into(), 21), ("Gamma".into(), 30)],
        locks: vec![],
    };
    let v = rules::check_rank_sync(&ctx, &cfg);
    assert_eq!(v.len(), 2, "{v:?}");
}

#[test]
fn tuple_and_if_let_guard_bindings_are_tracked() {
    let file = "fixtures/lock_tuple.rs";
    let m = mask(include_str!("../fixtures/lock_tuple.rs"));
    let ctx = FileCtx::new(file, &m);
    let cfg = LockOrder {
        ranks: vec![("A".into(), 10), ("B".into(), 20), ("C".into(), 30)],
        locks: vec![
            LockDecl { file: file.into(), recv: "a".into(), rank: 10 },
            LockDecl { file: file.into(), recv: "b".into(), rank: 20 },
            LockDecl { file: file.into(), recv: "c".into(), rank: 30 },
        ],
    };
    let v = rules::check_lock_order(&ctx, &cfg);
    // `tuple_inverted` and `if_let_inverted` only; the ascending tuple and
    // the block-scoped `if let` guard must pass.
    assert_eq!(v.len(), 2, "{v:?}");
    assert!(v.iter().all(|v| v.rule == "lock-order"), "{v:?}");
    assert_eq!(v[0].line, 20, "{v:?}");
    assert!(v[0].message.contains("bound as `b`"), "{}", v[0].message);
    assert_eq!(v[1].line, 35, "{v:?}");
    assert!(v[1].message.contains("rank 20"), "{}", v[1].message);
}
