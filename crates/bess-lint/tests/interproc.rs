//! The interprocedural pass against the `interproc_*`, `blocking_*`, and
//! `escape_*` fixtures. Each test builds per-file summaries with fake
//! workspace paths (so "cross-crate" really crosses files), runs the
//! whole-workspace fixpoint, and checks the rendered call chains.

use bess_lint::callgraph;
use bess_lint::config::{LockDecl, LockOrder};
use bess_lint::lexer::mask;
use bess_lint::rules::FileCtx;
use bess_lint::summary::{self, FileSummary};

/// A lock hierarchy from `(file, recv, rank)` triples.
fn cfg(decls: &[(&str, &str, u16)]) -> LockOrder {
    LockOrder {
        ranks: decls.iter().map(|&(_, r, k)| (format!("R{r}"), k)).collect(),
        locks: decls
            .iter()
            .map(|&(f, r, k)| LockDecl { file: f.into(), recv: r.into(), rank: k })
            .collect(),
    }
}

fn summarize(path: &str, src: &str, cfg: &LockOrder) -> FileSummary {
    let m = mask(src);
    let ctx = FileCtx::new(path, &m);
    summary::summarize(&ctx, cfg, false)
}

#[test]
fn three_deep_cross_crate_inversion_reports_full_chain() {
    let c = cfg(&[
        ("crates/fake-wal/src/hold.rs", "state", 40),
        ("crates/fake-storage/src/leaf.rs", "pool", 20),
    ]);
    let files = vec![
        summarize("crates/fake-wal/src/hold.rs", include_str!("../fixtures/interproc_hold.rs"), &c),
        summarize("crates/fake-cache/src/mid.rs", include_str!("../fixtures/interproc_mid.rs"), &c),
        summarize(
            "crates/fake-storage/src/leaf.rs",
            include_str!("../fixtures/interproc_leaf.rs"),
            &c,
        ),
    ];
    // No single file has an intra-function finding.
    for f in &files {
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }
    let report = callgraph::check_workspace(&files);
    assert_eq!(report.lock_order.len(), 1, "{:?}", report.lock_order);
    let v = &report.lock_order[0];
    assert_eq!(v.rule, "lock-order");
    // Reported at the outermost call site, in the file that holds the guard.
    assert_eq!(v.file, "crates/fake-wal/src/hold.rs");
    assert!(v.message.contains("rank 40"), "{}", v.message);
    assert!(v.message.contains("rank 20"), "{}", v.message);
    // The full chain, ending at the acquisition in the third crate.
    assert!(v.message.contains("call chain: entry -> middle -> acquire_pool"), "{}", v.message);
    assert!(v.message.contains("`pool` at crates/fake-storage/src/leaf.rs"), "{}", v.message);
    assert!(report.blocking.is_empty(), "{:?}", report.blocking);
}

#[test]
fn diamond_reports_both_call_sites_once_each() {
    let file = "fixtures/interproc_diamond.rs";
    let c = cfg(&[(file, "hi", 30), (file, "lo", 10)]);
    let files = vec![summarize(file, include_str!("../fixtures/interproc_diamond.rs"), &c)];
    let report = callgraph::check_workspace(&files);
    assert_eq!(report.lock_order.len(), 2, "{:?}", report.lock_order);
    for v in &report.lock_order {
        assert!(v.message.contains("bottom"), "{}", v.message);
    }
    assert!(report.lock_order[0].message.contains("via1"), "{}", report.lock_order[0].message);
    assert!(report.lock_order[1].message.contains("via2"), "{}", report.lock_order[1].message);
}

#[test]
fn mutual_recursion_terminates_and_still_reports() {
    let file = "fixtures/interproc_recursive.rs";
    let c = cfg(&[(file, "h", 20), (file, "r", 10)]);
    let files = vec![summarize(file, include_str!("../fixtures/interproc_recursive.rs"), &c)];
    let report = callgraph::check_workspace(&files);
    assert_eq!(report.lock_order.len(), 1, "{:?}", report.lock_order);
    let v = &report.lock_order[0];
    assert!(v.message.contains("entry -> ping"), "{}", v.message);
    assert!(v.message.contains("rank 10"), "{}", v.message);
}

#[test]
fn dyn_trait_call_falls_back_to_any_callee() {
    let file = "fixtures/interproc_trait.rs";
    let c = cfg(&[(file, "gate", 20), (file, "dev", 10)]);
    let files = vec![summarize(file, include_str!("../fixtures/interproc_trait.rs"), &c)];
    let report = callgraph::check_workspace(&files);
    assert_eq!(report.lock_order.len(), 1, "{:?}", report.lock_order);
    let v = &report.lock_order[0];
    assert!(v.message.contains("flush_now"), "{}", v.message);
    assert!(v.message.contains("rank 10"), "{}", v.message);
}

#[test]
fn blocking_under_lock_direct_and_chained() {
    let file = "fixtures/blocking_bad.rs";
    let c = cfg(&[(file, "state", 40)]);
    let files = vec![summarize(file, include_str!("../fixtures/blocking_bad.rs"), &c)];
    // Direct findings: device write, thread::sleep, and the completion-queue
    // primitives (`complete`/`drain` block until the executor finishes the op)
    // under `state`.
    let direct = &files[0].blocking;
    assert_eq!(direct.len(), 4, "{direct:?}");
    assert!(direct.iter().all(|v| v.rule == "blocking-under-lock"), "{direct:?}");
    assert!(direct.iter().any(|v| v.message.contains("write_at")), "{direct:?}");
    assert!(direct.iter().any(|v| v.message.contains("thread::sleep")), "{direct:?}");
    assert!(direct.iter().any(|v| v.message.contains("complete")), "{direct:?}");
    assert!(direct.iter().any(|v| v.message.contains("drain")), "{direct:?}");
    // Chained finding: `chained` -> flush_all -> sync_dev -> sync_all().
    let report = callgraph::check_workspace(&files);
    assert_eq!(report.blocking.len(), 1, "{:?}", report.blocking);
    let v = &report.blocking[0];
    assert!(v.message.contains("call chain: chained -> flush_all -> sync_dev"), "{}", v.message);
    assert!(v.message.contains("sync_all"), "{}", v.message);
    assert!(report.lock_order.is_empty(), "{:?}", report.lock_order);
}

#[test]
fn blocking_after_drop_or_annotated_passes() {
    let file = "fixtures/blocking_ok.rs";
    let c = cfg(&[(file, "state", 40)]);
    let files = vec![summarize(file, include_str!("../fixtures/blocking_ok.rs"), &c)];
    assert!(files[0].blocking.is_empty(), "{:?}", files[0].blocking);
    let report = callgraph::check_workspace(&files);
    assert!(report.blocking.is_empty(), "{:?}", report.blocking);
    assert!(report.lock_order.is_empty(), "{:?}", report.lock_order);
}

#[test]
fn escaping_guards_are_flagged() {
    let file = "fixtures/escape_bad.rs";
    let c = cfg(&[(file, "m", 20)]);
    let s = summarize(file, include_str!("../fixtures/escape_bad.rs"), &c);
    let escapes: Vec<_> = s.violations.iter().filter(|v| v.rule == "guard-escape").collect();
    assert_eq!(escapes.len(), 3, "{escapes:?}");
    // return, tail expression, struct-literal store — one each.
    assert_eq!(escapes[0].line, 15, "{escapes:?}");
    assert_eq!(escapes[1].line, 19, "{escapes:?}");
    assert_eq!(escapes[2].line, 23, "{escapes:?}");
}

#[test]
fn local_annotated_or_temporary_guards_pass() {
    let file = "fixtures/escape_ok.rs";
    let c = cfg(&[(file, "m", 20)]);
    let s = summarize(file, include_str!("../fixtures/escape_ok.rs"), &c);
    let escapes: Vec<_> = s.violations.iter().filter(|v| v.rule == "guard-escape").collect();
    assert!(escapes.is_empty(), "{escapes:?}");
}
