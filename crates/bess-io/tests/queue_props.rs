//! Property tests for the submission/completion queue, run against both
//! executors:
//!
//! * every submitted op's result is delivered exactly once — through its
//!   ticket or through `drain()`, never both, never zero;
//! * per-file write-class ops reach the device in submission order, and
//!   reads never cross a write-class op, under any worker count;
//! * a failed op fails only its own ticket — everything else in the batch
//!   completes normally;
//! * `drain()` after fault injection leaves the queue empty: no leaked
//!   tickets, no outstanding ops, and drained tickets are dead.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use bess_io::{IoDevice, IoOp, IoOutput, IoQueue, IoRuntimeConfig, MemDevice};
use bess_obs::Counter;
use proptest::prelude::*;

/// Offsets are page-aligned small integers so generated ops collide often.
const PAGE: u64 = 64;

/// One observed device call, for order assertions.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Observed {
    Read(u64),
    Write(u64),
    Sync,
    Grow(u64),
}

/// A device that records the order ops arrive in and fails any write whose
/// payload starts with the poison byte — the fault-injection stand-in.
struct RecordingDevice {
    inner: Arc<MemDevice>,
    log: Mutex<Vec<Observed>>,
}

const POISON: u8 = 0xFF;

impl RecordingDevice {
    fn new() -> Arc<Self> {
        Arc::new(RecordingDevice {
            inner: MemDevice::new(),
            log: Mutex::new(Vec::new()),
        })
    }

    fn observed(&self) -> Vec<Observed> {
        self.log.lock().unwrap().clone()
    }
}

impl IoDevice for RecordingDevice {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        self.log.lock().unwrap().push(Observed::Read(offset));
        self.inner.read_at(buf, offset)
    }

    fn write_at(&self, data: &[u8], offset: u64) -> std::io::Result<()> {
        self.log.lock().unwrap().push(Observed::Write(offset));
        if data.first() == Some(&POISON) {
            return Err(std::io::Error::other("injected write fault"));
        }
        self.inner.write_at(data, offset)
    }

    fn grow_to(&self, bytes: u64) -> std::io::Result<()> {
        self.log.lock().unwrap().push(Observed::Grow(bytes));
        self.inner.grow_to(bytes)
    }

    fn sync(&self) -> std::io::Result<()> {
        self.log.lock().unwrap().push(Observed::Sync);
        self.inner.sync()
    }

    fn len(&self) -> std::io::Result<u64> {
        self.inner.len()
    }
}

/// A generated op spec: which of the two files, what kind, whether poisoned.
#[derive(Clone, Debug)]
enum Spec {
    Read { file: usize, page: u64 },
    Write { file: usize, page: u64, poison: bool },
    Sync { file: usize },
    Grow { file: usize, pages: u64 },
    WriteSync { file: usize, page: u64, poison: bool },
}

impl Spec {
    fn file(&self) -> usize {
        match self {
            Spec::Read { file, .. }
            | Spec::Write { file, .. }
            | Spec::Sync { file }
            | Spec::Grow { file, .. }
            | Spec::WriteSync { file, .. } => *file,
        }
    }

    fn poisoned(&self) -> bool {
        matches!(
            self,
            Spec::Write { poison: true, .. } | Spec::WriteSync { poison: true, .. }
        )
    }

    fn to_op(&self, files: &[bess_io::FileId]) -> IoOp {
        let payload = |page: u64, poison: bool| {
            let mut d = vec![(page % 251) as u8 + 1; PAGE as usize];
            if poison {
                d[0] = POISON;
            }
            d
        };
        match *self {
            Spec::Read { file, page } => IoOp::Read {
                file: files[file],
                offset: page * PAGE,
                len: PAGE as usize,
                exact: false,
            },
            Spec::Write { file, page, poison } => IoOp::Write {
                file: files[file],
                offset: page * PAGE,
                data: payload(page, poison),
            },
            Spec::Sync { file } => IoOp::Sync { file: files[file] },
            Spec::Grow { file, pages } => IoOp::Grow {
                file: files[file],
                len: pages * PAGE,
            },
            Spec::WriteSync { file, page, poison } => IoOp::WriteSync {
                file: files[file],
                offset: page * PAGE,
                data: payload(page, poison),
            },
        }
    }
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    prop_oneof![
        (0usize..2, 0u64..8).prop_map(|(file, page)| Spec::Read { file, page }),
        (0usize..2, 0u64..8, any::<bool>()).prop_map(|(file, page, p)| Spec::Write {
            file,
            page,
            poison: p,
        }),
        (0usize..2).prop_map(|file| Spec::Sync { file }),
        (0usize..2, 1u64..16).prop_map(|(file, pages)| Spec::Grow { file, pages }),
        (0usize..2, 0u64..8, any::<bool>()).prop_map(|(file, page, p)| Spec::WriteSync {
            file,
            page,
            poison: p,
        }),
    ]
}

fn exec_strategy() -> impl Strategy<Value = IoRuntimeConfig> {
    prop_oneof![
        Just(IoRuntimeConfig::inline()),
        (1usize..4, 1usize..8).prop_map(|(workers, max_batch)| IoRuntimeConfig {
            workers,
            max_batch,
            submit_coalesce_window: Duration::ZERO,
        }),
        // A short coalesce window exercises the wait-for-more path.
        (1usize..3).prop_map(|workers| IoRuntimeConfig {
            workers,
            max_batch: 4,
            submit_coalesce_window: Duration::from_micros(200),
        }),
    ]
}

/// Builds a queue over two recording devices and submits `specs` split
/// into `splits + 1` batches.
fn run(
    cfg: IoRuntimeConfig,
    specs: &[Spec],
    splits: &[usize],
) -> (IoQueue, Vec<Arc<RecordingDevice>>, Vec<bess_io::IoTicket>) {
    let q = IoQueue::unregistered(cfg);
    let devs: Vec<Arc<RecordingDevice>> = (0..2).map(|_| RecordingDevice::new()).collect();
    let files: Vec<bess_io::FileId> = devs
        .iter()
        .map(|d| q.register(Arc::clone(d) as Arc<dyn IoDevice>, Counter::unregistered()))
        .collect();
    let ops: Vec<IoOp> = specs.iter().map(|s| s.to_op(&files)).collect();
    let mut tickets = Vec::with_capacity(ops.len());
    let mut rest = ops;
    // Split points carve the op list into several submit() calls so batch
    // boundaries vary.
    let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (rest.len() + 1)).collect();
    cuts.sort_unstable();
    let mut taken = 0;
    for cut in cuts {
        let k = cut.saturating_sub(taken).min(rest.len());
        let batch: Vec<IoOp> = rest.drain(..k).collect();
        taken += k;
        tickets.extend(q.submit_owned(batch));
    }
    tickets.extend(q.submit_owned(rest));
    (q, devs, tickets)
}

/// The device-observed op order per file must respect the contract: the
/// subsequence of write-class ops equals the submitted write-class order,
/// and each read happens between the same two write-class ops it was
/// submitted between (reads only reorder with reads).
fn assert_order(file: usize, specs: &[Spec], observed: &[Observed]) {
    // Expected write-class subsequence, in submission order.
    let submitted_writes: Vec<Observed> = specs
        .iter()
        .filter(|s| s.file() == file)
        .filter_map(|s| match *s {
            Spec::Write { page, .. } => Some(vec![Observed::Write(page * PAGE)]),
            Spec::Sync { .. } => Some(vec![Observed::Sync]),
            Spec::Grow { pages, .. } => Some(vec![Observed::Grow(pages * PAGE)]),
            // WriteSync reaches the device as write then sync — but a
            // poisoned write fails fast, so its sync is never issued.
            Spec::WriteSync { page, poison: true, .. } => Some(vec![Observed::Write(page * PAGE)]),
            Spec::WriteSync { page, poison: false, .. } => {
                Some(vec![Observed::Write(page * PAGE), Observed::Sync])
            }
            Spec::Read { .. } => None,
        })
        .flatten()
        .collect();
    let observed_writes: Vec<Observed> = observed
        .iter()
        .filter(|o| !matches!(o, Observed::Read(_)))
        .cloned()
        .collect();
    assert_eq!(
        observed_writes, submitted_writes,
        "file {file}: write-class ops must reach the device in submission order"
    );

    // Reads: count write-class device ops preceding each read, observed vs
    // submitted. Equal counts mean no read crossed a write-class op.
    let submitted_read_positions: Vec<usize> = {
        let mut wc = 0;
        let mut v = Vec::new();
        for s in specs.iter().filter(|s| s.file() == file) {
            match s {
                Spec::Read { .. } => v.push(wc),
                Spec::Write { .. } | Spec::Sync { .. } | Spec::Grow { .. } => wc += 1,
                Spec::WriteSync { poison, .. } => wc += if *poison { 1 } else { 2 },
            }
        }
        v
    };
    let observed_read_positions: Vec<usize> = {
        let mut wc = 0;
        let mut v = Vec::new();
        for o in observed {
            match o {
                Observed::Read(_) => v.push(wc),
                _ => wc += 1,
            }
        }
        v
    };
    let mut want = submitted_read_positions;
    let mut got = observed_read_positions;
    // Reads between the same pair of write-class ops may reorder freely,
    // so compare as multisets of positions.
    want.sort_unstable();
    got.sort_unstable();
    assert_eq!(
        got, want,
        "file {file}: reads must not cross write-class ops"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly-once delivery + failure isolation: every ticket redeems to
    /// exactly one result, a poisoned op fails alone, and afterwards the
    /// queue holds nothing.
    #[test]
    fn completions_are_exactly_once_and_faults_isolated(
        specs in prop::collection::vec(spec_strategy(), 1..24),
        splits in prop::collection::vec(0usize..24, 0..3),
        cfg in exec_strategy(),
    ) {
        let (q, devs, tickets) = run(cfg, &specs, &splits);
        prop_assert_eq!(tickets.len(), specs.len());
        for (spec, ticket) in specs.iter().zip(tickets) {
            let res = q.complete(ticket);
            if spec.poisoned() {
                prop_assert!(res.is_err(), "poisoned op must fail: {spec:?}");
            } else {
                prop_assert!(res.is_ok(), "clean op must succeed: {spec:?} -> {res:?}");
            }
        }
        prop_assert!(!q.has_outstanding(), "all tickets redeemed, queue empty");
        prop_assert_eq!(q.depth(), 0);
        // Per-file order held regardless of faults.
        for (file, dev) in devs.iter().enumerate() {
            assert_order(file, &specs, &dev.observed());
        }
    }

    /// `drain()` after fault injection: every unclaimed result comes back
    /// (in ticket order), nothing is leaked, and drained tickets are dead.
    #[test]
    fn drain_after_faults_leaves_no_leaked_tickets(
        specs in prop::collection::vec(spec_strategy(), 1..24),
        claim in 0usize..24,
        cfg in exec_strategy(),
    ) {
        let (q, _devs, tickets) = run(cfg, &specs, &[]);
        let claim = claim.min(tickets.len());
        let mut it = tickets.into_iter();
        // Redeem a prefix through tickets, leave the rest for drain().
        for (spec, ticket) in specs.iter().take(claim).zip(it.by_ref()) {
            let res = q.complete(ticket);
            prop_assert_eq!(res.is_err(), spec.poisoned());
        }
        let drained = q.drain();
        prop_assert_eq!(drained.len(), specs.len() - claim,
            "drain returns exactly the unclaimed results");
        // BTreeMap keys put drained results in submission order: they line
        // up with the unclaimed specs one-to-one.
        for (spec, res) in specs.iter().skip(claim).zip(&drained) {
            prop_assert_eq!(res.is_err(), spec.poisoned(),
                "drained result must match its op: {:?} -> {:?}", spec, res);
        }
        prop_assert!(!q.has_outstanding(), "no leaked tickets after drain");
        prop_assert_eq!(q.depth(), 0);
        // Tickets invalidated by the drain are dead, not dangling.
        for ticket in it {
            let err = q.complete(ticket).unwrap_err();
            prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        }
    }

    /// Read results reflect the per-file write order: after a chain of
    /// writes to one page interleaved with reads elsewhere, the final
    /// image is the last-submitted write.
    #[test]
    fn last_write_wins_per_file(
        values in prop::collection::vec(1u8..251, 1..12),
        workers in 0usize..4,
    ) {
        let cfg = if workers == 0 {
            IoRuntimeConfig::inline()
        } else {
            IoRuntimeConfig { workers, max_batch: 3, submit_coalesce_window: Duration::ZERO }
        };
        let q = IoQueue::unregistered(cfg);
        let dev = MemDevice::new();
        let f = q.register(dev, Counter::unregistered());
        let ops: Vec<IoOp> = values
            .iter()
            .map(|&v| IoOp::Write { file: f, offset: 0, data: vec![v; 16] })
            .collect();
        for t in q.submit_owned(ops) {
            q.complete(t).unwrap();
        }
        match q.run_one(IoOp::Read { file: f, offset: 0, len: 16, exact: true }).unwrap() {
            IoOutput::Read { data, .. } => {
                prop_assert_eq!(data, vec![*values.last().unwrap(); 16]);
            }
            other => prop_assert!(false, "expected read output, got {:?}", other),
        }
    }
}
