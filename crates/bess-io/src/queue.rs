//! The submission/completion queue.
//!
//! [`IoQueue::submit`] enqueues a batch of [`IoOp`]s and returns one
//! [`IoTicket`] per op; [`IoQueue::complete`] blocks until a ticket's op
//! has executed and returns its typed result; [`IoQueue::drain`] waits
//! for everything outstanding. Two executors share the same API:
//!
//! * **inline** (`workers == 0`): ops execute synchronously inside
//!   `submit`, on the caller's thread, in submission order. Fully
//!   deterministic — the device observes exactly the submission sequence,
//!   which is what the fault-injection matrices calibrate against.
//! * **thread pool** (`workers > 0`): workers dequeue up to
//!   [`IoRuntimeConfig::max_batch`] eligible ops at a time and execute
//!   them concurrently, subject to the per-file ordering contract (see
//!   the crate docs): write-class ops are a per-file FIFO that reads
//!   never cross; reads reorder freely with other reads.
//!
//! Tickets are move-only: completing one consumes it, so each completion
//! is delivered exactly once by construction.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use bess_lock::order::{OrderedMutex, Rank};
use bess_obs::{Counter, Gauge, Group, LatencyHistogram};
use parking_lot::Condvar;

use crate::device::IoDevice;
use crate::retry;

/// Handle to a device registered with a queue (its submission-queue slot).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// One device operation.
#[derive(Clone, Debug)]
pub enum IoOp {
    /// Read `len` bytes at `offset`. With `exact`, the buffer must fill
    /// completely (short reads accumulate, transient errors retry — the
    /// storage-area policy); without it, the op reports however many
    /// bytes the store held (the log-tail policy).
    Read {
        /// Target device.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Bytes to read.
        len: usize,
        /// Whether a short result is an error (see above).
        exact: bool,
    },
    /// Write all of `data` at `offset`.
    Write {
        /// Target device.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
    /// Force everything previously written to `file` to stable storage.
    Sync {
        /// Target device.
        file: FileId,
    },
    /// Grow `file` to at least `len` bytes.
    Grow {
        /// Target device.
        file: FileId,
        /// New minimum size.
        len: u64,
    },
    /// Chained write-then-sync under a single ticket (fail-fast): the
    /// group-commit force submits its whole round as one of these.
    WriteSync {
        /// Target device.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Bytes to write.
        data: Vec<u8>,
    },
}

impl IoOp {
    /// The device this op targets.
    pub fn file(&self) -> FileId {
        match self {
            IoOp::Read { file, .. }
            | IoOp::Write { file, .. }
            | IoOp::Sync { file }
            | IoOp::Grow { file, .. }
            | IoOp::WriteSync { file, .. } => *file,
        }
    }

    /// Whether this is a read (reads may reorder with each other; all
    /// other classes are per-file FIFO).
    pub fn is_read(&self) -> bool {
        matches!(self, IoOp::Read { .. })
    }
}

/// The typed success payload of one completed op.
#[derive(Clone, Debug)]
pub enum IoOutput {
    /// A completed read: `data[..n]` is what the store held.
    Read {
        /// The read buffer (`len` bytes for exact reads).
        data: Vec<u8>,
        /// Bytes actually served.
        n: usize,
    },
    /// A completed write.
    Write,
    /// A completed sync.
    Sync,
    /// A completed grow.
    Grow,
    /// A completed chained write+sync.
    WriteSync,
}

/// Per-op result delivered at completion.
pub type IoResult = std::io::Result<IoOutput>;

/// Receipt for one submitted op. Move-only: redeeming it through
/// [`IoQueue::complete`] consumes it, making double completion
/// unrepresentable.
#[derive(Debug)]
pub struct IoTicket {
    id: u64,
}

impl IoTicket {
    /// The ticket's queue-unique id (diagnostics only).
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Executor tuning for an [`IoQueue`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoRuntimeConfig {
    /// Worker threads. `0` selects the inline executor: ops run
    /// synchronously at submit, in submission order, on the caller's
    /// thread — the deterministic default every test matrix runs against.
    pub workers: usize,
    /// Most ops a worker dequeues (and a batch submission coalesces)
    /// at once.
    pub max_batch: usize,
    /// How long a worker holding fewer than `max_batch` eligible ops
    /// waits for more submissions to coalesce before executing. Zero
    /// (the default) executes immediately.
    pub submit_coalesce_window: Duration,
}

impl Default for IoRuntimeConfig {
    fn default() -> Self {
        IoRuntimeConfig {
            workers: 0,
            max_batch: 16,
            submit_coalesce_window: Duration::ZERO,
        }
    }
}

impl IoRuntimeConfig {
    /// The deterministic inline executor.
    pub fn inline() -> Self {
        IoRuntimeConfig::default()
    }

    /// A thread-pool executor with `workers` threads.
    pub fn pool(workers: usize) -> Self {
        IoRuntimeConfig {
            workers: workers.max(1),
            ..IoRuntimeConfig::default()
        }
    }

    /// Executor selection from the environment: `BESS_IO_EXEC=pool`
    /// (with optional `BESS_IO_WORKERS=n`, default 4) selects the
    /// thread-pool executor; anything else (including unset) selects
    /// inline. CI's crash-matrix job runs the whole suite under both.
    pub fn from_env() -> Self {
        match std::env::var("BESS_IO_EXEC").as_deref() {
            Ok("pool") => {
                let workers = std::env::var("BESS_IO_WORKERS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(4);
                IoRuntimeConfig::pool(workers)
            }
            _ => IoRuntimeConfig::inline(),
        }
    }
}

/// A device slot: the device plus the counter transient read retries are
/// charged to (each adapter wires its own stats counter in here).
#[derive(Clone)]
struct Registered {
    dev: Arc<dyn IoDevice>,
    retries: Counter,
}

struct QueueState {
    devices: Vec<Registered>,
    /// Submitted, not yet picked up by a worker (pool executor only).
    pending: VecDeque<(u64, IoOp)>,
    /// Ops currently executing: `(ticket, file, is_read)`.
    running: Vec<(u64, FileId, bool)>,
    /// Executed, result not yet claimed. A `BTreeMap` so [`IoQueue::drain`]
    /// returns results in ticket (= submission) order.
    done: BTreeMap<u64, IoResult>,
    /// Tickets handed out and not yet redeemed or drained.
    live: HashSet<u64>,
    next_ticket: u64,
    shutdown: bool,
}

struct QueueInner {
    cfg: IoRuntimeConfig,
    state: OrderedMutex<QueueState>,
    /// Wakes workers when ops are submitted or ordering unblocks.
    work_cv: Condvar,
    /// Wakes completion waiters when a result is published.
    done_cv: Condvar,
    /// Outstanding ops (submitted, not yet executed): `io.queue.depth`.
    depth: Gauge,
    /// Ops per submission/dequeue batch: `io.batch.size`.
    batch_size: LatencyHistogram,
    /// Device-side execution time per op: `io.op.ns`.
    op_ns: LatencyHistogram,
}

impl QueueInner {
    fn registered(&self, file: FileId) -> std::io::Result<Registered> {
        self.state
            .lock()
            .devices
            .get(file.0 as usize)
            .cloned()
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("no device registered at slot {}", file.0),
                )
            })
    }

    /// Runs one op against its device (no queue locks held).
    fn execute(&self, op: &IoOp) -> IoResult {
        let reg = self.registered(op.file())?;
        let _timer = self.op_ns.start();
        match op {
            IoOp::Read {
                offset, len, exact, ..
            } => {
                let mut data = vec![0u8; *len];
                if *exact {
                    retry::read_exact_retrying(
                        |b, off| reg.dev.read_at(b, off),
                        &mut data,
                        *offset,
                        &reg.retries,
                    )?;
                    Ok(IoOutput::Read { n: *len, data })
                } else {
                    let n =
                        retry::read_accumulating(|b, off| reg.dev.read_at(b, off), &mut data, *offset)?;
                    Ok(IoOutput::Read { n, data })
                }
            }
            IoOp::Write { offset, data, .. } => {
                reg.dev.write_at(data, *offset)?;
                Ok(IoOutput::Write)
            }
            IoOp::Sync { .. } => {
                reg.dev.sync()?;
                Ok(IoOutput::Sync)
            }
            IoOp::Grow { len, .. } => {
                reg.dev.grow_to(*len)?;
                Ok(IoOutput::Grow)
            }
            IoOp::WriteSync { offset, data, .. } => {
                reg.dev.write_at(data, *offset)?;
                reg.dev.sync()?;
                Ok(IoOutput::WriteSync)
            }
        }
    }
}

/// Pool-executor dequeue: how many of the pending ops could start right
/// now under the per-file ordering contract.
fn eligible_count(state: &QueueState) -> usize {
    scan_eligible(state, usize::MAX, |_| {})
}

/// Walks `pending` in submission order, calling `take(index)` for each op
/// that may start (up to `limit`), and returns how many were eligible.
/// An op may start iff no earlier op (running or pending) on the same
/// file conflicts with it; only read/read pairs don't conflict.
fn scan_eligible(state: &QueueState, limit: usize, mut take: impl FnMut(usize)) -> usize {
    let mut seen_read: HashSet<FileId> = HashSet::new();
    let mut seen_write: HashSet<FileId> = HashSet::new();
    for (_, file, is_read) in &state.running {
        if *is_read {
            seen_read.insert(*file);
        } else {
            seen_write.insert(*file);
        }
    }
    let mut taken = 0;
    for (i, (_, op)) in state.pending.iter().enumerate() {
        let file = op.file();
        let ok = if op.is_read() {
            !seen_write.contains(&file)
        } else {
            !seen_write.contains(&file) && !seen_read.contains(&file)
        };
        if ok && taken < limit {
            take(i);
            taken += 1;
        }
        // Whether taken or merely passed over, this op now orders
        // everything behind it on the same file.
        if op.is_read() {
            seen_read.insert(file);
        } else {
            seen_write.insert(file);
        }
    }
    taken
}

fn worker_loop(inner: &QueueInner) {
    loop {
        // Select a batch under the state lock, honoring the coalesce
        // window, then execute with no locks held.
        let batch: Vec<(u64, IoOp)> = {
            let mut state = inner.state.lock();
            let mut coalesced = false;
            loop {
                if state.shutdown {
                    return;
                }
                let avail = eligible_count(&state);
                if avail >= inner.cfg.max_batch
                    || (avail > 0 && (coalesced || inner.cfg.submit_coalesce_window.is_zero()))
                {
                    // Fair share: a burst splits across the pool instead
                    // of one worker draining it serially — that split is
                    // where a batched submission's overlap comes from.
                    let share = avail.div_ceil(inner.cfg.workers.max(1));
                    let take = inner.cfg.max_batch.min(share.max(1));
                    let mut indices = Vec::new();
                    scan_eligible(&state, take, |i| indices.push(i));
                    let mut batch = Vec::with_capacity(indices.len());
                    // Back-to-front so earlier indices stay valid.
                    for &i in indices.iter().rev() {
                        // The index came from the scan just above, under
                        // the same guard, so remove cannot fail.
                        if let Some(entry) = state.pending.remove(i) {
                            batch.push(entry);
                        }
                    }
                    batch.reverse();
                    for (id, op) in &batch {
                        state.running.push((*id, op.file(), op.is_read()));
                    }
                    break batch;
                }
                if avail > 0 {
                    // A small batch with a coalesce window: hold once for
                    // more submissions, then take whatever is there.
                    let window = inner.cfg.submit_coalesce_window;
                    // LINT: allow(blocking-under-lock) — condvar wait atomically releases the queue lock via raw().
                    let _ = inner.work_cv.wait_for(state.raw(), window);
                    coalesced = true;
                    continue;
                }
                coalesced = false;
                // LINT: allow(blocking-under-lock) — condvar wait atomically releases the queue lock via raw().
                inner.work_cv.wait(state.raw());
            }
        };
        inner.batch_size.record(batch.len() as u64);
        for (id, op) in batch {
            let res = inner.execute(&op);
            {
                let mut state = inner.state.lock();
                state.running.retain(|(rid, _, _)| *rid != id);
                state.done.insert(id, res);
            }
            inner.depth.sub(1);
            inner.done_cv.notify_all();
            // A completed write-class op may unblock ops queued behind it.
            inner.work_cv.notify_all();
        }
    }
}

/// An io_uring-style submission/completion queue over registered
/// [`IoDevice`]s. See the module docs for the executor modes and the
/// ordering contract.
pub struct IoQueue {
    inner: Arc<QueueInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl IoQueue {
    /// Creates a queue with `cfg`, registering its metrics
    /// (`io.queue.depth`, `io.batch.size`, `io.op.ns`) in `group`.
    pub fn new(cfg: IoRuntimeConfig, group: &Group) -> Self {
        let inner = Arc::new(QueueInner {
            cfg,
            state: OrderedMutex::new(
                Rank::IoQueue,
                "io.queue.state",
                QueueState {
                    devices: Vec::new(),
                    pending: VecDeque::new(),
                    running: Vec::new(),
                    done: BTreeMap::new(),
                    live: HashSet::new(),
                    next_ticket: 0,
                    shutdown: false,
                },
            ),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            depth: group.gauge("io.queue.depth"),
            batch_size: group.histogram("io.batch.size"),
            op_ns: group.histogram("io.op.ns"),
        });
        let workers = (0..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("bess-io-w{i}"))
                    .spawn(move || worker_loop(&inner))
                    // Thread spawn only fails when the process is out of
                    // resources; nothing useful can continue from there.
                    // LINT: allow(panic) — unrecoverable resource exhaustion at startup
                    .expect("spawn io worker")
            })
            .collect();
        IoQueue { inner, workers }
    }

    /// A queue with unregistered metrics (tests, tools).
    pub fn unregistered(cfg: IoRuntimeConfig) -> Self {
        Self::new(cfg, &bess_obs::Registry::new().group("io"))
    }

    /// This queue's executor configuration.
    pub fn config(&self) -> IoRuntimeConfig {
        self.inner.cfg
    }

    /// Registers a device, returning its submission slot. Transient read
    /// retries against this device are charged to `retries` (adapters
    /// pass their own stats counter; pass [`Counter::unregistered`] to
    /// discard).
    pub fn register(&self, dev: Arc<dyn IoDevice>, retries: Counter) -> FileId {
        let mut state = self.inner.state.lock();
        state.devices.push(Registered { dev, retries });
        // Slot count is bounded by registrations (a handful per queue).
        // LINT: allow(cast) — device slots are far below u32::MAX.
        FileId(state.devices.len() as u32 - 1)
    }

    /// Direct access to a registered device. This is *not* a queue op —
    /// it exists for out-of-band introspection (store length, crash-image
    /// snapshots) that must not perturb fault-plan op counts.
    pub fn device(&self, file: FileId) -> Option<Arc<dyn IoDevice>> {
        self.inner
            .state
            .lock()
            .devices
            .get(file.0 as usize)
            .map(|r| Arc::clone(&r.dev))
    }

    /// The registered device's current length (out-of-band; see
    /// [`Self::device`]).
    pub fn device_len(&self, file: FileId) -> std::io::Result<u64> {
        self.inner.registered(file)?.dev.len()
    }

    /// Submits a batch of ops, returning one ticket per op in order.
    ///
    /// Inline executor: the ops execute before this returns (in
    /// submission order); `complete` then just collects results. Pool
    /// executor: ops are queued for the workers and execute subject to
    /// the per-file ordering contract.
    pub fn submit(&self, ops: &[IoOp]) -> Vec<IoTicket> {
        self.submit_owned(ops.to_vec())
    }

    /// [`Self::submit`] without the defensive copy (hot paths hand the
    /// op buffers over).
    pub fn submit_owned(&self, ops: Vec<IoOp>) -> Vec<IoTicket> {
        if ops.is_empty() {
            return Vec::new();
        }
        self.inner.depth.add(ops.len() as i64);
        self.inner.batch_size.record(ops.len() as u64);
        if self.inner.cfg.workers == 0 {
            // Inline: assign tickets, then execute in submission order on
            // this thread with no queue locks held.
            let first = {
                let mut state = self.inner.state.lock();
                let first = state.next_ticket;
                state.next_ticket += ops.len() as u64;
                for i in 0..ops.len() as u64 {
                    state.live.insert(first + i);
                }
                first
            };
            let results: Vec<IoResult> = ops.iter().map(|op| self.inner.execute(op)).collect();
            let mut state = self.inner.state.lock();
            for (i, res) in results.into_iter().enumerate() {
                state.done.insert(first + i as u64, res);
            }
            self.inner.depth.sub(ops.len() as i64);
            (0..ops.len() as u64).map(|i| IoTicket { id: first + i }).collect()
        } else {
            let tickets = {
                let mut state = self.inner.state.lock();
                let first = state.next_ticket;
                state.next_ticket += ops.len() as u64;
                for (i, op) in ops.into_iter().enumerate() {
                    let id = first + i as u64;
                    state.live.insert(id);
                    state.pending.push_back((id, op));
                }
                let last = state.next_ticket;
                (first..last).map(|id| IoTicket { id }).collect()
            };
            self.inner.work_cv.notify_all();
            tickets
        }
    }

    /// Submits a single op and waits for its result — the one-element
    /// batch the legacy blocking entry points shim through.
    pub fn run_one(&self, op: IoOp) -> IoResult {
        let mut tickets = self.submit_owned(vec![op]);
        // submit_owned returns exactly one ticket per op.
        // LINT: allow(panic) — one op in, one ticket out, by construction
        self.complete(tickets.pop().expect("one ticket per op"))
    }

    /// Blocks until `ticket`'s op has executed and returns its result.
    /// Consuming the ticket makes completion exactly-once; a ticket
    /// invalidated by [`Self::drain`] fails with `InvalidInput`.
    pub fn complete(&self, ticket: IoTicket) -> IoResult {
        let mut state = self.inner.state.lock();
        if !state.live.remove(&ticket.id) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("ticket {} is not outstanding (drained?)", ticket.id),
            ));
        }
        loop {
            if let Some(res) = state.done.remove(&ticket.id) {
                return res;
            }
            if state.shutdown {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "io queue shut down with ops outstanding",
                ));
            }
            // LINT: allow(blocking-under-lock) — condvar wait atomically releases the queue lock via raw().
            self.inner.done_cv.wait(state.raw());
        }
    }

    /// Waits for every outstanding op and returns all unclaimed results
    /// in ticket (= submission) order, invalidating their tickets. After
    /// a fault-injection episode this is how a caller guarantees nothing
    /// is left in flight — no leaked tickets, an empty queue.
    pub fn drain(&self) -> Vec<IoResult> {
        let mut state = self.inner.state.lock();
        while !(state.pending.is_empty() && state.running.is_empty()) {
            if state.shutdown {
                break;
            }
            // LINT: allow(blocking-under-lock) — condvar wait atomically releases the queue lock via raw().
            self.inner.done_cv.wait(state.raw());
        }
        state.live.clear();
        let done = std::mem::take(&mut state.done);
        done.into_values().collect()
    }

    /// Ops submitted but not yet executed (the `io.queue.depth` gauge).
    pub fn depth(&self) -> i64 {
        self.inner.depth.get()
    }

    /// Whether any ticket is outstanding (unclaimed submit).
    pub fn has_outstanding(&self) -> bool {
        let state = self.inner.state.lock();
        !state.live.is_empty() || !state.pending.is_empty() || !state.running.is_empty()
    }
}

impl Drop for IoQueue {
    fn drop(&mut self) {
        {
            let mut state = self.inner.state.lock();
            state.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for IoQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoQueue")
            .field("cfg", &self.inner.cfg)
            .field("depth", &self.depth())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn queue_with_mem(cfg: IoRuntimeConfig) -> (IoQueue, FileId) {
        let q = IoQueue::unregistered(cfg);
        let f = q.register(MemDevice::new(), Counter::unregistered());
        (q, f)
    }

    fn read_back(q: &IoQueue, f: FileId, offset: u64, len: usize) -> Vec<u8> {
        match q.run_one(IoOp::Read {
            file: f,
            offset,
            len,
            exact: true,
        }) {
            Ok(IoOutput::Read { data, n }) => {
                assert_eq!(n, len);
                data
            }
            other => panic!("expected read output, got {other:?}"),
        }
    }

    #[test]
    fn inline_round_trip() {
        let (q, f) = queue_with_mem(IoRuntimeConfig::inline());
        let tickets = q.submit(&[
            IoOp::Grow { file: f, len: 64 },
            IoOp::Write {
                file: f,
                offset: 8,
                data: b"payload".to_vec(),
            },
            IoOp::Sync { file: f },
        ]);
        assert_eq!(tickets.len(), 3);
        for t in tickets {
            q.complete(t).unwrap();
        }
        assert_eq!(read_back(&q, f, 8, 7), b"payload");
        assert_eq!(q.depth(), 0);
        assert!(!q.has_outstanding());
    }

    #[test]
    fn pool_round_trip_and_ordering() {
        let (q, f) = queue_with_mem(IoRuntimeConfig::pool(4));
        // A chain of dependent writes to one file: per-file FIFO makes the
        // last value win regardless of worker scheduling.
        let ops: Vec<IoOp> = (0u8..32)
            .map(|i| IoOp::Write {
                file: f,
                offset: 0,
                data: vec![i; 16],
            })
            .collect();
        let tickets = q.submit(&ops);
        for t in tickets {
            q.complete(t).unwrap();
        }
        assert_eq!(read_back(&q, f, 0, 16), vec![31u8; 16]);
    }

    #[test]
    fn write_sync_is_one_chained_ticket() {
        let (q, f) = queue_with_mem(IoRuntimeConfig::inline());
        let res = q
            .run_one(IoOp::WriteSync {
                file: f,
                offset: 0,
                data: b"chained".to_vec(),
            })
            .unwrap();
        assert!(matches!(res, IoOutput::WriteSync));
        assert_eq!(read_back(&q, f, 0, 7), b"chained");
    }

    #[test]
    fn unknown_file_fails_only_its_ticket() {
        let (q, f) = queue_with_mem(IoRuntimeConfig::inline());
        let tickets = q.submit(&[
            IoOp::Write {
                file: FileId(99),
                offset: 0,
                data: vec![1],
            },
            IoOp::Write {
                file: f,
                offset: 0,
                data: vec![2],
            },
        ]);
        let mut it = tickets.into_iter();
        // First op targets an unregistered slot and fails alone.
        // LINT: allow(panic) — two ops were submitted just above
        let bad = q.complete(it.next().expect("two tickets"));
        assert_eq!(bad.unwrap_err().kind(), std::io::ErrorKind::InvalidInput);
        // LINT: allow(panic) — two ops were submitted just above
        q.complete(it.next().expect("two tickets")).unwrap();
        assert_eq!(read_back(&q, f, 0, 1), vec![2]);
    }

    #[test]
    fn drain_returns_everything_in_ticket_order_and_invalidates() {
        let (q, f) = queue_with_mem(IoRuntimeConfig::pool(2));
        let tickets = q.submit(&[
            IoOp::Write {
                file: f,
                offset: 0,
                data: vec![7; 4],
            },
            IoOp::Read {
                file: f,
                offset: 0,
                len: 4,
                exact: true,
            },
        ]);
        let results = q.drain();
        assert_eq!(results.len(), 2);
        assert!(matches!(results[0], Ok(IoOutput::Write)));
        match &results[1] {
            Ok(IoOutput::Read { data, n }) => {
                assert_eq!(*n, 4);
                assert_eq!(data, &vec![7u8; 4]);
            }
            other => panic!("expected read, got {other:?}"),
        }
        assert!(!q.has_outstanding(), "drain leaves no leaked tickets");
        // The drained tickets are dead.
        for t in tickets {
            assert_eq!(
                q.complete(t).unwrap_err().kind(),
                std::io::ErrorKind::InvalidInput
            );
        }
    }

    #[test]
    fn inexact_read_reports_short_count() {
        let (q, f) = queue_with_mem(IoRuntimeConfig::inline());
        q.run_one(IoOp::Write {
            file: f,
            offset: 0,
            data: vec![9; 10],
        })
        .unwrap();
        match q
            .run_one(IoOp::Read {
                file: f,
                offset: 4,
                len: 64,
                exact: false,
            })
            .unwrap()
        {
            IoOutput::Read { n, data } => {
                assert_eq!(n, 6);
                assert_eq!(&data[..6], &[9u8; 6]);
            }
            other => panic!("expected read, got {other:?}"),
        }
        // The exact flavor treats the same short read as an error.
        let err = q
            .run_one(IoOp::Read {
                file: f,
                offset: 4,
                len: 64,
                exact: true,
            })
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn coalesce_window_batches_submissions() {
        let q = IoQueue::new(
            IoRuntimeConfig {
                workers: 1,
                max_batch: 8,
                submit_coalesce_window: Duration::from_millis(20),
            },
            &bess_obs::Registry::new().group("io"),
        );
        let f = q.register(MemDevice::new(), Counter::unregistered());
        let t1 = q.submit(&[IoOp::Write {
            file: f,
            offset: 0,
            data: vec![1],
        }]);
        let t2 = q.submit(&[IoOp::Write {
            file: f,
            offset: 1,
            data: vec![2],
        }]);
        for t in t1.into_iter().chain(t2) {
            q.complete(t).unwrap();
        }
        assert_eq!(read_back(&q, f, 0, 2), vec![1, 2]);
    }

    #[test]
    fn from_env_defaults_to_inline() {
        // The test runner doesn't set BESS_IO_EXEC; guard the default.
        if std::env::var("BESS_IO_EXEC").is_err() {
            assert_eq!(IoRuntimeConfig::from_env().workers, 0);
        }
    }
}
