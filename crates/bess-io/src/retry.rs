//! Shared short-read / `EINTR` handling for positioned reads.
//!
//! Every BeSS device exposes the raw positioned-read contract (`Ok(n)`
//! with `n <= buf.len()`, `Ok(0)` at end of store, spurious
//! `ErrorKind::Interrupted`), and every consumer used to carry its own
//! copy of the loop that papers over it. The two policies live here once:
//!
//! * [`read_exact_retrying`] — storage-area semantics: the buffer must
//!   fill completely, transient I/O errors are retried a bounded number
//!   of times, and hitting end-of-store early is an error.
//! * [`read_accumulating`] — log semantics: accumulate what the store
//!   holds and report how much that was; a short count means the end was
//!   reached (normal at a log tail).

use bess_obs::Counter;

/// Transient read errors (a flaky disk returning `EIO`) are retried this
/// many times with a short pause before the error propagates.
pub const MAX_READ_RETRIES: u32 = 3;

/// Fills `buf` from a positioned reader, retrying interrupted reads and
/// accumulating short ones. `Ok(0)` before the buffer fills is an
/// unexpected end of the backing store. Other I/O errors are treated as
/// transient media glitches and retried up to [`MAX_READ_RETRIES`] times
/// (counted in `retries`) before propagating.
pub fn read_exact_retrying<R>(
    mut read_once: R,
    buf: &mut [u8],
    offset: u64,
    retries: &Counter,
) -> std::io::Result<()>
where
    R: FnMut(&mut [u8], u64) -> std::io::Result<usize>,
{
    let mut done = 0;
    let mut attempts = 0u32;
    while done < buf.len() {
        match read_once(&mut buf[done..], offset + done as u64) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("short read at byte {}", offset + done as u64),
                ))
            }
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                if attempts >= MAX_READ_RETRIES {
                    return Err(e);
                }
                attempts += 1;
                retries.inc();
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
    }
    Ok(())
}

/// Reads as much of `buf` as the backing store holds, retrying interrupted
/// reads and accumulating short ones. Returns the bytes read; fewer than
/// `buf.len()` means the end of the store was reached (a short read at a
/// log tail is normal — the caller treats it as "no more records").
/// Unlike [`read_exact_retrying`], I/O errors propagate immediately.
pub fn read_accumulating<R>(mut read_once: R, buf: &mut [u8], offset: u64) -> std::io::Result<usize>
where
    R: FnMut(&mut [u8], u64) -> std::io::Result<usize>,
{
    let mut done = 0;
    while done < buf.len() {
        match read_once(&mut buf[done..], offset + done as u64) {
            Ok(0) => break,
            Ok(n) => done += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scripted positioned reader: each call pops the next step of the
    /// schedule. `Short(n)` serves `n` bytes (of value `offset as u8`),
    /// `Eintr` fails with `Interrupted`, `Eio` with a generic error,
    /// `Eof` returns `Ok(0)`.
    #[derive(Clone, Copy, Debug)]
    enum Step {
        Short(usize),
        Eintr,
        Eio,
        Eof,
    }

    fn scripted(schedule: Vec<Step>) -> impl FnMut(&mut [u8], u64) -> std::io::Result<usize> {
        let mut steps = schedule.into_iter();
        move |buf: &mut [u8], offset: u64| match steps.next() {
            Some(Step::Short(n)) => {
                let n = n.min(buf.len());
                for (i, b) in buf[..n].iter_mut().enumerate() {
                    *b = (offset + i as u64) as u8;
                }
                Ok(n)
            }
            Some(Step::Eintr) => Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "injected EINTR",
            )),
            Some(Step::Eio) => Err(std::io::Error::other("injected EIO")),
            Some(Step::Eof) | None => Ok(0),
        }
    }

    #[test]
    fn exact_survives_a_short_read_eintr_schedule() {
        // 3 bytes, EINTR, 2 bytes, EIO (retried), 3 bytes: the caller
        // sees one seamless 8-byte read and one counted retry.
        let retries = Counter::unregistered();
        let mut buf = [0u8; 8];
        read_exact_retrying(
            scripted(vec![
                Step::Short(3),
                Step::Eintr,
                Step::Short(2),
                Step::Eio,
                Step::Short(3),
            ]),
            &mut buf,
            100,
            &retries,
        )
        .unwrap();
        // Each chunk was served at the right resumption offset.
        let want: Vec<u8> = (100u64..108).map(|o| o as u8).collect();
        assert_eq!(&buf[..], &want[..]);
        assert_eq!(retries.get(), 1);
    }

    #[test]
    fn exact_treats_early_eof_as_error() {
        let retries = Counter::unregistered();
        let mut buf = [0u8; 8];
        let err = read_exact_retrying(
            scripted(vec![Step::Short(3), Step::Eof]),
            &mut buf,
            0,
            &retries,
        )
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
        assert_eq!(retries.get(), 0);
    }

    #[test]
    fn exact_gives_up_after_retry_budget() {
        let retries = Counter::unregistered();
        let mut buf = [0u8; 4];
        let err = read_exact_retrying(
            |_b: &mut [u8], _off| Err(std::io::Error::other("injected: read EIO")),
            &mut buf,
            0,
            &retries,
        );
        assert!(err.is_err(), "persistent EIO propagates after retries");
        assert_eq!(retries.get(), u64::from(MAX_READ_RETRIES));
    }

    #[test]
    fn accumulating_stops_at_eof_and_reports_count() {
        let mut buf = [0u8; 8];
        let n = read_accumulating(
            scripted(vec![Step::Short(2), Step::Eintr, Step::Short(3), Step::Eof]),
            &mut buf,
            0,
        )
        .unwrap();
        assert_eq!(n, 5);
        let want: Vec<u8> = (0u64..5).map(|o| o as u8).collect();
        assert_eq!(&buf[..5], &want[..]);
    }

    #[test]
    fn accumulating_propagates_hard_errors() {
        let mut buf = [0u8; 8];
        let err = read_accumulating(scripted(vec![Step::Short(2), Step::Eio]), &mut buf, 0);
        assert!(err.is_err());
    }
}
