//! The async batched I/O runtime of the BeSS workspace.
//!
//! The paper's §2 multifile scatter-gather I/O and §3 client–server
//! architecture assume a storage manager that keeps many device
//! operations in flight. This crate is the seam that makes that possible:
//! an io_uring-style submission/completion API ([`IoQueue::submit`] /
//! [`IoQueue::complete`] / [`IoQueue::drain`]) over pluggable
//! [`IoDevice`]s, backed by either a fully synchronous *inline* executor
//! (deterministic — the op sequence a device observes is exactly the
//! submission sequence, which the fault-injection matrices rely on) or a
//! configurable *thread-pool* executor ([`IoRuntimeConfig`]).
//!
//! ## Layering
//!
//! Devices compose by wrapping (middleware): the fault-injection disk is
//! itself an `IoDevice` (its two-image durable/volatile model sits beneath
//! whatever op stream the queue issues), and [`SlowDevice`] wraps any
//! device with per-op latency — the slow-backend proxy the benchmarks use.
//! Integrity verify/seal hooks live one layer up, in `bess-storage`, which
//! seals slots before submission and verifies completions; see DESIGN.md
//! §17 for the full stack.
//!
//! ## Ordering and durability contract
//!
//! Per registered file:
//! * write-class ops ([`IoOp::Write`], [`IoOp::Sync`], [`IoOp::Grow`],
//!   [`IoOp::WriteSync`]) execute in submission order;
//! * reads never cross a write-class op in either direction;
//! * reads may reorder (and run concurrently) with other reads;
//! * a `Sync` fences every earlier write to its file — when the sync's
//!   completion is observed, those writes are durable.
//!
//! Ops on *different* files are unordered with respect to each other.
//! A failed op fails only its own ticket; [`IoOp::WriteSync`] is one
//! chained submission (write then sync, fail-fast) under a single ticket.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod queue;
pub mod retry;

pub use device::{FileDevice, IoDevice, MemDevice, SlowDevice};
pub use queue::{FileId, IoOp, IoOutput, IoQueue, IoResult, IoRuntimeConfig, IoTicket};
pub use retry::{read_accumulating, read_exact_retrying, MAX_READ_RETRIES};
