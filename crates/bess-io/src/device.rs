//! Pluggable I/O devices: what an [`crate::IoQueue`] executes ops against.
//!
//! A device is a flat positioned byte store with the raw UNIX contract —
//! reads may come back short or interrupted (the queue's executors apply
//! the policies in [`crate::retry`]), writes are all-or-error, `sync`
//! makes everything written so far durable. Devices compose by wrapping
//! ([`SlowDevice`]); the fault-injection disk in `bess-storage` is a
//! device too, which is how the crash/corruption matrices run unchanged
//! against the async path.

use std::fs::File;
use std::os::unix::fs::FileExt;
use std::sync::Arc;
use std::time::Duration;

use bess_lock::order::{OrderedRwLock, Rank};

/// A positioned byte store the I/O runtime can drive.
///
/// Implementations must be internally synchronized: the thread-pool
/// executor calls into a device from several workers at once (the queue
/// guarantees per-file write-class ordering, not mutual exclusion).
pub trait IoDevice: Send + Sync {
    /// Reads up to `buf.len()` bytes at `offset`, returning how many were
    /// served. `Ok(0)` means the end of the store. May return short counts
    /// and `ErrorKind::Interrupted` spuriously — executors retry.
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize>;

    /// Writes all of `data` at `offset` (growing the store if needed),
    /// or fails.
    fn write_at(&self, data: &[u8], offset: u64) -> std::io::Result<()>;

    /// Grows the store to at least `bytes` bytes.
    fn grow_to(&self, bytes: u64) -> std::io::Result<()>;

    /// Forces everything written so far to stable storage.
    fn sync(&self) -> std::io::Result<()>;

    /// Current size of the store in bytes.
    fn len(&self) -> std::io::Result<u64>;

    /// Whether the store is empty.
    fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// An in-memory device (tests, benchmarks, volatile scratch). Writes past
/// the end grow the image; `sync` optionally sleeps for a configured
/// delay, the fsync-cost proxy benchmarks use to make sync amortization
/// measurable without a real disk.
pub struct MemDevice {
    bytes: OrderedRwLock<Vec<u8>>,
    sync_delay: Duration,
}

impl MemDevice {
    /// An empty in-memory device.
    pub fn new() -> Arc<Self> {
        Self::with_contents(Vec::new())
    }

    /// A device pre-loaded with `bytes`.
    pub fn with_contents(bytes: Vec<u8>) -> Arc<Self> {
        Self::with_sync_delay(bytes, Duration::ZERO)
    }

    /// A device whose `sync` sleeps for `sync_delay` (fsync proxy).
    pub fn with_sync_delay(bytes: Vec<u8>, sync_delay: Duration) -> Arc<Self> {
        Arc::new(MemDevice {
            bytes: OrderedRwLock::new(Rank::IoMemDevice, "io.mem.bytes", bytes),
            sync_delay,
        })
    }

    /// A copy of the current image (crash simulation reads the volatile
    /// image here and truncates it to the durable watermark itself).
    pub fn image(&self) -> Vec<u8> {
        self.bytes.read().clone()
    }
}

impl IoDevice for MemDevice {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        let v = self.bytes.read();
        if offset >= v.len() as u64 {
            return Ok(0);
        }
        let avail = (v.len() as u64 - offset) as usize;
        let n = buf.len().min(avail);
        buf[..n].copy_from_slice(&v[offset as usize..offset as usize + n]);
        Ok(n)
    }

    fn write_at(&self, data: &[u8], offset: u64) -> std::io::Result<()> {
        let mut v = self.bytes.write();
        let end = offset as usize + data.len();
        if v.len() < end {
            v.resize(end, 0);
        }
        v[offset as usize..end].copy_from_slice(data);
        Ok(())
    }

    fn grow_to(&self, bytes: u64) -> std::io::Result<()> {
        let mut v = self.bytes.write();
        if (v.len() as u64) < bytes {
            v.resize(bytes as usize, 0);
        }
        Ok(())
    }

    fn sync(&self) -> std::io::Result<()> {
        if !self.sync_delay.is_zero() {
            std::thread::sleep(self.sync_delay);
        }
        Ok(())
    }

    fn len(&self) -> std::io::Result<u64> {
        Ok(self.bytes.read().len() as u64)
    }
}

/// A device over a real file, using positioned I/O (`pread`/`pwrite`).
pub struct FileDevice(File);

impl FileDevice {
    /// Wraps an open file.
    pub fn new(file: File) -> Arc<Self> {
        Arc::new(FileDevice(file))
    }
}

impl IoDevice for FileDevice {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        self.0.read_at(buf, offset)
    }

    fn write_at(&self, data: &[u8], offset: u64) -> std::io::Result<()> {
        self.0.write_all_at(data, offset)
    }

    fn grow_to(&self, bytes: u64) -> std::io::Result<()> {
        self.0.set_len(bytes)
    }

    fn sync(&self) -> std::io::Result<()> {
        self.0.sync_data()
    }

    fn len(&self) -> std::io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

/// Latency-injecting middleware: wraps any device and sleeps before each
/// op. This is the slow-backend proxy (§E24) — with a fixed per-read cost,
/// a batched scatter-gather read through the thread-pool executor overlaps
/// the waits that N sequential `read_at` calls serialize.
pub struct SlowDevice {
    inner: Arc<dyn IoDevice>,
    read_delay: Duration,
    write_delay: Duration,
    sync_delay: Duration,
}

impl SlowDevice {
    /// Wraps `inner`, delaying each op class by the given amount.
    pub fn new(
        inner: Arc<dyn IoDevice>,
        read_delay: Duration,
        write_delay: Duration,
        sync_delay: Duration,
    ) -> Arc<Self> {
        Arc::new(SlowDevice {
            inner,
            read_delay,
            write_delay,
            sync_delay,
        })
    }
}

impl IoDevice for SlowDevice {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        if !self.read_delay.is_zero() {
            std::thread::sleep(self.read_delay);
        }
        self.inner.read_at(buf, offset)
    }

    fn write_at(&self, data: &[u8], offset: u64) -> std::io::Result<()> {
        if !self.write_delay.is_zero() {
            std::thread::sleep(self.write_delay);
        }
        self.inner.write_at(data, offset)
    }

    fn grow_to(&self, bytes: u64) -> std::io::Result<()> {
        self.inner.grow_to(bytes)
    }

    fn sync(&self) -> std::io::Result<()> {
        if !self.sync_delay.is_zero() {
            std::thread::sleep(self.sync_delay);
        }
        self.inner.sync()
    }

    fn len(&self) -> std::io::Result<u64> {
        self.inner.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_device_round_trip_and_grow() {
        let dev = MemDevice::new();
        dev.write_at(b"hello", 10).unwrap(); // auto-grows
        assert_eq!(dev.len().unwrap(), 15);
        let mut buf = [0u8; 5];
        assert_eq!(dev.read_at(&mut buf, 10).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        // Reads at/past the end are a clean EOF, not an error.
        assert_eq!(dev.read_at(&mut buf, 15).unwrap(), 0);
        // Short read across the end.
        assert_eq!(dev.read_at(&mut buf, 12).unwrap(), 3);
        dev.grow_to(100).unwrap();
        assert_eq!(dev.len().unwrap(), 100);
        // grow_to never shrinks.
        dev.grow_to(50).unwrap();
        assert_eq!(dev.len().unwrap(), 100);
    }

    #[test]
    fn slow_device_delegates() {
        let inner = MemDevice::new();
        let slow = SlowDevice::new(
            inner,
            Duration::from_micros(50),
            Duration::ZERO,
            Duration::ZERO,
        );
        slow.write_at(b"abc", 0).unwrap();
        let mut buf = [0u8; 3];
        assert_eq!(slow.read_at(&mut buf, 0).unwrap(), 3);
        assert_eq!(&buf, b"abc");
        slow.sync().unwrap();
    }
}
