//! # bess-net — simulated network for the BeSS client-server architecture
//!
//! The paper's BeSS runs on a LAN of workstations (Figure 2). This crate
//! reproduces that substrate in-process: nodes register endpoints on a
//! [`Network`], exchange one-way messages and blocking RPC calls over
//! crossbeam channels, and every message is counted (and optionally
//! delayed) so experiments can report message counts and simulated wire
//! time — the dominant cost the callback-locking and copy-on-access
//! analyses care about.
//!
//! The message type is generic; `bess-server` instantiates it with the
//! BeSS protocol.
//!
//! ```
//! use bess_net::{Network, NodeId};
//! use std::time::Duration;
//!
//! let net = Network::<String>::new(Duration::ZERO);
//! let a = net.register(NodeId(1));
//! let b = net.register(NodeId(2));
//! std::thread::spawn(move || {
//!     let env = b.recv(Duration::from_secs(1)).unwrap();
//!     env.reply("pong".to_string());
//! });
//! let reply = a.call(NodeId(2), "ping".to_string(), Duration::from_secs(1)).unwrap();
//! assert_eq!(reply, "pong");
//! ```
//!
//! ## Deterministic network faults
//!
//! Mirroring the storage layer's `FaultPlan`, a [`NetFaultPlan`] counts
//! outbound messages (optionally only those from one node) and arms exactly
//! one [`NetFaultKind`] at the Nth message: drop it, delay it, deliver it
//! twice, sever the reply channel, or partition the sender. Because the
//! trigger is a message counter — no randomness, no timing dependence — a
//! partition matrix can enumerate every message index of a workload and
//! replay the exact same failure each run. Nodes can also be partitioned
//! and healed explicitly via [`Network::partition`] / [`Network::heal`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bess_lock::order::{OrderedMutex, Rank};
use bess_obs::{Counter, Group, LatencyHistogram, Registry};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Identifies a node (machine) in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Errors from network operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The destination node has no registered endpoint (or a partition
    /// separates the two nodes).
    Unreachable(NodeId),
    /// No reply (or no message) arrived within the timeout.
    Timeout,
    /// The peer dropped the connection mid-call.
    Disconnected,
}

impl NetError {
    /// Whether the error is transient from the caller's point of view: the
    /// request *may or may not* have executed, so an idempotent (or
    /// request-id-deduplicated) retry is safe and worthwhile. Unreachable
    /// destinations are not transient — the request definitely did not run,
    /// but nothing suggests a retry will fare better within one backoff
    /// window either; callers surface it instead.
    pub fn is_transient(&self) -> bool {
        matches!(self, NetError::Timeout | NetError::Disconnected)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Unreachable(n) => write!(f, "{n} is unreachable"),
            NetError::Timeout => write!(f, "network timeout"),
            NetError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for NetError {}

/// A delivered message, carrying an optional reply channel.
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
    reply: Option<Sender<M>>,
}

impl<M> Envelope<M> {
    /// Whether the sender expects a reply.
    pub fn wants_reply(&self) -> bool {
        self.reply.is_some()
    }

    /// Replies to an RPC (no-op for one-way messages whose sender went
    /// away).
    pub fn reply(self, msg: M) {
        if let Some(tx) = self.reply {
            let _ = tx.send(msg);
        }
    }
}

/// What happens to the armed message (see [`NetFaultPlan`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFaultKind {
    /// The request vanishes on the wire. A one-way send reports success (the
    /// sender cannot know); an RPC fails with [`NetError::Timeout`].
    Drop,
    /// The request is delayed by the given duration before delivery.
    Delay(Duration),
    /// The request is delivered **twice** — a retransmission the receiver
    /// must deduplicate.
    Duplicate,
    /// The request is delivered and executed, but the reply is lost: the
    /// callee sees a normal RPC, the caller waits out its timeout. This is
    /// the classic "did my commit land?" ambiguity.
    DropReply,
    /// The sending node is partitioned from the network (as if its cable
    /// were pulled): this message fails with [`NetError::Disconnected`] and
    /// all further traffic to or from the node fails with
    /// [`NetError::Unreachable`] until [`Network::heal`].
    Disconnect,
}

struct ArmedNetFault {
    /// Only messages from this node count (and can fault); `None` counts
    /// every message.
    from: Option<NodeId>,
    /// 0-based index among counted messages.
    at: u64,
    kind: NetFaultKind,
}

/// A deterministic network-fault plan, the wire-level twin of the storage
/// layer's `FaultPlan`: it counts outbound messages (sends and RPC
/// requests) and fires exactly one fault at the Nth counted message, then
/// disarms so retries make progress. Arm a plan on a [`Network`] with
/// [`Network::arm`].
///
/// When built with a `from` filter, only that node's messages are counted,
/// which keeps the index deterministic even while other nodes chatter
/// concurrently.
pub struct NetFaultPlan {
    // LINT: allow(raw-counter) — fault-plan op counter consulted by the armed trigger, not a metric
    count: AtomicU64,
    armed: OrderedMutex<Option<ArmedNetFault>>,
    // LINT: allow(raw-counter) — single-shot fault-plan trip latch, not a metric
    fired: AtomicU64,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan {
            count: AtomicU64::new(0),
            armed: OrderedMutex::new(Rank::NetFaultArmed, "net.fault.armed", None),
            fired: AtomicU64::new(0),
        }
    }
}

impl NetFaultPlan {
    /// A plan with no armed fault (pure message counting).
    pub fn unarmed() -> Arc<Self> {
        Arc::new(NetFaultPlan::default())
    }

    /// A plan that fires `kind` at the `nth` (0-based) message from any
    /// node.
    pub fn armed(nth: u64, kind: NetFaultKind) -> Arc<Self> {
        let plan = NetFaultPlan::default();
        *plan.armed.lock() = Some(ArmedNetFault {
            from: None,
            at: nth,
            kind,
        });
        Arc::new(plan)
    }

    /// A plan that counts only messages sent by `from` and fires `kind` at
    /// the `nth` (0-based) one.
    pub fn armed_from(from: NodeId, nth: u64, kind: NetFaultKind) -> Arc<Self> {
        let plan = NetFaultPlan::default();
        *plan.armed.lock() = Some(ArmedNetFault {
            from: Some(from),
            at: nth,
            kind,
        });
        Arc::new(plan)
    }

    /// Counted messages so far. For a filtered plan this counts only the
    /// filtered node's messages.
    pub fn msgs(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// How many faults have fired (0 or 1; a plan disarms after firing).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Counts one outbound message from `from` and returns the fault to
    /// inject, if this is the armed message.
    fn on_msg(&self, from: NodeId) -> Option<NetFaultKind> {
        // Resolve the filter first so an unrelated node's traffic does not
        // advance a filtered plan's counter.
        {
            let armed = self.armed.lock();
            if let Some(f) = armed.as_ref() {
                if f.from.is_some_and(|n| n != from) {
                    return None;
                }
            }
        }
        let n = self.count.fetch_add(1, Ordering::Relaxed);
        let mut armed = self.armed.lock();
        match armed.as_ref() {
            Some(f) if f.at == n => {
                let kind = f.kind;
                *armed = None;
                self.fired.fetch_add(1, Ordering::Relaxed);
                Some(kind)
            }
            _ => None,
        }
    }
}

/// Counters kept by a [`Network`] — [`bess_obs`] handles registered under
/// the `net.` prefix of [`Network::metrics`].
#[derive(Debug)]
pub struct NetStats {
    /// One-way messages sent (`net.sends`).
    pub sends: Counter,
    /// RPC calls completed, request + reply pairs (`net.calls`).
    pub calls: Counter,
    /// Messages dropped for unreachable (or partitioned) nodes
    /// (`net.unreachable`).
    pub unreachable: Counter,
    /// Requests or replies swallowed by an injected fault (`net.faulted`).
    pub faulted: Counter,
    /// Extra copies delivered by injected duplication (`net.duplicated`).
    pub duplicated: Counter,
    /// Control messages that rode an existing frame as piggybacked
    /// trailers instead of travelling standalone (`net.trailers.carried`).
    /// Incremented by the protocol layer at each wrap site.
    pub trailers: Counter,
    /// Standalone heartbeats suppressed because recent traffic already
    /// renewed the lease (`net.heartbeats.suppressed`). Incremented by the
    /// protocol layer's idle tick.
    pub heartbeats_suppressed: Counter,
}

impl NetStats {
    fn new(group: &Group) -> NetStats {
        NetStats {
            sends: group.counter("sends"),
            calls: group.counter("calls"),
            unreachable: group.counter("unreachable"),
            faulted: group.counter("faulted"),
            duplicated: group.counter("duplicated"),
            trailers: group.counter("trailers.carried"),
            heartbeats_suppressed: group.counter("heartbeats.suppressed"),
        }
    }

    /// Messages on the wire right now: a send is one, a call is two
    /// (request + reply).
    pub fn messages(&self) -> u64 {
        self.sends.get() + 2 * self.calls.get()
    }
}

/// The simulated network.
pub struct Network<M> {
    endpoints: Mutex<HashMap<u32, Sender<Envelope<M>>>>,
    partitioned: OrderedMutex<HashSet<u32>>,
    plan: OrderedMutex<Arc<NetFaultPlan>>,
    latency: Duration,
    group: Group,
    stats: NetStats,
    /// Round-trip latency of successful RPCs (`net.rtt.ns`).
    rtt_ns: LatencyHistogram,
}

impl<M: Clone + Send + 'static> Network<M> {
    /// Creates a network whose RPCs incur `latency` per direction.
    pub fn new(latency: Duration) -> Arc<Self> {
        let group = Registry::new().group("net");
        let stats = NetStats::new(&group);
        let rtt_ns = group.histogram("rtt.ns");
        Arc::new(Network {
            endpoints: Mutex::new(HashMap::new()),
            partitioned: OrderedMutex::new(Rank::NetPartition, "net.partitioned", HashSet::new()),
            plan: OrderedMutex::new(Rank::NetPlanSlot, "net.plan", NetFaultPlan::unarmed()),
            latency,
            group,
            stats,
            rtt_ns,
        })
    }

    /// The network's metric group (`net.*` in its registry).
    pub fn metrics(&self) -> &Group {
        &self.group
    }

    /// Message counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Registers a node, returning its endpoint. Re-registering a node
    /// replaces the previous endpoint (a "rebooted machine").
    pub fn register(self: &Arc<Self>, node: NodeId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        self.endpoints.lock().insert(node.0, tx);
        Endpoint {
            node,
            net: Arc::clone(self),
            rx,
        }
    }

    /// Removes a node (a crashed machine: its queued messages vanish).
    pub fn unregister(&self, node: NodeId) {
        self.endpoints.lock().remove(&node.0);
    }

    /// Installs a fault plan; the previous plan is discarded. Pass
    /// [`NetFaultPlan::unarmed`] to clear faults (partitions persist until
    /// [`Self::heal`]).
    pub fn arm(&self, plan: Arc<NetFaultPlan>) {
        *self.plan.lock() = plan;
    }

    /// The plan currently consulted on every send.
    pub fn plan(&self) -> Arc<NetFaultPlan> {
        Arc::clone(&self.plan.lock())
    }

    /// Partitions `node`: all traffic to or from it fails with
    /// [`NetError::Unreachable`] until [`Self::heal`]. Messages already in
    /// its receive queue are unaffected (they were on the wire).
    pub fn partition(&self, node: NodeId) {
        self.partitioned.lock().insert(node.0);
    }

    /// Reconnects a previously partitioned node.
    pub fn heal(&self, node: NodeId) {
        self.partitioned.lock().remove(&node.0);
    }

    /// Whether `node` is currently partitioned.
    pub fn is_partitioned(&self, node: NodeId) -> bool {
        self.partitioned.lock().contains(&node.0)
    }

    fn sender_to(&self, to: NodeId) -> Result<Sender<Envelope<M>>, NetError> {
        self.endpoints
            .lock()
            .get(&to.0)
            .cloned()
            .ok_or(NetError::Unreachable(to))
    }

    /// Fails if a partition separates `from` and `to`.
    fn check_partition(&self, from: NodeId, to: NodeId) -> Result<(), NetError> {
        let partitioned = self.partitioned.lock();
        if partitioned.contains(&from.0) || partitioned.contains(&to.0) {
            drop(partitioned);
            self.stats.unreachable.inc();
            return Err(NetError::Unreachable(to));
        }
        Ok(())
    }

    /// The single outbound path for one-way messages. All faults hook here.
    fn do_send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), NetError> {
        self.check_partition(from, to)?;
        let fault = self.plan().on_msg(from);
        match fault {
            Some(NetFaultKind::Drop) => {
                // The datagram vanishes; a one-way sender cannot tell.
                self.stats.faulted.inc();
                return Ok(());
            }
            Some(NetFaultKind::Disconnect) => {
                self.partition(from);
                self.stats.faulted.inc();
                return Err(NetError::Disconnected);
            }
            Some(NetFaultKind::Delay(d)) => std::thread::sleep(d),
            // DropReply is meaningless for a one-way message.
            Some(NetFaultKind::Duplicate) | Some(NetFaultKind::DropReply) | None => {}
        }
        let tx = self.sender_to(to).inspect_err(|_| {
            self.stats.unreachable.inc();
        })?;
        if fault == Some(NetFaultKind::Duplicate) {
            tx.send(Envelope {
                from,
                msg: msg.clone(),
                reply: None,
            })
            .map_err(|_| NetError::Disconnected)?;
            self.stats.duplicated.inc();
        }
        tx.send(Envelope {
            from,
            msg,
            reply: None,
        })
        .map_err(|_| NetError::Disconnected)?;
        self.stats.sends.inc();
        Ok(())
    }

    /// The single outbound path for RPCs. All faults hook here.
    fn do_call(&self, from: NodeId, to: NodeId, msg: M, timeout: Duration) -> Result<M, NetError> {
        // Recorded into net.rtt.ns only on the success exit below, so
        // injected timeouts and partitions don't pollute the latency tail.
        let started = std::time::Instant::now();
        self.check_partition(from, to)?;
        let fault = self.plan().on_msg(from);
        match fault {
            Some(NetFaultKind::Drop) => {
                // The request never arrives; the caller's wait is the
                // timeout itself, reported without actually sleeping it.
                self.stats.faulted.inc();
                return Err(NetError::Timeout);
            }
            Some(NetFaultKind::Disconnect) => {
                self.partition(from);
                self.stats.faulted.inc();
                return Err(NetError::Disconnected);
            }
            Some(NetFaultKind::Delay(d)) => std::thread::sleep(d),
            Some(NetFaultKind::Duplicate) | Some(NetFaultKind::DropReply) | None => {}
        }
        let tx = self.sender_to(to).inspect_err(|_| {
            self.stats.unreachable.inc();
        })?;
        let (reply_tx, reply_rx) = bounded(1);
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        match fault {
            Some(NetFaultKind::DropReply) => {
                // The callee executes and replies into a severed channel;
                // the caller times out below, none the wiser.
                let (dead_tx, _dead_rx) = bounded(1);
                tx.send(Envelope {
                    from,
                    msg,
                    reply: Some(dead_tx),
                })
                .map_err(|_| NetError::Disconnected)?;
                self.stats.faulted.inc();
            }
            Some(NetFaultKind::Duplicate) => {
                tx.send(Envelope {
                    from,
                    msg: msg.clone(),
                    reply: Some(reply_tx.clone()),
                })
                .map_err(|_| NetError::Disconnected)?;
                tx.send(Envelope {
                    from,
                    msg,
                    reply: Some(reply_tx),
                })
                .map_err(|_| NetError::Disconnected)?;
                self.stats.duplicated.inc();
            }
            _ => {
                tx.send(Envelope {
                    from,
                    msg,
                    reply: Some(reply_tx),
                })
                .map_err(|_| NetError::Disconnected)?;
            }
        }
        let reply = reply_rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })?;
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        self.stats.calls.inc();
        self.rtt_ns.record(started.elapsed().as_nanos() as u64);
        Ok(reply)
    }

    /// Creates an outbound-only handle that sends and calls as `node`
    /// without owning the node's receive queue. Server worker threads use
    /// this to issue callbacks while the main loop owns the endpoint.
    pub fn caller(self: &Arc<Self>, node: NodeId) -> Caller<M> {
        Caller {
            node,
            net: Arc::clone(self),
        }
    }
}

/// An outbound-only attachment: can send and call, cannot receive.
#[derive(Clone)]
pub struct Caller<M> {
    node: NodeId,
    net: Arc<Network<M>>,
}

impl<M: Clone + Send + 'static> Caller<M> {
    /// The identity messages are sent as.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning network's message counters (for protocol layers that
    /// account piggybacked trailers and suppressed heartbeats).
    pub fn stats(&self) -> &NetStats {
        self.net.stats()
    }

    /// Sends a one-way message. See [`Endpoint::send`].
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        self.net.do_send(self.node, to, msg)
    }

    /// Performs a blocking RPC. See [`Endpoint::call`].
    pub fn call(&self, to: NodeId, msg: M, timeout: Duration) -> Result<M, NetError> {
        self.net.do_call(self.node, to, msg, timeout)
    }
}

/// One node's attachment to the network.
pub struct Endpoint<M> {
    node: NodeId,
    net: Arc<Network<M>>,
    rx: Receiver<Envelope<M>>,
}

impl<M: Clone + Send + 'static> Endpoint<M> {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning network.
    pub fn network(&self) -> &Arc<Network<M>> {
        &self.net
    }

    /// Sends a one-way message.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        self.net.do_send(self.node, to, msg)
    }

    /// Performs a blocking RPC: sends `msg` to `to` and waits up to
    /// `timeout` for the reply. Each direction incurs the network latency.
    pub fn call(&self, to: NodeId, msg: M, timeout: Duration) -> Result<M, NetError> {
        self.net.do_call(self.node, to, msg, timeout)
    }

    /// Waits up to `timeout` for an incoming message.
    pub fn recv(&self, timeout: Duration) -> Result<Envelope<M>, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Returns a pending message if one is queued.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn one_way_send() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        a.send(NodeId(2), 42).unwrap();
        let env = b.recv(Duration::from_secs(1)).unwrap();
        assert_eq!(env.msg, 42);
        assert_eq!(env.from, NodeId(1));
        assert!(!env.wants_reply());
        assert_eq!(net.stats().sends.get(), 1);
    }

    #[test]
    fn rpc_round_trip() {
        let net = Network::<String>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let server = thread::spawn(move || {
            let env = b.recv(Duration::from_secs(5)).unwrap();
            assert!(env.wants_reply());
            let msg = env.msg.clone();
            env.reply(format!("echo:{msg}"));
        });
        let reply = a
            .call(NodeId(2), "hi".into(), Duration::from_secs(5))
            .unwrap();
        assert_eq!(reply, "echo:hi");
        server.join().unwrap();
        assert_eq!(net.stats().calls.get(), 1);
        assert_eq!(net.stats().messages(), 2);
    }

    #[test]
    fn unreachable_node() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        assert_eq!(a.send(NodeId(9), 1), Err(NetError::Unreachable(NodeId(9))));
        assert_eq!(net.stats().unreachable.get(), 1);
    }

    #[test]
    fn call_times_out_when_peer_ignores() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2)); // never replies
        assert_eq!(
            a.call(NodeId(2), 1, Duration::from_millis(50)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn unregister_models_crash() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2));
        net.unregister(NodeId(2));
        assert!(matches!(a.send(NodeId(2), 1), Err(NetError::Unreachable(_))));
    }

    #[test]
    fn latency_is_applied_to_calls() {
        let net = Network::<u32>::new(Duration::from_millis(20));
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        thread::spawn(move || {
            let env = b.recv(Duration::from_secs(5)).unwrap();
            env.reply(0);
        });
        let t0 = std::time::Instant::now();
        a.call(NodeId(2), 1, Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(40), "two hops");
    }

    #[test]
    fn concurrent_servers_and_clients() {
        let net = Network::<u64>::new(Duration::ZERO);
        let server_ep = net.register(NodeId(0));
        let server = thread::spawn(move || {
            let mut served = 0;
            while let Ok(env) = server_ep.recv(Duration::from_millis(300)) {
                let v = env.msg;
                env.reply(v * 2);
                served += 1;
            }
            served
        });
        let mut clients = Vec::new();
        for c in 1..=4u32 {
            let ep = net.register(NodeId(c));
            clients.push(thread::spawn(move || {
                for i in 0..25u64 {
                    let r = ep.call(NodeId(0), i, Duration::from_secs(5)).unwrap();
                    assert_eq!(r, i * 2);
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.join().unwrap(), 100);
    }

    // ---- fault injection ---------------------------------------------------

    #[test]
    fn drop_faults_exactly_the_nth_call() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let server = thread::spawn(move || {
            let mut served = 0;
            while let Ok(env) = b.recv(Duration::from_millis(300)) {
                let v = env.msg;
                env.reply(v);
                served += 1;
            }
            served
        });
        let plan = NetFaultPlan::armed(1, NetFaultKind::Drop);
        net.arm(Arc::clone(&plan));
        assert_eq!(a.call(NodeId(2), 0, Duration::from_secs(1)), Ok(0));
        assert_eq!(
            a.call(NodeId(2), 1, Duration::from_millis(50)),
            Err(NetError::Timeout),
            "second message dropped"
        );
        assert_eq!(a.call(NodeId(2), 2, Duration::from_secs(1)), Ok(2));
        assert_eq!(plan.fired(), 1);
        assert_eq!(server.join().unwrap(), 2, "dropped request never arrived");
        assert_eq!(net.stats().faulted.get(), 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let server = thread::spawn(move || {
            let mut served = 0;
            while let Ok(env) = b.recv(Duration::from_millis(300)) {
                let v = env.msg;
                env.reply(v);
                served += 1;
            }
            served
        });
        net.arm(NetFaultPlan::armed(0, NetFaultKind::Duplicate));
        assert_eq!(a.call(NodeId(2), 7, Duration::from_secs(1)), Ok(7));
        assert_eq!(server.join().unwrap(), 2, "one request, two deliveries");
        assert_eq!(net.stats().duplicated.get(), 1);
    }

    #[test]
    fn drop_reply_executes_but_times_out() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let server = thread::spawn(move || {
            let mut served = 0;
            while let Ok(env) = b.recv(Duration::from_millis(300)) {
                let v = env.msg;
                assert!(env.wants_reply(), "callee sees an ordinary RPC");
                env.reply(v);
                served += 1;
            }
            served
        });
        net.arm(NetFaultPlan::armed(0, NetFaultKind::DropReply));
        assert_eq!(
            a.call(NodeId(2), 9, Duration::from_millis(50)),
            Err(NetError::Timeout),
            "the reply was lost"
        );
        assert_eq!(server.join().unwrap(), 1, "the request WAS executed");
    }

    #[test]
    fn disconnect_partitions_the_sender_until_heal() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2));
        net.arm(NetFaultPlan::armed_from(NodeId(1), 0, NetFaultKind::Disconnect));
        assert_eq!(a.send(NodeId(2), 1), Err(NetError::Disconnected));
        assert!(net.is_partitioned(NodeId(1)));
        assert_eq!(
            a.send(NodeId(2), 2),
            Err(NetError::Unreachable(NodeId(2))),
            "still cut off"
        );
        // Inbound traffic is cut too.
        let c = net.register(NodeId(3));
        assert_eq!(c.send(NodeId(1), 3), Err(NetError::Unreachable(NodeId(1))));
        net.heal(NodeId(1));
        a.send(NodeId(2), 4).unwrap();
    }

    #[test]
    fn filtered_plan_ignores_other_nodes() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let c = net.register(NodeId(3));
        let b = net.register(NodeId(2));
        let plan = NetFaultPlan::armed_from(NodeId(1), 1, NetFaultKind::Drop);
        net.arm(Arc::clone(&plan));
        // Node 3 chatters; none of it advances node 1's counter.
        for i in 0..5 {
            c.send(NodeId(2), i).unwrap();
        }
        a.send(NodeId(2), 100).unwrap(); // node 1 msg #0: delivered
        a.send(NodeId(2), 101).unwrap(); // node 1 msg #1: dropped (send reports Ok)
        a.send(NodeId(2), 102).unwrap(); // disarmed again
        let mut got = Vec::new();
        while let Some(env) = b.try_recv() {
            if env.from == NodeId(1) {
                got.push(env.msg);
            }
        }
        assert_eq!(got, vec![100, 102]);
        assert_eq!(plan.fired(), 1);
    }

    #[test]
    fn delay_defers_delivery() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        net.arm(NetFaultPlan::armed(
            0,
            NetFaultKind::Delay(Duration::from_millis(30)),
        ));
        thread::spawn(move || {
            let env = b.recv(Duration::from_secs(5)).unwrap();
            env.reply(0);
        });
        let t0 = std::time::Instant::now();
        a.call(NodeId(2), 1, Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }
}
