//! # bess-net — simulated network for the BeSS client-server architecture
//!
//! The paper's BeSS runs on a LAN of workstations (Figure 2). This crate
//! reproduces that substrate in-process: nodes register endpoints on a
//! [`Network`], exchange one-way messages and blocking RPC calls over
//! crossbeam channels, and every message is counted (and optionally
//! delayed) so experiments can report message counts and simulated wire
//! time — the dominant cost the callback-locking and copy-on-access
//! analyses care about.
//!
//! The message type is generic; `bess-server` instantiates it with the
//! BeSS protocol.
//!
//! ```
//! use bess_net::{Network, NodeId};
//! use std::time::Duration;
//!
//! let net = Network::<String>::new(Duration::ZERO);
//! let a = net.register(NodeId(1));
//! let b = net.register(NodeId(2));
//! std::thread::spawn(move || {
//!     let env = b.recv(Duration::from_secs(1)).unwrap();
//!     env.reply("pong".to_string());
//! });
//! let reply = a.call(NodeId(2), "ping".to_string(), Duration::from_secs(1)).unwrap();
//! assert_eq!(reply, "pong");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

/// Identifies a node (machine) in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Errors from network operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetError {
    /// The destination node has no registered endpoint.
    Unreachable(NodeId),
    /// No reply (or no message) arrived within the timeout.
    Timeout,
    /// The peer dropped the connection mid-call.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Unreachable(n) => write!(f, "{n} is unreachable"),
            NetError::Timeout => write!(f, "network timeout"),
            NetError::Disconnected => write!(f, "peer disconnected"),
        }
    }
}

impl std::error::Error for NetError {}

/// A delivered message, carrying an optional reply channel.
pub struct Envelope<M> {
    /// The sending node.
    pub from: NodeId,
    /// The payload.
    pub msg: M,
    reply: Option<Sender<M>>,
}

impl<M> Envelope<M> {
    /// Whether the sender expects a reply.
    pub fn wants_reply(&self) -> bool {
        self.reply.is_some()
    }

    /// Replies to an RPC (no-op for one-way messages whose sender went
    /// away).
    pub fn reply(self, msg: M) {
        if let Some(tx) = self.reply {
            let _ = tx.send(msg);
        }
    }
}

/// Counters kept by a [`Network`].
#[derive(Debug, Default)]
pub struct NetStats {
    /// One-way messages sent.
    pub sends: AtomicU64,
    /// RPC calls completed (request + reply pairs).
    pub calls: AtomicU64,
    /// Messages dropped for unreachable nodes.
    pub unreachable: AtomicU64,
}

impl NetStats {
    /// Takes a snapshot for reporting.
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            unreachable: self.unreachable.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// One-way messages sent.
    pub sends: u64,
    /// RPC calls completed.
    pub calls: u64,
    /// Undeliverable messages.
    pub unreachable: u64,
}

impl NetStatsSnapshot {
    /// Total messages on the wire (a call is two messages).
    pub fn messages(&self) -> u64 {
        self.sends + 2 * self.calls
    }

    /// Element-wise difference `self - earlier`.
    pub fn since(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        NetStatsSnapshot {
            sends: self.sends - earlier.sends,
            calls: self.calls - earlier.calls,
            unreachable: self.unreachable - earlier.unreachable,
        }
    }
}

/// The simulated network.
pub struct Network<M> {
    endpoints: Mutex<HashMap<u32, Sender<Envelope<M>>>>,
    latency: Duration,
    stats: NetStats,
}

impl<M: Send + 'static> Network<M> {
    /// Creates a network whose RPCs incur `latency` per direction.
    pub fn new(latency: Duration) -> Arc<Self> {
        Arc::new(Network {
            endpoints: Mutex::new(HashMap::new()),
            latency,
            stats: NetStats::default(),
        })
    }

    /// Message counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The configured one-way latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Registers a node, returning its endpoint. Re-registering a node
    /// replaces the previous endpoint (a "rebooted machine").
    pub fn register(self: &Arc<Self>, node: NodeId) -> Endpoint<M> {
        let (tx, rx) = unbounded();
        self.endpoints.lock().insert(node.0, tx);
        Endpoint {
            node,
            net: Arc::clone(self),
            rx,
        }
    }

    /// Removes a node (a crashed machine: its queued messages vanish).
    pub fn unregister(&self, node: NodeId) {
        self.endpoints.lock().remove(&node.0);
    }

    fn sender_to(&self, to: NodeId) -> Result<Sender<Envelope<M>>, NetError> {
        self.endpoints
            .lock()
            .get(&to.0)
            .cloned()
            .ok_or(NetError::Unreachable(to))
    }

    /// Creates an outbound-only handle that sends and calls as `node`
    /// without owning the node's receive queue. Server worker threads use
    /// this to issue callbacks while the main loop owns the endpoint.
    pub fn caller(self: &Arc<Self>, node: NodeId) -> Caller<M> {
        Caller {
            node,
            net: Arc::clone(self),
        }
    }
}

/// An outbound-only attachment: can send and call, cannot receive.
#[derive(Clone)]
pub struct Caller<M> {
    node: NodeId,
    net: Arc<Network<M>>,
}

impl<M: Send + 'static> Caller<M> {
    /// The identity messages are sent as.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends a one-way message. See [`Endpoint::send`].
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        let tx = self.net.sender_to(to).inspect_err(|_| {
            AtomicU64::fetch_add(&self.net.stats.unreachable, 1, Ordering::Relaxed);
        })?;
        tx.send(Envelope {
            from: self.node,
            msg,
            reply: None,
        })
        .map_err(|_| NetError::Disconnected)?;
        AtomicU64::fetch_add(&self.net.stats.sends, 1, Ordering::Relaxed);
        Ok(())
    }

    /// Performs a blocking RPC. See [`Endpoint::call`].
    pub fn call(&self, to: NodeId, msg: M, timeout: Duration) -> Result<M, NetError> {
        let tx = self.net.sender_to(to).inspect_err(|_| {
            AtomicU64::fetch_add(&self.net.stats.unreachable, 1, Ordering::Relaxed);
        })?;
        let (reply_tx, reply_rx) = bounded(1);
        if !self.net.latency.is_zero() {
            std::thread::sleep(self.net.latency);
        }
        tx.send(Envelope {
            from: self.node,
            msg,
            reply: Some(reply_tx),
        })
        .map_err(|_| NetError::Disconnected)?;
        let reply = reply_rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })?;
        if !self.net.latency.is_zero() {
            std::thread::sleep(self.net.latency);
        }
        AtomicU64::fetch_add(&self.net.stats.calls, 1, Ordering::Relaxed);
        Ok(reply)
    }
}

/// One node's attachment to the network.
pub struct Endpoint<M> {
    node: NodeId,
    net: Arc<Network<M>>,
    rx: Receiver<Envelope<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The owning network.
    pub fn network(&self) -> &Arc<Network<M>> {
        &self.net
    }

    /// Sends a one-way message.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), NetError> {
        let tx = self.net.sender_to(to).inspect_err(|_| {
            AtomicU64::fetch_add(&self.net.stats.unreachable, 1, Ordering::Relaxed);
        })?;
        tx.send(Envelope {
            from: self.node,
            msg,
            reply: None,
        })
        .map_err(|_| NetError::Disconnected)?;
        AtomicU64::fetch_add(&self.net.stats.sends, 1, Ordering::Relaxed);
        Ok(())
    }

    /// Performs a blocking RPC: sends `msg` to `to` and waits up to
    /// `timeout` for the reply. Each direction incurs the network latency.
    pub fn call(&self, to: NodeId, msg: M, timeout: Duration) -> Result<M, NetError> {
        let tx = self.net.sender_to(to).inspect_err(|_| {
            AtomicU64::fetch_add(&self.net.stats.unreachable, 1, Ordering::Relaxed);
        })?;
        let (reply_tx, reply_rx) = bounded(1);
        if !self.net.latency.is_zero() {
            std::thread::sleep(self.net.latency);
        }
        tx.send(Envelope {
            from: self.node,
            msg,
            reply: Some(reply_tx),
        })
        .map_err(|_| NetError::Disconnected)?;
        let reply = reply_rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })?;
        if !self.net.latency.is_zero() {
            std::thread::sleep(self.net.latency);
        }
        AtomicU64::fetch_add(&self.net.stats.calls, 1, Ordering::Relaxed);
        Ok(reply)
    }

    /// Waits up to `timeout` for an incoming message.
    pub fn recv(&self, timeout: Duration) -> Result<Envelope<M>, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            crossbeam::channel::RecvTimeoutError::Timeout => NetError::Timeout,
            crossbeam::channel::RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Returns a pending message if one is queued.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn one_way_send() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        a.send(NodeId(2), 42).unwrap();
        let env = b.recv(Duration::from_secs(1)).unwrap();
        assert_eq!(env.msg, 42);
        assert_eq!(env.from, NodeId(1));
        assert!(!env.wants_reply());
        assert_eq!(net.stats().snapshot().sends, 1);
    }

    #[test]
    fn rpc_round_trip() {
        let net = Network::<String>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        let server = thread::spawn(move || {
            let env = b.recv(Duration::from_secs(5)).unwrap();
            assert!(env.wants_reply());
            let msg = env.msg.clone();
            env.reply(format!("echo:{msg}"));
        });
        let reply = a
            .call(NodeId(2), "hi".into(), Duration::from_secs(5))
            .unwrap();
        assert_eq!(reply, "echo:hi");
        server.join().unwrap();
        assert_eq!(net.stats().snapshot().calls, 1);
        assert_eq!(net.stats().snapshot().messages(), 2);
    }

    #[test]
    fn unreachable_node() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        assert_eq!(a.send(NodeId(9), 1), Err(NetError::Unreachable(NodeId(9))));
        assert_eq!(net.stats().snapshot().unreachable, 1);
    }

    #[test]
    fn call_times_out_when_peer_ignores() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2)); // never replies
        assert_eq!(
            a.call(NodeId(2), 1, Duration::from_millis(50)),
            Err(NetError::Timeout)
        );
    }

    #[test]
    fn unregister_models_crash() {
        let net = Network::<u32>::new(Duration::ZERO);
        let a = net.register(NodeId(1));
        let _b = net.register(NodeId(2));
        net.unregister(NodeId(2));
        assert!(matches!(a.send(NodeId(2), 1), Err(NetError::Unreachable(_))));
    }

    #[test]
    fn latency_is_applied_to_calls() {
        let net = Network::<u32>::new(Duration::from_millis(20));
        let a = net.register(NodeId(1));
        let b = net.register(NodeId(2));
        thread::spawn(move || {
            let env = b.recv(Duration::from_secs(5)).unwrap();
            env.reply(0);
        });
        let t0 = std::time::Instant::now();
        a.call(NodeId(2), 1, Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(40), "two hops");
    }

    #[test]
    fn concurrent_servers_and_clients() {
        let net = Network::<u64>::new(Duration::ZERO);
        let server_ep = net.register(NodeId(0));
        let server = thread::spawn(move || {
            let mut served = 0;
            while let Ok(env) = server_ep.recv(Duration::from_millis(300)) {
                let v = env.msg;
                env.reply(v * 2);
                served += 1;
            }
            served
        });
        let mut clients = Vec::new();
        for c in 1..=4u32 {
            let ep = net.register(NodeId(c));
            clients.push(thread::spawn(move || {
                for i in 0..25u64 {
                    let r = ep.call(NodeId(0), i, Duration::from_secs(5)).unwrap();
                    assert_eq!(r, i * 2);
                }
            }));
        }
        for c in clients {
            c.join().unwrap();
        }
        assert_eq!(server.join().unwrap(), 100);
    }
}
