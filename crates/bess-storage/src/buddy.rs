//! The binary buddy allocator used within each extent.
//!
//! "Storage areas are partitioned into a number of *extents*, and allocation
//! of disk segments from one of these extents is based on the binary buddy
//! system" (§2 of the paper, citing Biliris, ICDE 1992). Blocks are powers
//! of two pages; freeing coalesces a block with its buddy whenever the buddy
//! is also free, restoring larger blocks.

use std::collections::{BTreeSet, HashMap};

use crate::error::{StorageError, StorageResult};

/// Buddy allocator state for one extent of `2^log2_pages` pages.
///
/// Offsets are page offsets from the start of the extent's data pages.
#[derive(Debug, Clone)]
pub struct BuddyExtent {
    log2_pages: u8,
    /// `free_lists[order]` holds offsets of free blocks of `2^order` pages.
    free_lists: Vec<BTreeSet<u32>>,
    /// Allocated blocks: offset → order. Also detects double frees.
    allocated: HashMap<u32, u8>,
}

impl BuddyExtent {
    /// Creates an extent of `2^log2_pages` pages, fully free.
    pub fn new(log2_pages: u8) -> Self {
        assert!(log2_pages <= 20, "extent too large");
        let mut free_lists = vec![BTreeSet::new(); log2_pages as usize + 1];
        free_lists[log2_pages as usize].insert(0);
        BuddyExtent {
            log2_pages,
            free_lists,
            allocated: HashMap::new(),
        }
    }

    /// Total pages in the extent.
    pub fn total_pages(&self) -> u32 {
        1 << self.log2_pages
    }

    /// Pages currently free.
    pub fn free_pages(&self) -> u32 {
        self.free_lists
            .iter()
            .enumerate()
            .map(|(order, set)| (set.len() as u32) << order)
            .sum()
    }

    /// Pages currently allocated.
    pub fn allocated_pages(&self) -> u32 {
        self.total_pages() - self.free_pages()
    }

    /// The largest order with a free block, if any.
    pub fn largest_free_order(&self) -> Option<u8> {
        (0..=self.log2_pages).rev().find(|&o| !self.free_lists[o as usize].is_empty())
    }

    /// Allocates a block of `2^order` pages, splitting larger blocks as
    /// needed. Returns the block's page offset.
    pub fn alloc(&mut self, order: u8) -> Option<u32> {
        if order > self.log2_pages {
            return None;
        }
        // Find the smallest free block of at least the requested order.
        let from = (order..=self.log2_pages)
            .find(|&o| !self.free_lists[o as usize].is_empty())?;
        let offset = *self.free_lists[from as usize].iter().next().expect("non-empty");
        self.free_lists[from as usize].remove(&offset);
        // Split down to the requested order, returning the buddies to the
        // free lists.
        let mut current = from;
        while current > order {
            current -= 1;
            let buddy = offset + (1u32 << current);
            self.free_lists[current as usize].insert(buddy);
        }
        self.allocated.insert(offset, order);
        Some(offset)
    }

    /// Frees the block of `2^order` pages at `offset`, coalescing with free
    /// buddies.
    pub fn free(&mut self, offset: u32, order: u8) -> StorageResult<()> {
        match self.allocated.remove(&offset) {
            Some(stored) if stored == order => {}
            Some(stored) => {
                self.allocated.insert(offset, stored);
                return Err(StorageError::BadBlock(format!(
                    "free of order {order} at offset {offset}, but block has order {stored}"
                )));
            }
            None => {
                return Err(StorageError::BadBlock(format!(
                    "free of unallocated block at offset {offset}"
                )));
            }
        }
        let mut offset = offset;
        let mut order = order;
        while order < self.log2_pages {
            let buddy = offset ^ (1u32 << order);
            if !self.free_lists[order as usize].remove(&buddy) {
                break;
            }
            offset = offset.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(offset);
        Ok(())
    }

    /// Marks the block of `2^order` pages at `offset` as allocated, carving
    /// it out of whatever free block currently contains it. Used when
    /// rebuilding allocator state from the persisted allocation table.
    pub fn carve(&mut self, offset: u32, order: u8) -> StorageResult<()> {
        if !offset.is_multiple_of(1u32 << order) || offset + (1u32 << order) > self.total_pages() {
            return Err(StorageError::BadBlock(format!(
                "carve: misaligned or out-of-range block {offset}/{order}"
            )));
        }
        // Find the free block containing [offset, offset + 2^order).
        let containing = (order..=self.log2_pages).find_map(|o| {
            let base = offset & !((1u32 << o) - 1);
            self.free_lists[o as usize].contains(&base).then_some((base, o))
        });
        let Some((base, big)) = containing else {
            return Err(StorageError::BadBlock(format!(
                "carve: block {offset}/{order} not free"
            )));
        };
        self.free_lists[big as usize].remove(&base);
        // Split down, keeping the halves that do not contain the target.
        let mut cur_base = base;
        let mut cur_order = big;
        while cur_order > order {
            cur_order -= 1;
            let half = 1u32 << cur_order;
            if offset < cur_base + half {
                self.free_lists[cur_order as usize].insert(cur_base + half);
            } else {
                self.free_lists[cur_order as usize].insert(cur_base);
                cur_base += half;
            }
        }
        self.allocated.insert(offset, order);
        Ok(())
    }

    /// Iterates over `(offset, order)` of allocated blocks (unordered).
    pub fn allocated_blocks(&self) -> impl Iterator<Item = (u32, u8)> + '_ {
        self.allocated.iter().map(|(&o, &ord)| (o, ord))
    }

    /// External fragmentation measure in `[0, 1]`: `1 - largest_free /
    /// total_free`. Zero when all free space is one block or none is free.
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_pages();
        if free == 0 {
            return 0.0;
        }
        let largest = self
            .largest_free_order()
            .map(|o| 1u32 << o)
            .unwrap_or(0);
        1.0 - f64::from(largest) / f64::from(free)
    }

    /// Internal consistency check used by tests: free lists and allocation
    /// table must tile the extent exactly, without overlap.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let mut covered = vec![false; self.total_pages() as usize];
        let mut mark = |offset: u32, order: u8| {
            for p in offset..offset + (1u32 << order) {
                assert!(
                    !covered[p as usize],
                    "page {p} covered twice (block {offset}/{order})"
                );
                covered[p as usize] = true;
            }
        };
        for (order, set) in self.free_lists.iter().enumerate() {
            for &offset in set {
                assert_eq!(
                    offset % (1u32 << order),
                    0,
                    "misaligned free block {offset}/{order}"
                );
                // LINT: allow(cast) — buddy orders never exceed 32.
                mark(offset, order as u8);
            }
        }
        for (&offset, &order) in &self.allocated {
            mark(offset, order);
        }
        assert!(covered.iter().all(|&c| c), "extent pages not fully tiled");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_splits_and_free_coalesces() {
        let mut ext = BuddyExtent::new(4); // 16 pages
        let a = ext.alloc(0).unwrap();
        assert_eq!(a, 0);
        ext.check_invariants();
        // 1 + 2 + 4 + 8 free
        assert_eq!(ext.free_pages(), 15);
        ext.free(a, 0).unwrap();
        assert_eq!(ext.free_pages(), 16);
        assert_eq!(ext.largest_free_order(), Some(4));
        ext.check_invariants();
    }

    #[test]
    fn alloc_prefers_smallest_fit() {
        let mut ext = BuddyExtent::new(4);
        let a = ext.alloc(2).unwrap(); // creates free blocks of 4 and 8
        let b = ext.alloc(2).unwrap(); // should take the free order-2 block
        assert_ne!(a, b);
        assert_eq!(ext.largest_free_order(), Some(3), "order-3 block untouched");
        ext.check_invariants();
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut ext = BuddyExtent::new(2); // 4 pages
        assert!(ext.alloc(2).is_some());
        assert!(ext.alloc(0).is_none());
        assert!(ext.alloc(3).is_none(), "larger than extent");
    }

    #[test]
    fn double_free_rejected() {
        let mut ext = BuddyExtent::new(3);
        let a = ext.alloc(1).unwrap();
        ext.free(a, 1).unwrap();
        assert!(ext.free(a, 1).is_err());
    }

    #[test]
    fn free_with_wrong_order_rejected() {
        let mut ext = BuddyExtent::new(3);
        let a = ext.alloc(1).unwrap();
        assert!(ext.free(a, 2).is_err());
        // Block still allocated afterwards.
        ext.free(a, 1).unwrap();
    }

    #[test]
    fn carve_rebuilds_allocated_state() {
        let mut original = BuddyExtent::new(4);
        let a = original.alloc(1).unwrap();
        let b = original.alloc(2).unwrap();
        let c = original.alloc(0).unwrap();
        original.free(b, 2).unwrap();

        let mut rebuilt = BuddyExtent::new(4);
        for (offset, order) in original.allocated_blocks() {
            rebuilt.carve(offset, order).unwrap();
        }
        rebuilt.check_invariants();
        assert_eq!(rebuilt.free_pages(), original.free_pages());
        // Both see the same blocks as allocated.
        let mut x: Vec<_> = original.allocated_blocks().collect();
        let mut y: Vec<_> = rebuilt.allocated_blocks().collect();
        x.sort_unstable();
        y.sort_unstable();
        assert_eq!(x, y);
        assert!(x.contains(&(a, 1)));
        assert!(x.contains(&(c, 0)));
    }

    #[test]
    fn carve_of_allocated_block_rejected() {
        let mut ext = BuddyExtent::new(3);
        let a = ext.alloc(1).unwrap();
        assert!(ext.carve(a, 1).is_err());
    }

    #[test]
    fn fragmentation_metric() {
        let mut ext = BuddyExtent::new(4);
        assert_eq!(ext.fragmentation(), 0.0);
        // Allocate two order-0 blocks from opposite halves by carving.
        ext.carve(0, 0).unwrap();
        ext.carve(8, 0).unwrap();
        // Free space is 14 pages; largest free block is 4.
        let frag = ext.fragmentation();
        assert!(frag > 0.0 && frag < 1.0, "frag = {frag}");
    }

    proptest! {
        /// Random alloc/free interleavings keep the extent exactly tiled
        /// and coalescing eventually restores the single maximal block.
        #[test]
        fn random_ops_preserve_invariants(ops in prop::collection::vec(0u8..4, 1..200)) {
            let mut ext = BuddyExtent::new(6); // 64 pages
            let mut live: Vec<(u32, u8)> = Vec::new();
            for op in ops {
                if op < 3 {
                    let order = op; // 0..3
                    if let Some(offset) = ext.alloc(order) {
                        live.push((offset, order));
                    }
                } else if let Some((offset, order)) = live.pop() {
                    ext.free(offset, order).unwrap();
                }
                ext.check_invariants();
            }
            for (offset, order) in live.drain(..) {
                ext.free(offset, order).unwrap();
            }
            ext.check_invariants();
            prop_assert_eq!(ext.free_pages(), 64);
            prop_assert_eq!(ext.largest_free_order(), Some(6));
        }

        /// Carve-based reconstruction always matches the live allocator.
        #[test]
        fn reload_matches_live(seed_ops in prop::collection::vec((0u8..3, any::<bool>()), 1..100)) {
            let mut ext = BuddyExtent::new(6);
            let mut live: Vec<(u32, u8)> = Vec::new();
            for (order, do_alloc) in seed_ops {
                if do_alloc || live.is_empty() {
                    if let Some(offset) = ext.alloc(order) {
                        live.push((offset, order));
                    }
                } else {
                    let (offset, order) = live.swap_remove(live.len() / 2);
                    ext.free(offset, order).unwrap();
                }
            }
            let mut rebuilt = BuddyExtent::new(6);
            for (offset, order) in ext.allocated_blocks() {
                rebuilt.carve(offset, order).unwrap();
            }
            rebuilt.check_invariants();
            prop_assert_eq!(rebuilt.free_pages(), ext.free_pages());
        }
    }
}
