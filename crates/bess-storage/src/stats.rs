//! I/O accounting for storage areas.

use bess_obs::{Counter, Gauge, Group};

/// Counters maintained by a [`crate::StorageArea`] — [`bess_obs`] handles
/// registered under the `storage.a<id>.` prefix of
/// [`crate::StorageArea::metrics`].
///
/// The paper's evaluation environment measured real disk traffic; these
/// counters let the benchmark harness report page reads/writes, syncs, and
/// extent growth for every experiment.
#[derive(Debug)]
pub struct IoStats {
    /// Pages read from the backend (`storage.a<id>.page_reads`).
    pub page_reads: Counter,
    /// Pages written to the backend (`storage.a<id>.page_writes`).
    pub page_writes: Counter,
    /// Durability syncs, `fsync`-equivalents (`storage.a<id>.syncs`).
    pub syncs: Counter,
    /// Times the area grew by one extent (§2: "storage areas that
    /// correspond to UNIX files may expand in size by one extent at a
    /// time") — `storage.a<id>.extends`.
    pub extends: Counter,
    /// Transient read errors absorbed by the bounded retry in the read
    /// path, one increment per retried attempt
    /// (`storage.a<id>.read_retries`).
    pub read_retries: Counter,
    /// Integrity verification failures surfaced by the read path, one per
    /// failed verification that survived the internal re-read
    /// (`storage.a<id>.verify_failures`).
    pub verify_failures: Counter,
    /// Verification failures that turned out transient: the immediate
    /// re-read of the same slot verified clean
    /// (`storage.a<id>.reread_repairs`).
    pub reread_repairs: Counter,
    /// Mean external buddy fragmentation across extents, in permille of
    /// `1 - largest_free/total_free` (`storage.a<id>.frag_permille`).
    /// 0 means every extent's free space is one maximal block; refreshed
    /// on every segment allocation and free, so the aging scenarios can
    /// chart fragmentation over time without polling allocator locks.
    pub frag_permille: Gauge,
    /// Free data pages across all extents (`storage.a<id>.free_pages`),
    /// refreshed alongside [`IoStats::frag_permille`].
    pub free_pages: Gauge,
}

impl IoStats {
    pub(crate) fn new(group: &Group) -> IoStats {
        IoStats {
            page_reads: group.counter("page_reads"),
            page_writes: group.counter("page_writes"),
            syncs: group.counter("syncs"),
            extends: group.counter("extends"),
            read_retries: group.counter("read_retries"),
            verify_failures: group.counter("verify_failures"),
            reread_repairs: group.counter("reread_repairs"),
            frag_permille: group.gauge("frag_permille"),
            free_pages: group.gauge("free_pages"),
        }
    }

    pub(crate) fn bump(counter: &Counter) {
        counter.inc();
    }
}
