//! I/O accounting for storage areas.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by a [`crate::StorageArea`].
///
/// The paper's evaluation environment measured real disk traffic; these
/// counters let the benchmark harness report page reads/writes, syncs, and
/// extent growth for every experiment.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages read from the backend.
    pub page_reads: AtomicU64,
    /// Pages written to the backend.
    pub page_writes: AtomicU64,
    /// Durability syncs (`fsync`-equivalents).
    pub syncs: AtomicU64,
    /// Times the area grew by one extent (§2: "storage areas that
    /// correspond to UNIX files may expand in size by one extent at a
    /// time").
    pub extends: AtomicU64,
    /// Transient read errors absorbed by the bounded retry in the read
    /// path (each increment is one retried attempt, not one failed page).
    pub read_retries: AtomicU64,
}

impl IoStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a snapshot for reporting.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            extends: self.extends.load(Ordering::Relaxed),
            read_retries: self.read_retries.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`IoStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Pages read from the backend.
    pub page_reads: u64,
    /// Pages written to the backend.
    pub page_writes: u64,
    /// Durability syncs.
    pub syncs: u64,
    /// Extent expansions.
    pub extends: u64,
    /// Transient read errors absorbed by retry.
    pub read_retries: u64,
}

impl IoSnapshot {
    /// Element-wise difference `self - earlier`.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            page_reads: self.page_reads - earlier.page_reads,
            page_writes: self.page_writes - earlier.page_writes,
            syncs: self.syncs - earlier.syncs,
            extends: self.extends - earlier.extends,
            read_retries: self.read_retries - earlier.read_retries,
        }
    }
}
