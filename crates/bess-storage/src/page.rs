//! Page and disk-segment addressing.

use std::fmt;

/// Default page size: 4 KiB. Must match the `bess-vm` page size when
/// segments are mapped into an address space.
pub const PAGE_SIZE: usize = 4096;

/// Identifies a storage area within a BeSS server.
///
/// The paper's physical database "consists of a number of *storage areas*,
/// which are UNIX files or disk raw partitions" (§2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AreaId(pub u32);

impl fmt::Display for AreaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "area{}", self.0)
    }
}

/// A page within a specific storage area.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// The containing storage area.
    pub area: AreaId,
    /// Absolute page number within the area (0 = area header).
    pub page: u64,
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.area, self.page)
    }
}

/// A contiguous disk segment: the allocation unit handed out by the binary
/// buddy allocator (§2 of the paper, after Biliris ICDE'92).
///
/// `pages` records the *requested* size; the buddy block actually reserved
/// is the next power of two.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DiskPtr {
    /// The containing storage area.
    pub area: AreaId,
    /// Absolute number of the first page of the segment.
    pub start_page: u64,
    /// Number of pages requested for the segment.
    pub pages: u32,
}

impl DiskPtr {
    /// The buddy order (log2 of the block size in pages) backing this
    /// segment.
    pub fn order(&self) -> u8 {
        order_for_pages(self.pages)
    }

    /// The page id of the `i`-th page of the segment.
    ///
    /// # Panics
    /// Panics if `i >= self.pages`.
    pub fn page(&self, i: u32) -> PageId {
        assert!(i < self.pages, "page index {i} out of segment of {}", self.pages);
        PageId {
            area: self.area,
            page: self.start_page + u64::from(i),
        }
    }

    /// Size of the segment in bytes for the given page size.
    pub fn byte_len(&self, page_size: usize) -> usize {
        self.pages as usize * page_size
    }
}

impl fmt::Display for DiskPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}+{}", self.area, self.start_page, self.pages)
    }
}

/// Smallest buddy order whose block holds `pages` pages.
pub fn order_for_pages(pages: u32) -> u8 {
    assert!(pages > 0, "segment must have at least one page");
    // LINT: allow(cast) — leading_zeros of a u32 is at most 32.
    (32 - (pages - 1).leading_zeros()) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_for_pages_is_ceil_log2() {
        assert_eq!(order_for_pages(1), 0);
        assert_eq!(order_for_pages(2), 1);
        assert_eq!(order_for_pages(3), 2);
        assert_eq!(order_for_pages(4), 2);
        assert_eq!(order_for_pages(5), 3);
        assert_eq!(order_for_pages(255), 8);
        assert_eq!(order_for_pages(256), 8);
        assert_eq!(order_for_pages(257), 9);
    }

    #[test]
    fn disk_ptr_pages() {
        let ptr = DiskPtr {
            area: AreaId(3),
            start_page: 100,
            pages: 4,
        };
        assert_eq!(ptr.page(0).page, 100);
        assert_eq!(ptr.page(3).page, 103);
        assert_eq!(ptr.order(), 2);
        assert_eq!(ptr.byte_len(PAGE_SIZE), 16384);
    }

    #[test]
    #[should_panic]
    fn disk_ptr_page_out_of_range_panics() {
        let ptr = DiskPtr {
            area: AreaId(0),
            start_page: 0,
            pages: 2,
        };
        let _ = ptr.page(2);
    }
}
