//! Storage-layer errors.

use std::fmt;
use std::io;

/// Errors raised by storage areas and the disk allocator.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// An on-disk structure failed validation.
    Corrupt(String),
    /// The area is full and cannot (or may not) expand.
    OutOfSpace,
    /// A requested disk segment exceeds the extent size.
    SegmentTooLarge {
        /// Pages requested.
        requested: u32,
        /// Largest allocatable block in pages (one extent).
        max: u32,
    },
    /// An allocation/free argument was invalid (double free, bad offset…).
    BadBlock(String),
    /// A page number lies outside the area.
    BadPage(u64),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage structure: {msg}"),
            StorageError::OutOfSpace => write!(f, "storage area out of space"),
            StorageError::SegmentTooLarge { requested, max } => {
                write!(f, "disk segment of {requested} pages exceeds extent size {max}")
            }
            StorageError::BadBlock(msg) => write!(f, "bad block operation: {msg}"),
            StorageError::BadPage(p) => write!(f, "page {p} outside storage area"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
