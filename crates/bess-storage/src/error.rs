//! Storage-layer errors.

use std::fmt;
use std::io;

/// Errors raised by storage areas and the disk allocator.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// An on-disk structure failed validation.
    Corrupt(String),
    /// The area is full and cannot (or may not) expand.
    OutOfSpace,
    /// A requested disk segment exceeds the extent size.
    SegmentTooLarge {
        /// Pages requested.
        requested: u32,
        /// Largest allocatable block in pages (one extent).
        max: u32,
    },
    /// An allocation/free argument was invalid (double free, bad offset…).
    BadBlock(String),
    /// A page number lies outside the area.
    BadPage(u64),
    /// A page failed integrity verification on read (and, when repair was
    /// attempted, could not be repaired). The caller must never see the
    /// page's bytes alongside this error.
    CorruptPage {
        /// Area the read was addressed to.
        area: u32,
        /// Page the read was addressed to.
        page: u64,
        /// What the verification found.
        reason: CorruptKind,
    },
}

/// How a page failed integrity verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptKind {
    /// The FNV-1a checksum over header + data does not match (bit rot,
    /// torn write, or a never-sealed slot holding nonzero data).
    Checksum,
    /// The checksum is intact but the header identifies a different page:
    /// a misdirected write landed here.
    WrongPage {
        /// Area id recorded in the slot's header.
        found_area: u32,
        /// Page number recorded in the slot's header.
        found_page: u64,
    },
    /// The page is quarantined: verification failed earlier and repair was
    /// impossible, so reads are refused without touching the backend.
    Quarantined,
}

impl fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptKind::Checksum => write!(f, "checksum mismatch"),
            CorruptKind::WrongPage {
                found_area,
                found_page,
            } => write!(
                f,
                "misdirected write: slot holds area {found_area} page {found_page}"
            ),
            CorruptKind::Quarantined => write!(f, "page is quarantined"),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage structure: {msg}"),
            StorageError::OutOfSpace => write!(f, "storage area out of space"),
            StorageError::SegmentTooLarge { requested, max } => {
                write!(f, "disk segment of {requested} pages exceeds extent size {max}")
            }
            StorageError::BadBlock(msg) => write!(f, "bad block operation: {msg}"),
            StorageError::BadPage(p) => write!(f, "page {p} outside storage area"),
            StorageError::CorruptPage { area, page, reason } => {
                write!(f, "corrupt page: area {area} page {page}: {reason}")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
