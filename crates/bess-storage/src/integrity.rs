//! Per-page integrity headers: checksum, page LSN, and page identity.
//!
//! Every data page a [`crate::StorageArea`] stores occupies a *slot* of
//! `PAGE_HDR + page_size` bytes on the backend. The first [`PAGE_HDR`]
//! bytes are an integrity header sealed at write time and verified on
//! every read:
//!
//! ```text
//! offset  size  field
//!      0     4  magic        "BESP" (0x42455350), little-endian u32
//!      4     4  area id      catches cross-area misdirected writes
//!      8     8  page number  catches within-area misdirected writes
//!     16     8  page LSN     last WAL record applied to this page
//!                            (0 when written outside the log's view)
//!     24     8  checksum     word-folded FNV-1a 64 over header bytes
//!                            0..24 ++ page data (see [`slot_checksum`])
//! ```
//!
//! The checksum covers the identity fields, so a page image copied to the
//! wrong slot fails verification even though its data checksum would
//! self-validate — that is how lost and misdirected writes are caught, per
//! the paper's multi-file storage-area design (§2) where one bad page
//! would otherwise poison every process sharing the cache.
//!
//! An **all-zero slot** is the one exception: freshly grown extents are
//! zero-filled and have never been sealed. A slot whose header is all
//! zeros verifies successfully *iff* its data is all zeros too (the
//! unwritten page); a zero header over nonzero data is corruption.

use crate::error::{CorruptKind, StorageError, StorageResult};

/// Size of the per-page integrity header, prepended to every page slot.
pub const PAGE_HDR: usize = 32;

/// Magic tag of a sealed page header ("BESP" little-endian).
pub const PAGE_MAGIC: u32 = 0x4245_5350;

/// FNV-1a 64-bit, the same function the WAL uses for record checksums
/// (`bess-wal/src/enc.rs`). Duplicated here because the dependency
/// direction runs wal → storage, not the other way.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline(always)]
fn fold(hash: u64, word: u64) -> u64 {
    (hash ^ word).wrapping_mul(FNV_PRIME)
}

/// Word-folded FNV-1a over `header[0..24] ++ data`: eight bytes per
/// multiply instead of one, split across four independent lanes so the
/// multiply chains overlap. This sits on every disk read when
/// `verify_on_read` is on, and the §E23 budget (cached-read overhead
/// ≤ 5%) is what forced it off the textbook byte-serial loop — roughly
/// a 20× difference on a 4 KiB page.
///
/// Not the same function as the byte-serial [`checksum`] the WAL frames
/// use; page checksums never leave the slot they seal, so the folding
/// width is a private detail of this module.
fn slot_checksum(header: &[u8], data: &[u8]) -> u64 {
    let mut lanes = [
        FNV_OFFSET,
        fold(FNV_OFFSET, 1),
        fold(FNV_OFFSET, 2),
        fold(FNV_OFFSET, 3),
    ];
    // The 24 covered header bytes are exactly three words.
    let mut stray = 0usize;
    for w in header[..24].chunks_exact(8) {
        lanes[stray & 3] = fold(lanes[stray & 3], le_u64(w));
        stray += 1;
    }
    let mut blocks = data.chunks_exact(32);
    for b in blocks.by_ref() {
        lanes[0] = fold(lanes[0], le_u64(&b[0..8]));
        lanes[1] = fold(lanes[1], le_u64(&b[8..16]));
        lanes[2] = fold(lanes[2], le_u64(&b[16..24]));
        lanes[3] = fold(lanes[3], le_u64(&b[24..32]));
    }
    let rem = blocks.remainder();
    let mut words = rem.chunks_exact(8);
    for w in words.by_ref() {
        lanes[stray & 3] = fold(lanes[stray & 3], le_u64(w));
        stray += 1;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        // Pad the final partial word and tag it with its length so a
        // trailing zero byte and a short tail cannot alias.
        let mut pad = [0u8; 8];
        pad[..tail.len()].copy_from_slice(tail);
        pad[7] = tail.len() as u8 | 0x80;
        lanes[stray & 3] = fold(lanes[stray & 3], le_u64(&pad));
    }
    fold(fold(fold(fold(FNV_OFFSET, lanes[0]), lanes[1]), lanes[2]), lanes[3])
}

/// Seals `data` into `slot` (`slot.len() == PAGE_HDR + data.len()`):
/// writes the header fields, the checksum, and the payload.
pub fn seal(area: u32, page: u64, lsn: u64, data: &[u8], slot: &mut [u8]) {
    assert_eq!(slot.len(), PAGE_HDR + data.len(), "slot/data size mismatch");
    slot[PAGE_HDR..].copy_from_slice(data);
    reseal(area, page, lsn, slot);
}

/// Seals a slot in place: the data portion (`slot[PAGE_HDR..]`) is taken
/// as-is and a fresh header is written over `slot[..PAGE_HDR]`.
pub fn reseal(area: u32, page: u64, lsn: u64, slot: &mut [u8]) {
    assert!(slot.len() > PAGE_HDR, "slot smaller than its header");
    let (hdr, data) = slot.split_at_mut(PAGE_HDR);
    hdr[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
    hdr[4..8].copy_from_slice(&area.to_le_bytes());
    hdr[8..16].copy_from_slice(&page.to_le_bytes());
    hdr[16..24].copy_from_slice(&lsn.to_le_bytes());
    let sum = slot_checksum(hdr, data);
    hdr[24..32].copy_from_slice(&sum.to_le_bytes());
}

/// Verifies a slot read back for (`area`, `page`). On success returns the
/// page LSN recorded in the header (0 for an unwritten all-zero slot); on
/// failure returns [`StorageError::CorruptPage`] naming what went wrong.
pub fn verify(area: u32, page: u64, slot: &[u8]) -> StorageResult<u64> {
    assert!(slot.len() > PAGE_HDR, "slot smaller than its header");
    let (hdr, data) = slot.split_at(PAGE_HDR);
    if hdr.iter().all(|&b| b == 0) {
        // Never-sealed slot: valid only as the all-zero unwritten page.
        if data.iter().all(|&b| b == 0) {
            return Ok(0);
        }
        return Err(StorageError::CorruptPage {
            area,
            page,
            reason: CorruptKind::Checksum,
        });
    }
    if le_u32(&hdr[0..4]) != PAGE_MAGIC {
        return Err(StorageError::CorruptPage {
            area,
            page,
            reason: CorruptKind::Checksum,
        });
    }
    let sum = slot_checksum(hdr, data);
    if sum != le_u64(&hdr[24..32]) {
        return Err(StorageError::CorruptPage {
            area,
            page,
            reason: CorruptKind::Checksum,
        });
    }
    let found_area = le_u32(&hdr[4..8]);
    let found_page = le_u64(&hdr[8..16]);
    if found_area != area || found_page != page {
        // Checksum is intact but the identity is someone else's: a
        // misdirected write landed here (or this page was copied away).
        return Err(StorageError::CorruptPage {
            area,
            page,
            reason: CorruptKind::WrongPage {
                found_area,
                found_page,
            },
        });
    }
    Ok(le_u64(&hdr[16..24]))
}

/// The LSN field of a sealed slot, without verifying the checksum. Used
/// by the deep scrub pass after `verify` has already succeeded.
#[must_use]
pub fn header_lsn(slot: &[u8]) -> u64 {
    le_u64(&slot[16..24])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_then_verify_roundtrips_lsn() {
        let data = [0xA5u8; 64];
        let mut slot = vec![0u8; PAGE_HDR + 64];
        seal(7, 42, 99, &data, &mut slot);
        assert_eq!(verify(7, 42, &slot).unwrap(), 99);
        assert_eq!(header_lsn(&slot), 99);
        assert_eq!(&slot[PAGE_HDR..], &data[..]);
    }

    #[test]
    fn all_zero_slot_is_valid_unwritten_page() {
        let slot = vec![0u8; PAGE_HDR + 64];
        assert_eq!(verify(1, 3, &slot).unwrap(), 0);
    }

    #[test]
    fn zero_header_with_nonzero_data_is_corrupt() {
        let mut slot = vec![0u8; PAGE_HDR + 64];
        slot[PAGE_HDR + 5] = 1;
        match verify(1, 3, &slot) {
            Err(StorageError::CorruptPage {
                reason: CorruptKind::Checksum,
                ..
            }) => {}
            other => panic!("expected checksum corruption, got {other:?}"),
        }
    }

    #[test]
    fn bit_flip_in_data_is_detected() {
        let data = [3u8; 32];
        let mut slot = vec![0u8; PAGE_HDR + 32];
        seal(0, 9, 0, &data, &mut slot);
        slot[PAGE_HDR + 17] ^= 0x40;
        assert!(matches!(
            verify(0, 9, &slot),
            Err(StorageError::CorruptPage {
                reason: CorruptKind::Checksum,
                ..
            })
        ));
    }

    #[test]
    fn bit_flip_in_header_is_detected() {
        let data = [3u8; 32];
        let mut slot = vec![0u8; PAGE_HDR + 32];
        seal(0, 9, 17, &data, &mut slot);
        slot[20] ^= 0x01; // LSN field
        assert!(verify(0, 9, &slot).is_err());
    }

    #[test]
    fn misdirected_slot_reports_found_identity() {
        let data = [1u8; 32];
        let mut slot = vec![0u8; PAGE_HDR + 32];
        seal(2, 5, 0, &data, &mut slot);
        // Read back as a different page: intact checksum, wrong identity.
        match verify(2, 6, &slot) {
            Err(StorageError::CorruptPage {
                area: 2,
                page: 6,
                reason:
                    CorruptKind::WrongPage {
                        found_area: 2,
                        found_page: 5,
                    },
            }) => {}
            other => panic!("expected WrongPage, got {other:?}"),
        }
    }

    #[test]
    fn slot_checksum_is_order_and_length_sensitive() {
        let hdr = [7u8; 24];
        // Swapping two words must change the sum (chains are ordered).
        let mut a = [0u8; 64];
        a[0] = 1;
        let mut b = [0u8; 64];
        b[8] = 1;
        assert_ne!(slot_checksum(&hdr, &a), slot_checksum(&hdr, &b));
        // A short tail is length-tagged: trailing zeros are not free.
        assert_ne!(slot_checksum(&hdr, &[1]), slot_checksum(&hdr, &[1, 0]));
        // Odd (non-word-multiple) data lengths round-trip through
        // seal/verify like any other.
        let data = [0xC3u8; 100];
        let mut slot = vec![0u8; PAGE_HDR + 100];
        seal(1, 2, 3, &data, &mut slot);
        assert_eq!(verify(1, 2, &slot).unwrap(), 3);
        slot[PAGE_HDR + 99] ^= 0x01;
        assert!(verify(1, 2, &slot).is_err());
    }

    #[test]
    fn checksum_matches_wal_fnv_constants() {
        // Empty input must yield the FNV-1a offset basis.
        assert_eq!(checksum(&[]), 0xcbf2_9ce4_8422_2325);
        assert_ne!(checksum(b"a"), checksum(b"b"));
    }
}
