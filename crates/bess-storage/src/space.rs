//! The [`DiskSpace`] abstraction: disk allocation and raw byte I/O.
//!
//! The segment and large-object layers need four primitives from the
//! storage substrate: allocate a disk segment, free one, and read/write
//! bytes at a page offset. Behind this trait those primitives can be served
//! by local storage areas (a BeSS server or an embedded application) or by
//! RPCs to the owning server (a remote client) — the multi-client
//! multi-server architecture of §3 needs both.

use std::sync::Arc;

use crate::area::StorageArea;
use crate::error::{StorageError, StorageResult};
use crate::page::DiskPtr;

/// Disk-space management primitives.
pub trait DiskSpace: Send + Sync {
    /// Bytes per page.
    fn page_size(&self) -> usize;

    /// Allocates a disk segment of `pages` pages in storage area `area`.
    fn alloc(&self, area: u32, pages: u32) -> StorageResult<DiskPtr>;

    /// Frees a previously allocated disk segment.
    fn free(&self, ptr: DiskPtr) -> StorageResult<()>;

    /// Reads `buf.len()` bytes at byte `offset` of `page` in `area`
    /// (`offset + buf.len() <= page_size`).
    fn read_at(&self, area: u32, page: u64, offset: usize, buf: &mut [u8]) -> StorageResult<()>;

    /// Writes `data` at byte `offset` of `page` in `area`.
    fn write_at(&self, area: u32, page: u64, offset: usize, data: &[u8]) -> StorageResult<()>;
}

impl DiskSpace for StorageArea {
    fn page_size(&self) -> usize {
        StorageArea::page_size(self)
    }

    fn alloc(&self, area: u32, pages: u32) -> StorageResult<DiskPtr> {
        if area != self.id().0 {
            return Err(StorageError::BadBlock(format!(
                "area {area} requested from area {}",
                self.id()
            )));
        }
        StorageArea::alloc(self, pages)
    }

    fn free(&self, ptr: DiskPtr) -> StorageResult<()> {
        StorageArea::free(self, ptr)
    }

    fn read_at(&self, area: u32, page: u64, offset: usize, buf: &mut [u8]) -> StorageResult<()> {
        if area != self.id().0 {
            return Err(StorageError::BadPage(page));
        }
        StorageArea::read_at(self, page, offset, buf)
    }

    fn write_at(&self, area: u32, page: u64, offset: usize, data: &[u8]) -> StorageResult<()> {
        if area != self.id().0 {
            return Err(StorageError::BadPage(page));
        }
        StorageArea::write_at(self, page, offset, data)
    }
}

impl<T: DiskSpace + ?Sized> DiskSpace for Arc<T> {
    fn page_size(&self) -> usize {
        (**self).page_size()
    }
    fn alloc(&self, area: u32, pages: u32) -> StorageResult<DiskPtr> {
        (**self).alloc(area, pages)
    }
    fn free(&self, ptr: DiskPtr) -> StorageResult<()> {
        (**self).free(ptr)
    }
    fn read_at(&self, area: u32, page: u64, offset: usize, buf: &mut [u8]) -> StorageResult<()> {
        (**self).read_at(area, page, offset, buf)
    }
    fn write_at(&self, area: u32, page: u64, offset: usize, data: &[u8]) -> StorageResult<()> {
        (**self).write_at(area, page, offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::AreaConfig;
    use crate::page::AreaId;

    #[test]
    fn storage_area_implements_disk_space() {
        let area = StorageArea::create_mem(AreaId(3), AreaConfig::default()).unwrap();
        let space: &dyn DiskSpace = &area;
        let seg = space.alloc(3, 2).unwrap();
        space.write_at(3, seg.start_page, 10, b"abc").unwrap();
        let mut buf = [0u8; 3];
        space.read_at(3, seg.start_page, 10, &mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        space.free(seg).unwrap();
        assert!(space.alloc(9, 1).is_err(), "wrong area id rejected");
    }
}
