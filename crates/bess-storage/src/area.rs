//! Storage areas: the physical layer of a BeSS database.
//!
//! "At the physical level, the database consists of a number of *storage
//! areas*, which are UNIX files or disk raw partitions. Storage areas are
//! partitioned into a number of *extents*, and allocation of disk segments
//! from one of these extents is based on the binary buddy system. Storage
//! areas that correspond to UNIX files may expand in size by one extent at a
//! time." (§2)
//!
//! ## On-disk layout
//!
//! Every page (header, metadata, and data alike) occupies a *slot* of
//! `PAGE_HDR + page_size` bytes: a 32-byte integrity header (checksum,
//! page LSN, page identity — see [`crate::integrity`]) followed by the
//! page's bytes. Slots are sealed on write and verified on read, so bit
//! rot, lost writes, and misdirected writes surface as typed
//! [`StorageError::CorruptPage`] errors instead of garbage.
//!
//! ```text
//! slot 0                 area header (magic, geometry, extent count)
//! slots 1 + i*(E+1)      metadata page of extent i (allocation table)
//! following E slots      data pages of extent i
//! ```
//!
//! Keeping each extent's allocation table on its own metadata page bounds
//! metadata size per extent and lets the allocator state be rebuilt page by
//! page on open.
//!
//! ## Read verification and repair hooks
//!
//! A verified read that fails re-reads the slot once (transient transfer
//! corruption cures itself; `storage.a<id>.reread_repairs` counts those)
//! before surfacing `CorruptPage`. Higher layers (bess-server) may then
//! attempt WAL reconstruction and write the page back through
//! [`StorageArea::restore_page`] — the only write path that does not
//! verify the existing slot first. Ordinary [`StorageArea::write_at`] is a
//! verified read-modify-write precisely so resealing can never launder a
//! corrupt slot into a "valid" one. Pages that cannot be repaired are
//! quarantined: further reads and writes fail fast without touching the
//! backend.

use std::collections::HashSet;
use std::fs::OpenOptions;
use std::path::Path;
use std::sync::Arc;

use bess_io::{FileDevice, IoDevice, IoOp, IoOutput, IoQueue, IoResult, IoRuntimeConfig, MemDevice};
use bess_lock::order::{OrderedMutex, Rank};
use bess_obs::{Counter, Group, Registry};

use crate::buddy::BuddyExtent;
use crate::error::{CorruptKind, StorageError, StorageResult};
use crate::fault::FaultDisk;
use crate::integrity::{self, PAGE_HDR};
use crate::page::{order_for_pages, AreaId, DiskPtr};
use crate::stats::IoStats;

const AREA_MAGIC: u32 = 0x42455341; // "BESA"
const EXTENT_MAGIC: u32 = 0x42455854; // "BEXT"
/// Version 2: every page occupies a `PAGE_HDR + page_size` slot with a
/// sealed integrity header. Version-1 images (raw pages, no headers) are
/// rejected with a typed error.
const FORMAT_VERSION: u32 = 2;

/// Geometry and policy for a storage area.
#[derive(Clone, Copy, Debug)]
pub struct AreaConfig {
    /// Bytes per page. Must match the `bess-vm` page size when pages are
    /// mapped into an address space.
    pub page_size: usize,
    /// log2 of the number of data pages per extent (e.g. 8 → 256 pages,
    /// 1 MiB extents with 4 KiB pages).
    pub extent_pages_log2: u8,
    /// Extents to create eagerly.
    pub initial_extents: u32,
    /// Whether the area may grow one extent at a time when full. `false`
    /// models a raw disk partition of fixed size.
    pub expandable: bool,
    /// Whether reads verify the page's integrity header (default `true`).
    /// Disabling is for measuring the verification overhead (§E23) only;
    /// quarantine checks still apply.
    pub verify_on_read: bool,
}

impl Default for AreaConfig {
    fn default() -> Self {
        AreaConfig {
            page_size: crate::page::PAGE_SIZE,
            extent_pages_log2: 8,
            initial_extents: 1,
            expandable: true,
            verify_on_read: true,
        }
    }
}

impl AreaConfig {
    fn extent_pages(&self) -> u32 {
        1 << self.extent_pages_log2
    }

    /// Pages occupied by one extent including its metadata page.
    fn extent_footprint(&self) -> u64 {
        u64::from(self.extent_pages()) + 1
    }
}

/// One sub-page patch of a transactional apply batch — the unit of
/// [`StorageArea::write_at_lsn_batch`].
#[derive(Clone, Copy, Debug)]
pub struct PageUpdate<'a> {
    /// Absolute page number.
    pub page: u64,
    /// Byte offset within the page.
    pub offset: usize,
    /// Replacement bytes.
    pub data: &'a [u8],
    /// Recovery LSN sealed into the page's integrity header.
    pub lsn: u64,
}

/// Little-endian `u32` from the first four bytes of `b`. Shorter input is
/// zero-extended so header parsing never panics on truncated pages — the
/// magic/length checks reject such pages with a typed error instead.
fn le_u32(b: &[u8]) -> u32 {
    let mut raw = [0u8; 4];
    for (dst, src) in raw.iter_mut().zip(b) {
        *dst = *src;
    }
    u32::from_le_bytes(raw)
}

/// The area's seat on the async I/O runtime: an [`IoQueue`] with exactly
/// one registered device. The legacy blocking entry points shim through
/// one-element batches ([`IoQueue::run_one`]), so the device observes the
/// same op sequence as before the redesign — which is what keeps the
/// fault-injection matrices (calibrated to the Nth device op per class)
/// valid. The batched entry points ([`StorageArea::read_pages_batch`],
/// [`StorageArea::write_at_lsn_batch`]) submit real multi-op batches that
/// the thread-pool executor overlaps.
struct Backend {
    queue: IoQueue,
    file: bess_io::FileId,
}

impl Backend {
    /// Builds the queue (executor per [`IoRuntimeConfig::from_env`], so
    /// `BESS_IO_EXEC=pool` flips the whole suite) and registers `dev`,
    /// charging transient read retries to `retries`.
    fn new(dev: Arc<dyn IoDevice>, group: &Group, retries: Counter) -> Self {
        let queue = IoQueue::new(IoRuntimeConfig::from_env(), group);
        let file = queue.register(dev, retries);
        Backend { queue, file }
    }

    fn read_op(&self, offset: u64, len: usize) -> IoOp {
        IoOp::Read {
            file: self.file,
            offset,
            len,
            exact: true,
        }
    }

    /// Unwraps a read completion into its buffer.
    fn expect_read(res: IoResult) -> StorageResult<Vec<u8>> {
        match res? {
            IoOutput::Read { data, .. } => Ok(data),
            other => Err(StorageError::Io(std::io::Error::other(format!(
                "io queue returned {other:?} for a read op"
            )))),
        }
    }

    fn read_at(&self, buf: &mut [u8], offset: u64) -> StorageResult<()> {
        let data = Self::expect_read(self.queue.run_one(self.read_op(offset, buf.len())))?;
        buf.copy_from_slice(&data[..buf.len()]);
        Ok(())
    }

    fn write_at(&self, data: &[u8], offset: u64) -> StorageResult<()> {
        self.queue.run_one(IoOp::Write {
            file: self.file,
            offset,
            data: data.to_vec(),
        })?;
        Ok(())
    }

    fn grow_to(&self, bytes: u64) -> StorageResult<()> {
        self.queue.run_one(IoOp::Grow {
            file: self.file,
            len: bytes,
        })?;
        Ok(())
    }

    fn sync(&self) -> StorageResult<()> {
        self.queue.run_one(IoOp::Sync { file: self.file })?;
        Ok(())
    }
}

/// A storage area: a page-addressed, extent-growing persistent byte store
/// with a buddy allocator for disk segments.
///
/// Thread-safe: page I/O takes no allocator locks, allocation serialises on
/// an internal mutex.
pub struct StorageArea {
    id: AreaId,
    config: AreaConfig,
    backend: Backend,
    extents: OrderedMutex<Vec<BuddyExtent>>,
    /// Pages whose verification failed unrepairably. Checked (and released)
    /// under its own short-lived lock, never held across backend I/O.
    quarantined: OrderedMutex<HashSet<u64>>,
    group: Group,
    stats: IoStats,
}

fn area_obs(id: AreaId) -> (Group, IoStats) {
    let group = Registry::new().group(&format!("storage.a{}", id.0));
    let stats = IoStats::new(&group);
    (group, stats)
}

impl StorageArea {
    /// Creates a new in-memory area (used for tests and volatile caches).
    pub fn create_mem(id: AreaId, config: AreaConfig) -> StorageResult<Self> {
        Self::create_on_device(id, config, MemDevice::new())
    }

    /// Creates a new file-backed area at `path`, failing if the file exists.
    pub fn create_file(id: AreaId, path: &Path, config: AreaConfig) -> StorageResult<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        Self::create_on_device(id, config, FileDevice::new(file))
    }

    /// Creates a new area on a fault-injecting disk (crash testing).
    pub fn create_faulty(
        id: AreaId,
        config: AreaConfig,
        disk: Arc<FaultDisk>,
    ) -> StorageResult<Self> {
        Self::create_on_device(id, config, disk)
    }

    /// Creates a new area on an arbitrary [`IoDevice`] — the seam the
    /// benchmarks use to put an area on a latency-injecting
    /// [`bess_io::SlowDevice`] proxy.
    pub fn create_on_device(
        id: AreaId,
        config: AreaConfig,
        dev: Arc<dyn IoDevice>,
    ) -> StorageResult<Self> {
        assert!(config.page_size >= 64, "page size too small for headers");
        assert!(config.initial_extents >= 1, "area needs at least one extent");
        let (group, stats) = area_obs(id);
        let backend = Backend::new(dev, &group, stats.read_retries.clone());
        let area = StorageArea {
            id,
            config,
            backend,
            extents: OrderedMutex::new(Rank::AreaExtents, "area.extents", Vec::new()),
            quarantined: OrderedMutex::new(Rank::AreaQuarantine, "area.quarantined", HashSet::new()),
            group,
            stats,
        };
        // Room for header + initial extents.
        let total_pages = 1 + config.extent_footprint() * u64::from(config.initial_extents);
        area.backend.grow_to(total_pages * area.slot_bytes())?;
        {
            let mut extents = area.extents.lock();
            for _ in 0..config.initial_extents {
                extents.push(BuddyExtent::new(config.extent_pages_log2));
            }
            area.refresh_alloc_gauges(&extents);
        }
        area.write_header()?;
        for i in 0..config.initial_extents {
            area.write_extent_meta(i)?;
        }
        Ok(area)
    }

    /// Opens an existing file-backed area, rebuilding allocator state from
    /// the persisted per-extent allocation tables.
    pub fn open_file(id: AreaId, path: &Path, expandable: bool) -> StorageResult<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        Self::open_device(id, FileDevice::new(file), expandable)
    }

    /// Opens an existing area living on a fault-injecting disk (typically
    /// after [`FaultDisk::reopen`] following a simulated crash).
    pub fn open_faulty(id: AreaId, disk: Arc<FaultDisk>, expandable: bool) -> StorageResult<Self> {
        Self::open_device(id, disk, expandable)
    }

    /// Opens an existing area on an arbitrary [`IoDevice`].
    pub fn open_device(
        id: AreaId,
        dev: Arc<dyn IoDevice>,
        expandable: bool,
    ) -> StorageResult<Self> {
        // Bootstrap: the area header lives *inside* slot 0, after the
        // integrity header, so read enough raw bytes to learn the page
        // size, then verify the whole slot below. The area's stats object
        // doesn't exist yet; header-read retries go to a throwaway counter,
        // exactly as before the queue redesign.
        let bootstrap = IoQueue::unregistered(IoRuntimeConfig::from_env());
        let boot_file = bootstrap.register(Arc::clone(&dev), Counter::unregistered());
        let mut head = [0u8; PAGE_HDR + 24];
        let data = Backend::expect_read(bootstrap.run_one(IoOp::Read {
            file: boot_file,
            offset: 0,
            len: head.len(),
            exact: true,
        }))?;
        let head_len = head.len();
        head.copy_from_slice(&data[..head_len]);
        drop(bootstrap);
        let body = &head[PAGE_HDR..];
        let magic = le_u32(&body[0..4]);
        if magic != AREA_MAGIC {
            return Err(StorageError::Corrupt("bad area magic".into()));
        }
        let version = le_u32(&body[4..8]);
        if version != FORMAT_VERSION {
            return Err(StorageError::Corrupt(format!("unsupported version {version}")));
        }
        let page_size = le_u32(&body[8..12]) as usize;
        if !(64..=1 << 24).contains(&page_size) {
            return Err(StorageError::Corrupt(format!(
                "implausible page size {page_size}"
            )));
        }
        let extent_pages_log2 = body[12];
        let num_extents = le_u32(&body[16..20]);
        let config = AreaConfig {
            page_size,
            extent_pages_log2,
            initial_extents: num_extents.max(1),
            expandable,
            verify_on_read: true,
        };
        let (group, stats) = area_obs(id);
        let backend = Backend::new(dev, &group, stats.read_retries.clone());
        let area = StorageArea {
            id,
            config,
            backend,
            extents: OrderedMutex::new(Rank::AreaExtents, "area.extents", Vec::new()),
            quarantined: OrderedMutex::new(Rank::AreaQuarantine, "area.quarantined", HashSet::new()),
            group,
            stats,
        };
        // Now that the geometry is known, verify the header slot proper.
        let mut slot = vec![0u8; PAGE_HDR + page_size];
        area.read_slot_verified(0, &mut slot)?;
        let mut extents = Vec::with_capacity(num_extents as usize);
        for i in 0..num_extents {
            extents.push(area.load_extent_meta(i)?);
        }
        area.refresh_alloc_gauges(&extents);
        *area.extents.lock() = extents;
        Ok(area)
    }

    /// The area's identifier.
    pub fn id(&self) -> AreaId {
        self.id
    }

    /// Bytes per page.
    pub fn page_size(&self) -> usize {
        self.config.page_size
    }

    /// Data pages per extent.
    pub fn extent_pages(&self) -> u32 {
        self.config.extent_pages()
    }

    /// Number of extents currently in the area.
    pub fn num_extents(&self) -> u32 {
        u32::try_from(self.extents.lock().len()).unwrap_or(u32::MAX)
    }

    /// Total pages in the area (header + metadata + data), i.e. the
    /// exclusive upper bound on addressable page numbers. The scrubber
    /// walks `0..num_pages()`.
    pub fn num_pages(&self) -> u64 {
        1 + self.config.extent_footprint() * u64::from(self.num_extents())
    }

    /// Whether `page` is a data page (not the area header or an extent
    /// metadata page) inside the current geometry.
    pub fn is_data_page(&self, page: u64) -> bool {
        self.locate(page).is_ok()
    }

    /// Total free data pages across all extents.
    pub fn free_pages(&self) -> u64 {
        self.extents
            .lock()
            .iter()
            .map(|e| u64::from(e.free_pages()))
            .sum()
    }

    /// Total allocated data pages across all extents.
    pub fn allocated_pages(&self) -> u64 {
        self.extents
            .lock()
            .iter()
            .map(|e| u64::from(e.allocated_pages()))
            .sum()
    }

    /// Mean external fragmentation across extents (see
    /// [`BuddyExtent::fragmentation`]).
    pub fn fragmentation(&self) -> f64 {
        let extents = self.extents.lock();
        if extents.is_empty() {
            return 0.0;
        }
        extents.iter().map(|e| e.fragmentation()).sum::<f64>() / extents.len() as f64
    }

    /// The area's metric group (`storage.a<id>.*` in its registry).
    pub fn metrics(&self) -> &Group {
        &self.group
    }

    /// Recomputes the fragmentation and free-page gauges from the extent
    /// list. Called with the extents lock held so the published values
    /// always correspond to a consistent allocator state.
    fn refresh_alloc_gauges(&self, extents: &[BuddyExtent]) {
        // LINT: allow(callgraph) — `e` is a BuddyExtent slice element; the fallback would match StorageArea's locking wrapper of the same name.
        let free: u64 = extents.iter().map(|e| u64::from(e.free_pages())).sum();
        let frag = if extents.is_empty() {
            0.0
        } else {
            // LINT: allow(callgraph) — `e` is a BuddyExtent slice element; the fallback would match StorageArea's locking wrapper of the same name.
            extents.iter().map(|e| e.fragmentation()).sum::<f64>() / extents.len() as f64
        };
        // LINT: allow(cast) — permille of a [0,1] ratio fits in i64.
        self.stats.frag_permille.set((frag * 1000.0).round() as i64);
        // LINT: allow(cast) — page counts are far below i64::MAX.
        self.stats.free_pages.set(free as i64);
    }

    /// Test hook: asserts every extent's buddy free lists and allocation
    /// table tile the extent exactly (see [`BuddyExtent::check_invariants`]).
    #[doc(hidden)]
    pub fn check_allocator_invariants(&self) {
        for e in self.extents.lock().iter() {
            e.check_invariants();
        }
    }

    /// I/O counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    // ---- geometry ------------------------------------------------------

    /// Bytes one page occupies on the backend: integrity header + data.
    fn slot_bytes(&self) -> u64 {
        (PAGE_HDR + self.config.page_size) as u64
    }

    fn slot_offset(&self, page: u64) -> u64 {
        page * self.slot_bytes()
    }

    fn first_data_page(&self, extent: u32) -> u64 {
        1 + u64::from(extent) * self.config.extent_footprint() + 1
    }

    fn meta_page(&self, extent: u32) -> u64 {
        1 + u64::from(extent) * self.config.extent_footprint()
    }

    /// Maps an absolute data page to `(extent, offset)`.
    fn locate(&self, page: u64) -> StorageResult<(u32, u32)> {
        if page == 0 {
            return Err(StorageError::BadPage(page));
        }
        let footprint = self.config.extent_footprint();
        let extent = (page - 1) / footprint;
        let within = (page - 1) % footprint;
        if within == 0 {
            return Err(StorageError::BadPage(page)); // metadata page
        }
        if extent >= u64::from(self.num_extents()) {
            return Err(StorageError::BadPage(page));
        }
        // Both fit after the bounds check above, but keep the conversions
        // fallible so a corrupt pointer surfaces as a typed error.
        let extent = u32::try_from(extent).map_err(|_| StorageError::BadPage(page))?;
        let within = u32::try_from(within - 1).map_err(|_| StorageError::BadPage(page))?;
        Ok((extent, within))
    }

    // ---- allocation ------------------------------------------------------

    /// Allocates a disk segment of `pages` contiguous pages.
    ///
    /// Segments never span extents (the paper allocates "from one of these
    /// extents"); requesting more pages than an extent holds fails with
    /// [`StorageError::SegmentTooLarge`]. When every extent is full the
    /// area grows by one extent if expandable, else fails with
    /// [`StorageError::OutOfSpace`].
    pub fn alloc(&self, pages: u32) -> StorageResult<DiskPtr> {
        let order = order_for_pages(pages);
        if order > self.config.extent_pages_log2 {
            return Err(StorageError::SegmentTooLarge {
                requested: pages,
                max: self.config.extent_pages(),
            });
        }
        let mut extents = self.extents.lock();
        for (i, extent) in extents.iter_mut().enumerate() {
            if let Some(offset) = extent.alloc(order) {
                let i = u32::try_from(i).map_err(|_| StorageError::OutOfSpace)?;
                let start_page = self.first_data_page(i) + u64::from(offset);
                self.refresh_alloc_gauges(&extents);
                drop(extents);
                self.write_extent_meta_locked(i)?;
                return Ok(DiskPtr {
                    area: self.id,
                    start_page,
                    pages,
                });
            }
        }
        if !self.config.expandable {
            return Err(StorageError::OutOfSpace);
        }
        // Expand by one extent.
        let new_index = u32::try_from(extents.len()).map_err(|_| StorageError::OutOfSpace)?;
        let mut extent = BuddyExtent::new(self.config.extent_pages_log2);
        // `order` was bounds-checked against the extent size above, so a
        // fresh extent always satisfies it — but surface a typed error
        // rather than aborting if that invariant is ever broken.
        let offset = extent.alloc(order).ok_or(StorageError::OutOfSpace)?;
        extents.push(extent);
        let total_pages = 1 + self.config.extent_footprint() * (u64::from(new_index) + 1);
        self.backend.grow_to(total_pages * self.slot_bytes())?;
        IoStats::bump(&self.stats.extends);
        self.refresh_alloc_gauges(&extents);
        drop(extents);
        self.write_header()?;
        self.write_extent_meta_locked(new_index)?;
        Ok(DiskPtr {
            area: self.id,
            start_page: self.first_data_page(new_index) + u64::from(offset),
            pages,
        })
    }

    /// Frees a disk segment previously returned by [`Self::alloc`].
    pub fn free(&self, ptr: DiskPtr) -> StorageResult<()> {
        if ptr.area != self.id {
            return Err(StorageError::BadBlock(format!(
                "segment {ptr} belongs to a different area"
            )));
        }
        let (extent, offset) = self.locate(ptr.start_page)?;
        {
            let mut extents = self.extents.lock();
            // LINT: allow(callgraph) — indexed receiver is a BuddyExtent; the any-callee fallback would match AreaSet/client `free`.
            extents[extent as usize].free(offset, ptr.order())?;
            self.refresh_alloc_gauges(&extents);
        }
        self.write_extent_meta_locked(extent)
    }

    // ---- quarantine ------------------------------------------------------

    /// Fails with [`CorruptKind::Quarantined`] if `page` is quarantined.
    /// The quarantine guard is released before any backend I/O.
    fn check_quarantine(&self, page: u64) -> StorageResult<()> {
        if self.quarantined.lock().contains(&page) {
            return Err(StorageError::CorruptPage {
                area: self.id.0,
                page,
                reason: CorruptKind::Quarantined,
            });
        }
        Ok(())
    }

    /// Marks `page` unreadable/unwritable until [`Self::unquarantine`].
    /// Used when verification failed and repair was impossible.
    pub fn quarantine(&self, page: u64) {
        self.quarantined.lock().insert(page);
    }

    /// Lifts a quarantine, typically after [`Self::restore_page`] followed
    /// by a successful verified read-back.
    pub fn unquarantine(&self, page: u64) {
        self.quarantined.lock().remove(&page);
    }

    /// Whether `page` is currently quarantined.
    pub fn is_quarantined(&self, page: u64) -> bool {
        self.quarantined.lock().contains(&page)
    }

    /// The currently quarantined pages, in ascending order.
    pub fn quarantined_pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self.quarantined.lock().iter().copied().collect();
        pages.sort_unstable();
        pages
    }

    // ---- page I/O --------------------------------------------------------

    fn read_slot_raw(&self, page: u64, slot: &mut [u8]) -> StorageResult<()> {
        self.backend.read_at(slot, self.slot_offset(page))
    }

    /// Reads `page`'s full slot and verifies it, re-reading once on a
    /// verification failure (a flip in transfer, not on the platter, cures
    /// itself). Returns the page LSN from the header.
    fn read_slot_verified(&self, page: u64, slot: &mut [u8]) -> StorageResult<u64> {
        self.check_quarantine(page)?;
        self.read_slot_raw(page, slot)?;
        self.verify_with_reread(page, slot)
    }

    /// The verification half of a verified read: checks the already-read
    /// `slot`, re-reading it once on failure. Shared between the single-op
    /// path and [`Self::read_pages_batch`], where the first read arrives
    /// via a batched completion instead of a blocking call.
    fn verify_with_reread(&self, page: u64, slot: &mut [u8]) -> StorageResult<u64> {
        if !self.config.verify_on_read {
            return Ok(integrity::header_lsn(slot));
        }
        match integrity::verify(self.id.0, page, slot) {
            Ok(lsn) => Ok(lsn),
            Err(first) => {
                self.read_slot_raw(page, slot)?;
                match integrity::verify(self.id.0, page, slot) {
                    Ok(lsn) => {
                        IoStats::bump(&self.stats.reread_repairs);
                        Ok(lsn)
                    }
                    Err(_) => {
                        IoStats::bump(&self.stats.verify_failures);
                        Err(first)
                    }
                }
            }
        }
    }

    fn seal_and_write(&self, page: u64, lsn: u64, slot: &mut [u8]) -> StorageResult<()> {
        integrity::reseal(self.id.0, page, lsn, slot);
        self.backend.write_at(slot, self.slot_offset(page))?;
        IoStats::bump(&self.stats.page_writes);
        Ok(())
    }

    /// Reads an absolute page into `buf` (`buf.len() == page_size`),
    /// verifying its integrity header first. A page never written since
    /// its extent grew reads as zeros.
    pub fn read_page(&self, page: u64, buf: &mut [u8]) -> StorageResult<()> {
        assert_eq!(buf.len(), self.config.page_size, "buffer must be one page");
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        self.read_slot_verified(page, &mut slot)?;
        buf.copy_from_slice(&slot[PAGE_HDR..]);
        IoStats::bump(&self.stats.page_reads);
        Ok(())
    }

    /// Reads many absolute pages in one scatter-gather submission: every
    /// slot read enters the [`IoQueue`] as a single batch — which the
    /// thread-pool executor overlaps, turning N serial device waits into
    /// one — then each completion is verified independently with the same
    /// single re-read repair as [`Self::read_page`]. Returns one result
    /// per requested page, in request order; each failure is per-page
    /// (a corrupt or quarantined page never poisons its neighbors).
    pub fn read_pages_batch(&self, pages: &[u64]) -> Vec<StorageResult<Vec<u8>>> {
        let slot_len = PAGE_HDR + self.config.page_size;
        // Quarantined pages fail fast without touching the backend; the
        // rest go out as one submission.
        let gate: Vec<StorageResult<()>> =
            pages.iter().map(|&p| self.check_quarantine(p)).collect();
        let ops: Vec<IoOp> = pages
            .iter()
            .zip(&gate)
            .filter(|(_, g)| g.is_ok())
            .map(|(&p, _)| self.backend.read_op(self.slot_offset(p), slot_len))
            .collect();
        let mut tickets = self.backend.queue.submit_owned(ops).into_iter();
        pages
            .iter()
            .zip(gate)
            .map(|(&page, gate)| {
                gate?;
                let ticket = tickets.next().ok_or_else(|| {
                    StorageError::Io(std::io::Error::other("io queue lost a submitted read"))
                })?;
                let mut slot = Backend::expect_read(self.backend.queue.complete(ticket))?;
                self.verify_with_reread(page, &mut slot)?;
                IoStats::bump(&self.stats.page_reads);
                Ok(slot.split_off(PAGE_HDR))
            })
            .collect()
    }

    /// Writes an absolute page from `data` (`data.len() == page_size`),
    /// sealing it with page LSN 0 (an out-of-log write, e.g. cache
    /// write-back of a page whose recovery LSN the caller doesn't track).
    pub fn write_page(&self, page: u64, data: &[u8]) -> StorageResult<()> {
        self.write_page_lsn(page, data, 0)
    }

    /// Writes an absolute page, sealing `lsn` into the integrity header as
    /// the page's recovery LSN.
    pub fn write_page_lsn(&self, page: u64, data: &[u8], lsn: u64) -> StorageResult<()> {
        assert_eq!(data.len(), self.config.page_size, "buffer must be one page");
        self.check_quarantine(page)?;
        let mut slot = vec![0u8; PAGE_HDR + data.len()];
        slot[PAGE_HDR..].copy_from_slice(data);
        self.seal_and_write(page, lsn, &mut slot)
    }

    /// Reads `buf.len()` bytes starting at byte `offset` of `page`. The
    /// whole slot is read and verified; the requested range is copied out.
    pub fn read_at(&self, page: u64, offset: usize, buf: &mut [u8]) -> StorageResult<()> {
        assert!(offset + buf.len() <= self.config.page_size);
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        self.read_slot_verified(page, &mut slot)?;
        buf.copy_from_slice(&slot[PAGE_HDR + offset..PAGE_HDR + offset + buf.len()]);
        IoStats::bump(&self.stats.page_reads);
        Ok(())
    }

    /// Writes `data` at byte `offset` of `page`, preserving the page LSN
    /// already sealed in the slot.
    ///
    /// This is a *verified* read-modify-write: the existing slot must pass
    /// verification before it is patched and resealed, so a sub-page write
    /// can never launder a corrupt page into a freshly-checksummed one.
    pub fn write_at(&self, page: u64, offset: usize, data: &[u8]) -> StorageResult<()> {
        assert!(offset + data.len() <= self.config.page_size);
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        let lsn = self.read_slot_verified(page, &mut slot)?;
        slot[PAGE_HDR + offset..PAGE_HDR + offset + data.len()].copy_from_slice(data);
        self.seal_and_write(page, lsn, &mut slot)
    }

    /// Like [`Self::write_at`], but stamps `lsn` as the page's new recovery
    /// LSN — used by the transactional apply path, where the commit
    /// record's LSN is known.
    pub fn write_at_lsn(
        &self,
        page: u64,
        offset: usize,
        data: &[u8],
        lsn: u64,
    ) -> StorageResult<()> {
        assert!(offset + data.len() <= self.config.page_size);
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        self.read_slot_verified(page, &mut slot)?;
        slot[PAGE_HDR + offset..PAGE_HDR + offset + data.len()].copy_from_slice(data);
        self.seal_and_write(page, lsn, &mut slot)
    }

    /// Applies a batch of sub-page patches as scatter-gather I/O: one
    /// verified read per *distinct* page (all reads submitted as a single
    /// batch), every patch for a page applied to its slot in memory, then
    /// one sealed write per page (again a single batch). Patches to the
    /// same page coalesce into one read-modify-write, the last patch's
    /// `lsn` winning — exactly what the serial per-update loop would leave
    /// on disk, in half the device ops.
    ///
    /// Returns one result per distinct page in first-appearance order, so
    /// a caller can repair-and-retry exactly the pages that failed.
    pub fn write_at_lsn_batch(
        &self,
        updates: &[PageUpdate<'_>],
    ) -> Vec<(u64, StorageResult<()>)> {
        for u in updates {
            assert!(u.offset + u.data.len() <= self.config.page_size);
        }
        // Distinct pages, first-appearance order.
        let mut pages: Vec<u64> = Vec::new();
        for u in updates {
            if !pages.contains(&u.page) {
                pages.push(u.page);
            }
        }
        let slot_len = PAGE_HDR + self.config.page_size;
        let gate: Vec<StorageResult<()>> =
            pages.iter().map(|&p| self.check_quarantine(p)).collect();
        let read_ops: Vec<IoOp> = pages
            .iter()
            .zip(&gate)
            .filter(|(_, g)| g.is_ok())
            .map(|(&p, _)| self.backend.read_op(self.slot_offset(p), slot_len))
            .collect();
        let mut read_tickets = self.backend.queue.submit_owned(read_ops).into_iter();

        // Phase 1: complete each read, verify, patch, reseal. Slots that
        // survive queue up as write ops; failures keep their per-page error.
        let mut results: Vec<(u64, StorageResult<()>)> = Vec::with_capacity(pages.len());
        let mut write_ops: Vec<IoOp> = Vec::new();
        let mut write_pages: Vec<usize> = Vec::new(); // index into `results`
        for (&page, gate) in pages.iter().zip(gate) {
            let prepared = gate.and_then(|()| {
                let ticket = read_tickets.next().ok_or_else(|| {
                    StorageError::Io(std::io::Error::other("io queue lost a submitted read"))
                })?;
                let mut slot = Backend::expect_read(self.backend.queue.complete(ticket))?;
                let mut lsn = self.verify_with_reread(page, &mut slot)?;
                for u in updates.iter().filter(|u| u.page == page) {
                    slot[PAGE_HDR + u.offset..PAGE_HDR + u.offset + u.data.len()]
                        .copy_from_slice(u.data);
                    lsn = u.lsn;
                }
                integrity::reseal(self.id.0, page, lsn, &mut slot);
                Ok(slot)
            });
            match prepared {
                Ok(slot) => {
                    write_pages.push(results.len());
                    write_ops.push(IoOp::Write {
                        file: self.backend.file,
                        offset: self.slot_offset(page),
                        data: slot,
                    });
                    results.push((page, Ok(())));
                }
                Err(e) => results.push((page, Err(e))),
            }
        }

        // Phase 2: all surviving writes as one submission.
        let tickets = self.backend.queue.submit_owned(write_ops);
        for (idx, ticket) in write_pages.into_iter().zip(tickets) {
            match self.backend.queue.complete(ticket) {
                Ok(_) => IoStats::bump(&self.stats.page_writes),
                Err(e) => results[idx].1 = Err(e.into()),
            }
        }
        results
    }

    /// Verifies `page` without returning its contents; `Ok(lsn)` on
    /// success. The scrubber's unit of work.
    pub fn verify_page(&self, page: u64) -> StorageResult<u64> {
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        self.read_slot_verified(page, &mut slot)
    }

    /// Recovery/repair write: seals `data` with `lsn` and writes the slot
    /// **without** verifying what it overwrites. This is the only full-page
    /// path allowed to clobber a corrupt slot (WAL redo resealing a torn
    /// page, read-repair installing a reconstructed image). Does not check
    /// or lift quarantine — callers unquarantine after a verified read-back.
    pub fn restore_page(&self, page: u64, data: &[u8], lsn: u64) -> StorageResult<()> {
        assert_eq!(data.len(), self.config.page_size, "buffer must be one page");
        let mut slot = vec![0u8; PAGE_HDR + data.len()];
        slot[PAGE_HDR..].copy_from_slice(data);
        self.seal_and_write(page, lsn, &mut slot)
    }

    /// Recovery sub-page write: patches `offset..offset+data.len()` of the
    /// raw (unverified) slot and reseals it with `lsn`. WAL redo and undo
    /// go through here — the slot they are repairing may be torn, so its
    /// old checksum legitimately doesn't match; redo's after-images restore
    /// the bytes and the reseal restores the header.
    pub fn restore_at(&self, page: u64, offset: usize, data: &[u8], lsn: u64) -> StorageResult<()> {
        assert!(offset + data.len() <= self.config.page_size);
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        self.read_slot_raw(page, &mut slot)?;
        slot[PAGE_HDR + offset..PAGE_HDR + offset + data.len()].copy_from_slice(data);
        self.seal_and_write(page, lsn, &mut slot)
    }

    /// Forces all written pages to stable storage.
    pub fn sync(&self) -> StorageResult<()> {
        self.backend.sync()?;
        IoStats::bump(&self.stats.syncs);
        Ok(())
    }

    // ---- metadata persistence ---------------------------------------------

    fn write_header(&self) -> StorageResult<()> {
        let mut page = vec![0u8; self.config.page_size];
        page[0..4].copy_from_slice(&AREA_MAGIC.to_le_bytes());
        page[4..8].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        // LINT: allow(cast) — page sizes are small powers of two, far below u32::MAX.
        page[8..12].copy_from_slice(&(self.config.page_size as u32).to_le_bytes());
        page[12] = self.config.extent_pages_log2;
        page[16..20].copy_from_slice(&self.num_extents().to_le_bytes());
        page[20..24].copy_from_slice(&self.id.0.to_le_bytes());
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        slot[PAGE_HDR..].copy_from_slice(&page);
        integrity::reseal(self.id.0, 0, 0, &mut slot);
        self.backend.write_at(&slot, 0)
    }

    fn write_extent_meta(&self, extent: u32) -> StorageResult<()> {
        self.write_extent_meta_locked(extent)
    }

    fn write_extent_meta_locked(&self, extent: u32) -> StorageResult<()> {
        let blocks: Vec<(u32, u8)> = {
            let extents = self.extents.lock();
            extents[extent as usize].allocated_blocks().collect()
        };
        let mut page = vec![0u8; self.config.page_size];
        let count = u32::try_from(blocks.len())
            .map_err(|_| StorageError::Corrupt("allocation table too large".into()))?;
        page[0..4].copy_from_slice(&EXTENT_MAGIC.to_le_bytes());
        page[4..8].copy_from_slice(&count.to_le_bytes());
        let mut pos = 8;
        for (offset, order) in blocks {
            if pos + 5 > page.len() {
                return Err(StorageError::Corrupt(
                    "extent allocation table overflows metadata page".into(),
                ));
            }
            page[pos..pos + 4].copy_from_slice(&offset.to_le_bytes());
            page[pos + 4] = order;
            pos += 5;
        }
        let meta = self.meta_page(extent);
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        slot[PAGE_HDR..].copy_from_slice(&page);
        integrity::reseal(self.id.0, meta, 0, &mut slot);
        self.backend.write_at(&slot, self.slot_offset(meta))
    }

    fn load_extent_meta(&self, extent: u32) -> StorageResult<BuddyExtent> {
        let mut slot = vec![0u8; PAGE_HDR + self.config.page_size];
        self.read_slot_verified(self.meta_page(extent), &mut slot)?;
        let page = &slot[PAGE_HDR..];
        let magic = le_u32(&page[0..4]);
        if magic != EXTENT_MAGIC {
            return Err(StorageError::Corrupt(format!(
                "bad extent magic on extent {extent}"
            )));
        }
        let count = le_u32(&page[4..8]) as usize;
        let mut rebuilt = BuddyExtent::new(self.config.extent_pages_log2);
        let mut pos = 8;
        for _ in 0..count {
            if pos + 5 > page.len() {
                return Err(StorageError::Corrupt("truncated allocation table".into()));
            }
            let offset = le_u32(&page[pos..pos + 4]);
            let order = page[pos + 4];
            rebuilt.carve(offset, order).map_err(|e| {
                StorageError::Corrupt(format!("allocation table inconsistent: {e}"))
            })?;
            pos += 5;
        }
        Ok(rebuilt)
    }
}

impl std::fmt::Debug for StorageArea {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageArea")
            .field("id", &self.id)
            .field("extents", &self.num_extents())
            .field("free_pages", &self.free_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan, OpClass};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn temp_path(name: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU32 = AtomicU32::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "bess-storage-test-{}-{}-{}",
            std::process::id(),
            name,
            n
        ))
    }

    #[test]
    fn mem_area_alloc_write_read() {
        let area = StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap();
        let seg = area.alloc(3).unwrap();
        assert_eq!(seg.pages, 3);
        let mut page = vec![0u8; area.page_size()];
        page[..5].copy_from_slice(b"hello");
        area.write_page(seg.start_page, &page).unwrap();
        let mut back = vec![0u8; area.page_size()];
        area.read_page(seg.start_page, &mut back).unwrap();
        assert_eq!(&back[..5], b"hello");
        area.free(seg).unwrap();
    }

    #[test]
    fn segments_do_not_overlap() {
        let area = StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap();
        let mut segs = Vec::new();
        for pages in [1u32, 2, 3, 5, 8, 16, 4, 1] {
            segs.push(area.alloc(pages).unwrap());
        }
        for (i, a) in segs.iter().enumerate() {
            for b in &segs[i + 1..] {
                let a_end = a.start_page + u64::from(1u32 << a.order());
                let b_end = b.start_page + u64::from(1u32 << b.order());
                assert!(
                    a_end <= b.start_page || b_end <= a.start_page,
                    "{a} overlaps {b}"
                );
            }
        }
    }

    #[test]
    fn area_expands_by_one_extent() {
        let config = AreaConfig {
            extent_pages_log2: 2, // 4 pages per extent
            ..AreaConfig::default()
        };
        let area = StorageArea::create_mem(AreaId(1), config).unwrap();
        assert_eq!(area.num_extents(), 1);
        let _a = area.alloc(4).unwrap();
        let _b = area.alloc(4).unwrap(); // forces expansion
        assert_eq!(area.num_extents(), 2);
        assert_eq!(area.stats().extends.get(), 1);
    }

    #[test]
    fn fixed_size_area_reports_out_of_space() {
        let config = AreaConfig {
            extent_pages_log2: 2,
            expandable: false,
            ..AreaConfig::default()
        };
        let area = StorageArea::create_mem(AreaId(1), config).unwrap();
        let _a = area.alloc(4).unwrap();
        assert!(matches!(area.alloc(1), Err(StorageError::OutOfSpace)));
    }

    #[test]
    fn oversized_segment_rejected() {
        let config = AreaConfig {
            extent_pages_log2: 3,
            ..AreaConfig::default()
        };
        let area = StorageArea::create_mem(AreaId(1), config).unwrap();
        assert!(matches!(
            area.alloc(9),
            Err(StorageError::SegmentTooLarge { .. })
        ));
    }

    #[test]
    fn metadata_pages_are_not_allocatable_or_addressable() {
        let config = AreaConfig {
            extent_pages_log2: 2,
            ..AreaConfig::default()
        };
        let area = StorageArea::create_mem(AreaId(1), config).unwrap();
        let seg = area.alloc(4).unwrap();
        // First data page of extent 0 is page 2 (0 header, 1 metadata).
        assert_eq!(seg.start_page, 2);
        // Freeing a pointer aimed at a metadata page fails.
        let bogus = DiskPtr {
            area: AreaId(1),
            start_page: 1,
            pages: 1,
        };
        assert!(area.free(bogus).is_err());
    }

    #[test]
    fn file_area_persists_across_reopen() {
        let path = temp_path("persist");
        let seg;
        {
            let area = StorageArea::create_file(AreaId(7), &path, AreaConfig::default()).unwrap();
            seg = area.alloc(2).unwrap();
            let mut page = vec![0u8; area.page_size()];
            page[..4].copy_from_slice(b"BeSS");
            area.write_page(seg.start_page, &page).unwrap();
            area.sync().unwrap();
        }
        {
            let area = StorageArea::open_file(AreaId(7), &path, true).unwrap();
            let mut back = vec![0u8; area.page_size()];
            area.read_page(seg.start_page, &mut back).unwrap();
            assert_eq!(&back[..4], b"BeSS");
            // Allocator state survived: the old segment's block is still
            // allocated, so a fresh allocation must not overlap it.
            let fresh = area.alloc(2).unwrap();
            assert_ne!(fresh.start_page, seg.start_page);
            // And the old segment can be freed exactly once.
            area.free(seg).unwrap();
            assert!(area.free(seg).is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_after_expansion_preserves_geometry() {
        let path = temp_path("expand");
        let config = AreaConfig {
            extent_pages_log2: 2,
            ..AreaConfig::default()
        };
        let (a, b);
        {
            let area = StorageArea::create_file(AreaId(9), &path, config).unwrap();
            a = area.alloc(4).unwrap();
            b = area.alloc(4).unwrap();
            assert_eq!(area.num_extents(), 2);
        }
        {
            let area = StorageArea::open_file(AreaId(9), &path, true).unwrap();
            assert_eq!(area.num_extents(), 2);
            assert_eq!(area.free_pages(), 0);
            area.free(a).unwrap();
            area.free(b).unwrap();
            assert_eq!(area.free_pages(), 8);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage() {
        let path = temp_path("garbage");
        std::fs::write(&path, vec![0xAB; 8192]).unwrap();
        assert!(matches!(
            StorageArea::open_file(AreaId(1), &path, true),
            Err(StorageError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_stats_count() {
        let area = StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap();
        let seg = area.alloc(1).unwrap();
        let s = area.stats();
        let (r0, w0, s0) = (s.page_reads.get(), s.page_writes.get(), s.syncs.get());
        let mut page = vec![0u8; area.page_size()];
        area.read_page(seg.start_page, &mut page).unwrap();
        area.write_page(seg.start_page, &page).unwrap();
        area.sync().unwrap();
        assert_eq!(s.page_reads.get() - r0, 1);
        assert_eq!(s.page_writes.get() - w0, 1);
        assert_eq!(s.syncs.get() - s0, 1);
    }

    #[test]
    fn transient_read_eio_is_absorbed_by_retry() {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area =
            StorageArea::create_faulty(AreaId(3), AreaConfig::default(), Arc::clone(&disk))
                .unwrap();
        let seg = area.alloc(1).unwrap();
        let mut page = vec![0u8; area.page_size()];
        page[..5].copy_from_slice(b"hello");
        area.write_page(seg.start_page, &page).unwrap();

        // Arm an EIO on the very next read: the first attempt eats the
        // fault, the bounded retry's second attempt succeeds, and the
        // caller never sees an error.
        let plan = FaultPlan::armed(OpClass::Read, 0, FaultKind::Eio);
        disk.arm(Arc::clone(&plan));
        let mut back = vec![0u8; area.page_size()];
        area.read_page(seg.start_page, &mut back).unwrap();
        assert_eq!(&back[..5], b"hello");
        assert_eq!(plan.fired(), 1, "the injected fault fired");
        assert_eq!(area.stats().read_retries.get(), 1);
    }

    #[test]
    fn persistent_read_eio_propagates_after_retry_budget() {
        // The retry loop itself lives in bess-io now; this pins the
        // budget the storage read path inherits from it.
        use bess_io::{read_exact_retrying, MAX_READ_RETRIES};
        let mut buf = vec![0u8; 64];
        let retries = Counter::unregistered();
        let err = read_exact_retrying(
            |_b: &mut [u8], _off| Err(std::io::Error::other("injected: read EIO")),
            &mut buf,
            0,
            &retries,
        );
        assert!(err.is_err(), "persistent EIO propagates after retries");
        assert_eq!(retries.get(), u64::from(MAX_READ_RETRIES));
    }

    // ---- integrity ------------------------------------------------------

    /// Absolute backend offset of byte `off` inside `page`'s data.
    fn data_byte(area: &StorageArea, page: u64, off: u64) -> u64 {
        page * area.slot_bytes() + PAGE_HDR as u64 + off
    }

    #[test]
    fn unwritten_page_reads_as_zeros() {
        let area = StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap();
        let seg = area.alloc(1).unwrap();
        let mut buf = vec![0xFFu8; area.page_size()];
        area.read_page(seg.start_page, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn durable_bit_rot_is_detected_on_read() {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area =
            StorageArea::create_faulty(AreaId(3), AreaConfig::default(), Arc::clone(&disk))
                .unwrap();
        let seg = area.alloc(1).unwrap();
        let page = vec![0x5Au8; area.page_size()];
        // Rot one data byte of the page as its write-back lands.
        disk.arm(FaultPlan::armed(
            OpClass::Write,
            0,
            FaultKind::BitRot {
                offset: data_byte(&area, seg.start_page, 9),
                mask: 0x10,
            },
        ));
        area.write_page(seg.start_page, &page).unwrap();
        let mut back = vec![0u8; area.page_size()];
        match area.read_page(seg.start_page, &mut back) {
            Err(StorageError::CorruptPage {
                area: 3,
                reason: CorruptKind::Checksum,
                ..
            }) => {}
            other => panic!("expected CorruptPage, got {other:?}"),
        }
        assert_eq!(area.stats().verify_failures.get(), 1);
    }

    #[test]
    fn transient_bit_rot_is_cured_by_reread() {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area =
            StorageArea::create_faulty(AreaId(3), AreaConfig::default(), Arc::clone(&disk))
                .unwrap();
        let seg = area.alloc(1).unwrap();
        let page = vec![0x5Au8; area.page_size()];
        area.write_page(seg.start_page, &page).unwrap();
        // Rot a byte in transfer on the next read only.
        disk.arm(FaultPlan::armed(
            OpClass::Read,
            0,
            FaultKind::BitRot {
                offset: data_byte(&area, seg.start_page, 0),
                mask: 0x01,
            },
        ));
        let mut back = vec![0u8; area.page_size()];
        area.read_page(seg.start_page, &mut back).unwrap();
        assert_eq!(back, page, "the re-read served clean data");
        let snap = area.stats();
        assert_eq!(snap.reread_repairs.get(), 1);
        assert_eq!(snap.verify_failures.get(), 0);
    }

    #[test]
    fn misdirected_write_clobbers_victim_detectably() {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area =
            StorageArea::create_faulty(AreaId(3), AreaConfig::default(), Arc::clone(&disk))
                .unwrap();
        let a = area.alloc(1).unwrap();
        let b = area.alloc(1).unwrap();
        let page = vec![0x11u8; area.page_size()];
        area.write_page(b.start_page, &page).unwrap();
        // Page a's write is misdirected onto page b's slot.
        disk.arm(FaultPlan::armed(
            OpClass::Write,
            0,
            FaultKind::Misdirected {
                to: b.start_page * area.slot_bytes(),
            },
        ));
        let page_a = vec![0x22u8; area.page_size()];
        area.write_page(a.start_page, &page_a).unwrap(); // acked, misdirected
        // The victim's slot now carries page a's identity: WrongPage.
        let mut buf = vec![0u8; area.page_size()];
        match area.read_page(b.start_page, &mut buf) {
            Err(StorageError::CorruptPage {
                reason: CorruptKind::WrongPage { found_page, .. },
                ..
            }) => assert_eq!(found_page, a.start_page),
            other => panic!("expected WrongPage, got {other:?}"),
        }
    }

    #[test]
    fn write_at_refuses_to_launder_a_corrupt_slot() {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area =
            StorageArea::create_faulty(AreaId(3), AreaConfig::default(), Arc::clone(&disk))
                .unwrap();
        let seg = area.alloc(1).unwrap();
        let page = vec![0x5Au8; area.page_size()];
        disk.arm(FaultPlan::armed(
            OpClass::Write,
            0,
            FaultKind::BitRot {
                offset: data_byte(&area, seg.start_page, 3),
                mask: 0x80,
            },
        ));
        area.write_page(seg.start_page, &page).unwrap();
        // The RMW verifies before resealing, so the rot is not laundered.
        assert!(matches!(
            area.write_at(seg.start_page, 0, b"zz"),
            Err(StorageError::CorruptPage { .. })
        ));
        // restore_page is the designated repair path.
        area.restore_page(seg.start_page, &page, 7).unwrap();
        assert_eq!(area.verify_page(seg.start_page).unwrap(), 7);
        let mut back = vec![0u8; area.page_size()];
        area.read_page(seg.start_page, &mut back).unwrap();
        assert_eq!(back, page);
    }

    #[test]
    fn write_at_preserves_lsn_and_write_at_lsn_stamps_it() {
        let area = StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap();
        let seg = area.alloc(1).unwrap();
        let page = vec![0u8; area.page_size()];
        area.write_page_lsn(seg.start_page, &page, 41).unwrap();
        area.write_at(seg.start_page, 4, b"keep").unwrap();
        assert_eq!(area.verify_page(seg.start_page).unwrap(), 41);
        area.write_at_lsn(seg.start_page, 4, b"bump", 42).unwrap();
        assert_eq!(area.verify_page(seg.start_page).unwrap(), 42);
        let mut back = vec![0u8; area.page_size()];
        area.read_page(seg.start_page, &mut back).unwrap();
        assert_eq!(&back[4..8], b"bump");
    }

    #[test]
    fn quarantined_page_refuses_io_without_touching_backend() {
        let area = StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap();
        let seg = area.alloc(1).unwrap();
        let page = vec![1u8; area.page_size()];
        area.write_page(seg.start_page, &page).unwrap();
        area.quarantine(seg.start_page);
        assert!(area.is_quarantined(seg.start_page));
        assert_eq!(area.quarantined_pages(), vec![seg.start_page]);
        let s = area.stats();
        let (r0, w0) = (s.page_reads.get(), s.page_writes.get());
        let mut buf = vec![0u8; area.page_size()];
        assert!(matches!(
            area.read_page(seg.start_page, &mut buf),
            Err(StorageError::CorruptPage {
                reason: CorruptKind::Quarantined,
                ..
            })
        ));
        assert!(matches!(
            area.write_page(seg.start_page, &page),
            Err(StorageError::CorruptPage {
                reason: CorruptKind::Quarantined,
                ..
            })
        ));
        assert_eq!(s.page_reads.get() - r0 + s.page_writes.get() - w0, 0);
        // Repair ladder: restore, verify, release.
        area.restore_page(seg.start_page, &page, 0).unwrap();
        area.unquarantine(seg.start_page);
        area.read_page(seg.start_page, &mut buf).unwrap();
        assert_eq!(buf, page);
    }

    #[test]
    fn restore_at_reseals_a_torn_slot() {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area =
            StorageArea::create_faulty(AreaId(3), AreaConfig::default(), Arc::clone(&disk))
                .unwrap();
        let seg = area.alloc(1).unwrap();
        let old = vec![0xAAu8; area.page_size()];
        area.write_page(seg.start_page, &old).unwrap();
        area.sync().unwrap();
        // Tear the next full-slot write halfway through.
        disk.arm(FaultPlan::armed(
            OpClass::Write,
            0,
            FaultKind::Torn {
                keep: area.page_size() / 2,
            },
        ));
        let new = vec![0xBBu8; area.page_size()];
        assert!(area.write_page(seg.start_page, &new).is_err());
        disk.reopen(FaultPlan::unarmed());
        let area = StorageArea::open_faulty(AreaId(3), Arc::clone(&disk), true).unwrap();
        // The torn slot fails verification...
        assert!(matches!(
            area.verify_page(seg.start_page),
            Err(StorageError::CorruptPage { .. })
        ));
        // ...and a redo-style restore_at reseals it.
        area.restore_at(seg.start_page, 0, &new, 5).unwrap();
        assert_eq!(area.verify_page(seg.start_page).unwrap(), 5);
    }

    #[test]
    fn verify_disabled_skips_checks_but_not_quarantine() {
        let config = AreaConfig {
            verify_on_read: false,
            ..AreaConfig::default()
        };
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area = StorageArea::create_faulty(AreaId(3), config, Arc::clone(&disk)).unwrap();
        let seg = area.alloc(1).unwrap();
        let page = vec![0x5Au8; area.page_size()];
        disk.arm(FaultPlan::armed(
            OpClass::Write,
            0,
            FaultKind::BitRot {
                offset: data_byte(&area, seg.start_page, 9),
                mask: 0x10,
            },
        ));
        area.write_page(seg.start_page, &page).unwrap();
        let mut back = vec![0u8; area.page_size()];
        // Verification off: the rotted page is served (measurement mode).
        area.read_page(seg.start_page, &mut back).unwrap();
        assert_ne!(back, page);
        area.quarantine(seg.start_page);
        assert!(area.read_page(seg.start_page, &mut back).is_err());
    }
}
