//! Deterministic fault injection for the I/O seams.
//!
//! Durability code is only as credible as the crashes it has survived, so
//! this module provides a *deterministic* faulty disk that both the storage
//! areas ([`crate::StorageArea`]) and the write-ahead log can run on. A
//! [`FaultPlan`] counts I/O operations by class (read / write / sync) and
//! arms exactly one fault at the Nth operation of a class; a [`FaultDisk`]
//! consults the plan on every operation and keeps **two byte images**:
//!
//! * the *volatile* image — what the running process observes (the OS page
//!   cache): every successful write lands here immediately;
//! * the *durable* image — what survives a crash (the platter): it only
//!   catches up to the volatile image on a successful `sync`.
//!
//! The model is deliberately adversarial: writes that were never synced are
//! lost on crash, a torn write deposits only its prefix *durably* (the
//! classic partial-sector on power failure), and a dropped sync reports
//! success while leaving the durable image stale (a lying fsync). Because
//! the plan is counter-based, each fault point is exactly reproducible —
//! crash matrices enumerate `(op index, fault kind)` pairs and replay them
//! without any randomness.
//!
//! After a crash (an armed [`FaultKind::Crash`] or [`FaultKind::Torn`], or
//! an explicit [`FaultDisk::crash`]), the disk is *poisoned*: all further
//! I/O fails like file descriptors of a dead process. [`FaultDisk::reopen`]
//! then models a process restart — the volatile image is discarded and
//! reloaded from the durable one, and a fresh plan (possibly arming a fault
//! *during recovery*, for double-crash tests) is installed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bess_lock::order::{OrderedMutex, Rank};

/// The classes of I/O operation a [`FaultPlan`] counts and can fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Any positioned read.
    Read,
    /// Any positioned write.
    Write,
    /// A durability barrier (`fsync`/`fdatasync`).
    Sync,
}

impl OpClass {
    fn index(self) -> usize {
        match self {
            OpClass::Read => 0,
            OpClass::Write => 1,
            OpClass::Sync => 2,
        }
    }
}

/// What happens when the armed operation is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an I/O error; the disk stays usable.
    Eio,
    /// (Writes) only the first `keep` bytes reach **both** images, then the
    /// disk is poisoned — a torn write at the moment of a crash.
    Torn {
        /// Bytes of the write that land before the tear.
        keep: usize,
    },
    /// (Reads) the read returns at most `len` bytes instead of filling the
    /// buffer; the disk stays usable, so a retry loop will make progress.
    Short {
        /// Maximum bytes returned by the faulted read.
        len: usize,
    },
    /// (Syncs) the sync reports success but the durable image is **not**
    /// advanced — an fsync that lied.
    DropSync,
    /// The operation fails and the disk is poisoned, as if the process died
    /// at this exact I/O.
    Crash,
    /// Silent corruption: one byte at absolute disk `offset` has `mask`
    /// XOR-ed into it. On a **read** the flip lands in the returned buffer
    /// only (a transient transfer error — re-reading sees clean data); on a
    /// **write** the flip lands in the volatile image after the write
    /// applies (platter rot — it persists and reaches the durable image on
    /// the next sync). The operation reports success either way.
    BitRot {
        /// Absolute disk offset of the rotted byte.
        offset: u64,
        /// Bits to flip (XOR mask; must be nonzero to corrupt).
        mask: u8,
    },
    /// Silent misdirection: the operation is served at absolute offset `to`
    /// instead of the requested one. A misdirected **write** deposits its
    /// bytes at `to` and acks; a misdirected **read** returns the bytes
    /// stored at `to`. The classic firmware addressing bug.
    Misdirected {
        /// Absolute disk offset the operation is redirected to.
        to: u64,
    },
    /// (Writes) the write is acknowledged but never applied to either
    /// image — a lost write. Reads and syncs treat it as a no-op.
    LostWrite,
}

struct ArmedFault {
    class: OpClass,
    /// 0-based index among operations of `class`.
    at: u64,
    kind: FaultKind,
}

/// A deterministic injection plan shared by every handle onto one disk.
///
/// The plan counts operations per [`OpClass`]. Run a workload once against
/// an unarmed plan to learn how many operations it issues, then enumerate
/// `(class, n, kind)` triples, arming a fresh plan for each run.
pub struct FaultPlan {
    // LINT: allow(raw-counter) — fault-plan op counters consulted by the armed trigger, not a metric
    counts: [AtomicU64; 3],
    armed: OrderedMutex<Option<ArmedFault>>,
    // LINT: allow(raw-counter) — single-shot fault-plan trip latch, not a metric
    fired: AtomicU64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            counts: Default::default(),
            armed: OrderedMutex::new(Rank::FaultArmed, "fault.armed", None),
            fired: AtomicU64::new(0),
        }
    }
}

impl FaultPlan {
    /// A plan with no armed fault (pure operation counting).
    pub fn unarmed() -> Arc<Self> {
        Arc::new(FaultPlan::default())
    }

    /// A plan that fires `kind` at the `nth` (0-based) operation of `class`.
    pub fn armed(class: OpClass, nth: u64, kind: FaultKind) -> Arc<Self> {
        let plan = FaultPlan::default();
        *plan.armed.lock() = Some(ArmedFault {
            class,
            at: nth,
            kind,
        });
        Arc::new(plan)
    }

    /// Operations of `class` observed so far.
    pub fn ops(&self, class: OpClass) -> u64 {
        self.counts[class.index()].load(Ordering::Relaxed)
    }

    /// How many faults have fired (0 or 1; a plan disarms after firing).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Counts one operation of `class` and returns the fault to inject, if
    /// this is the armed operation. The plan disarms after firing so retry
    /// loops make progress.
    fn on_op(&self, class: OpClass) -> Option<FaultKind> {
        let n = self.counts[class.index()].fetch_add(1, Ordering::Relaxed);
        let mut armed = self.armed.lock();
        match armed.as_ref() {
            Some(f) if f.class == class && f.at == n => {
                let kind = f.kind;
                *armed = None;
                self.fired.fetch_add(1, Ordering::Relaxed);
                Some(kind)
            }
            _ => None,
        }
    }
}

struct Images {
    volatile: Vec<u8>,
    durable: Vec<u8>,
}

/// A byte-addressed disk with a volatile and a durable image, driven by a
/// [`FaultPlan`]. Cloneable via `Arc`; one `FaultDisk` backs one storage
/// area or one log.
pub struct FaultDisk {
    images: OrderedMutex<Images>,
    plan: OrderedMutex<Arc<FaultPlan>>,
    poisoned: std::sync::atomic::AtomicBool,
}

fn injected(msg: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {msg}"))
}

impl FaultDisk {
    /// An empty disk driven by `plan`.
    pub fn new(plan: Arc<FaultPlan>) -> Arc<Self> {
        Arc::new(FaultDisk {
            images: OrderedMutex::new(
                Rank::FaultImages,
                "fault.images",
                Images {
                    volatile: Vec::new(),
                    durable: Vec::new(),
                },
            ),
            plan: OrderedMutex::new(Rank::FaultPlanSlot, "fault.plan", plan),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// The plan currently consulted by this disk.
    pub fn plan(&self) -> Arc<FaultPlan> {
        Arc::clone(&self.plan.lock())
    }

    /// Replaces the plan without touching the images — used after fault-free
    /// setup (formatting an area, writing the log header) so the armed
    /// operation count starts at the workload's first I/O.
    pub fn arm(&self, plan: Arc<FaultPlan>) {
        *self.plan.lock() = plan;
    }

    /// Whether a crash fault has poisoned the disk.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Poisons the disk: every subsequent operation fails, as after process
    /// death. Unsynced (volatile-only) bytes are lost at [`Self::reopen`].
    pub fn crash(&self) {
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Models a process restart: discards the volatile image, reloads it
    /// from the durable one, clears the poison, and installs `plan` for the
    /// next epoch (arm it to inject faults *during recovery*).
    pub fn reopen(&self, plan: Arc<FaultPlan>) {
        let mut images = self.images.lock();
        images.volatile = images.durable.clone();
        *self.plan.lock() = plan;
        self.poisoned.store(false, Ordering::Relaxed);
    }

    /// Bytes in the volatile image (what `metadata().len()` would say).
    pub fn len(&self) -> u64 {
        self.images.lock().volatile.len() as u64
    }

    /// Whether the disk holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the durable image (what a post-crash open would see).
    pub fn durable_image(&self) -> Vec<u8> {
        self.images.lock().durable.clone()
    }

    fn check_poison(&self) -> std::io::Result<()> {
        if self.is_poisoned() {
            Err(injected("backend poisoned by simulated crash"))
        } else {
            Ok(())
        }
    }

    /// Positioned read. Returns the bytes copied, which may be fewer than
    /// `buf.len()` (short read at end of disk or under an armed
    /// [`FaultKind::Short`]); `Ok(0)` means end of disk.
    pub fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        self.check_poison()?;
        let fault = self.plan().on_op(OpClass::Read);
        match fault {
            Some(FaultKind::Eio) => return Err(injected("read EIO")),
            Some(FaultKind::Crash) | Some(FaultKind::Torn { .. }) => {
                self.crash();
                return Err(injected("crash during read"));
            }
            _ => {}
        }
        // A misdirected read is served from the wrong address.
        let src = match fault {
            Some(FaultKind::Misdirected { to }) => to,
            _ => offset,
        };
        let images = self.images.lock();
        let data = &images.volatile;
        if src >= data.len() as u64 {
            return Ok(0);
        }
        let avail = (data.len() as u64 - src) as usize;
        let mut n = buf.len().min(avail);
        if let Some(FaultKind::Short { len }) = fault {
            n = n.min(len);
        }
        buf[..n].copy_from_slice(&data[src as usize..src as usize + n]);
        drop(images);
        // Transient transfer rot: the flip lands in the caller's buffer
        // only, so an immediate re-read observes clean data.
        if let Some(FaultKind::BitRot { offset: rot, mask }) = fault {
            if rot >= offset && rot < offset + n as u64 {
                buf[(rot - offset) as usize] ^= mask;
            }
        }
        Ok(n)
    }

    /// Positioned write into the volatile image (durable only after a
    /// successful [`Self::sync`]). The image grows as needed.
    pub fn write_at(&self, data: &[u8], offset: u64) -> std::io::Result<()> {
        self.check_poison()?;
        match self.plan().on_op(OpClass::Write) {
            Some(FaultKind::Eio) => return Err(injected("write EIO")),
            Some(FaultKind::Crash) => {
                self.crash();
                return Err(injected("crash before write"));
            }
            Some(FaultKind::Torn { keep }) => {
                // The write's prefix reaches the platter as the process
                // dies: apply it to BOTH images, then poison.
                let keep = keep.min(data.len());
                let mut images = self.images.lock();
                write_into(&mut images.volatile, &data[..keep], offset);
                write_into(&mut images.durable, &data[..keep], offset);
                drop(images);
                self.crash();
                return Err(injected("torn write"));
            }
            Some(FaultKind::LostWrite) => return Ok(()), // acked, never applied
            Some(FaultKind::Misdirected { to }) => {
                // The bytes land at the wrong address and the intended
                // slot keeps its stale contents; the caller sees success.
                write_into(&mut self.images.lock().volatile, data, to);
                return Ok(());
            }
            Some(FaultKind::BitRot { offset: rot, mask }) => {
                // The write applies, then one byte rots on the platter:
                // the flip persists in the volatile image and reaches the
                // durable one on the next sync.
                let mut images = self.images.lock();
                write_into(&mut images.volatile, data, offset);
                let rot = rot as usize;
                if rot < images.volatile.len() {
                    images.volatile[rot] ^= mask;
                }
                return Ok(());
            }
            Some(FaultKind::Short { .. }) | Some(FaultKind::DropSync) | None => {}
        }
        write_into(&mut self.images.lock().volatile, data, offset);
        Ok(())
    }

    /// Extends the volatile image to at least `bytes` (like `ftruncate`
    /// growing a file). Length changes are treated as journalled metadata:
    /// the durable image grows too, zero-filled.
    pub fn grow_to(&self, bytes: u64) -> std::io::Result<()> {
        self.check_poison()?;
        let mut images = self.images.lock();
        if (images.volatile.len() as u64) < bytes {
            images.volatile.resize(bytes as usize, 0);
        }
        if (images.durable.len() as u64) < bytes {
            images.durable.resize(bytes as usize, 0);
        }
        Ok(())
    }

    /// Durability barrier: the durable image catches up to the volatile
    /// one — unless an armed [`FaultKind::DropSync`] makes it lie.
    pub fn sync(&self) -> std::io::Result<()> {
        self.check_poison()?;
        match self.plan().on_op(OpClass::Sync) {
            Some(FaultKind::Eio) => return Err(injected("sync EIO")),
            Some(FaultKind::Crash) | Some(FaultKind::Torn { .. }) => {
                self.crash();
                return Err(injected("crash during sync"));
            }
            Some(FaultKind::DropSync) => return Ok(()), // the lie
            Some(FaultKind::Short { .. })
            | Some(FaultKind::BitRot { .. })
            | Some(FaultKind::Misdirected { .. })
            | Some(FaultKind::LostWrite)
            | None => {}
        }
        let mut images = self.images.lock();
        let volatile = images.volatile.clone();
        images.durable = volatile;
        Ok(())
    }
}

/// The fault disk is an [`bess_io::IoDevice`], so it slots under the async
/// I/O queue as middleware: the two-image durable/volatile model observes
/// exactly the op stream the queue issues, and the crash/corruption
/// matrices — calibrated to the Nth device op per [`OpClass`] — run
/// unchanged against either executor.
impl bess_io::IoDevice for FaultDisk {
    fn read_at(&self, buf: &mut [u8], offset: u64) -> std::io::Result<usize> {
        FaultDisk::read_at(self, buf, offset)
    }

    fn write_at(&self, data: &[u8], offset: u64) -> std::io::Result<()> {
        FaultDisk::write_at(self, data, offset)
    }

    fn grow_to(&self, bytes: u64) -> std::io::Result<()> {
        FaultDisk::grow_to(self, bytes)
    }

    fn sync(&self) -> std::io::Result<()> {
        FaultDisk::sync(self)
    }

    fn len(&self) -> std::io::Result<u64> {
        Ok(FaultDisk::len(self))
    }
}

fn write_into(image: &mut Vec<u8>, data: &[u8], offset: u64) {
    let end = offset as usize + data.len();
    if image.len() < end {
        image.resize(end, 0);
    }
    image[offset as usize..end].copy_from_slice(data);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsynced_writes_are_lost_on_crash() {
        let disk = FaultDisk::new(FaultPlan::unarmed());
        disk.write_at(b"durable", 0).unwrap();
        disk.sync().unwrap();
        disk.write_at(b"volatile", 7).unwrap();
        disk.crash();
        assert!(disk.read_at(&mut [0u8; 1], 0).is_err(), "poisoned");
        disk.reopen(FaultPlan::unarmed());
        let mut buf = vec![0u8; 16];
        let n = disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..n], b"durable", "only synced bytes survive");
    }

    #[test]
    fn nth_write_faults_exactly_once() {
        let plan = FaultPlan::armed(OpClass::Write, 1, FaultKind::Eio);
        let disk = FaultDisk::new(Arc::clone(&plan));
        disk.write_at(b"a", 0).unwrap();
        assert!(disk.write_at(b"b", 1).is_err(), "second write faults");
        disk.write_at(b"c", 1).unwrap(); // plan disarmed: retry succeeds
        assert_eq!(plan.fired(), 1);
        assert_eq!(plan.ops(OpClass::Write), 3);
    }

    #[test]
    fn torn_write_leaves_prefix_durably() {
        let plan = FaultPlan::armed(OpClass::Write, 0, FaultKind::Torn { keep: 3 });
        let disk = FaultDisk::new(plan);
        assert!(disk.write_at(b"abcdef", 0).is_err());
        assert!(disk.is_poisoned());
        disk.reopen(FaultPlan::unarmed());
        let mut buf = vec![0u8; 8];
        let n = disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..n], b"abc", "prefix survived the tear");
    }

    #[test]
    fn dropped_sync_lies() {
        let plan = FaultPlan::armed(OpClass::Sync, 0, FaultKind::DropSync);
        let disk = FaultDisk::new(plan);
        disk.write_at(b"gone", 0).unwrap();
        disk.sync().unwrap(); // reports success
        disk.crash();
        disk.reopen(FaultPlan::unarmed());
        assert_eq!(disk.len(), 0, "the 'synced' bytes were lost");
    }

    #[test]
    fn read_bit_rot_is_transient() {
        let plan = FaultPlan::armed(OpClass::Read, 0, FaultKind::BitRot { offset: 2, mask: 0x80 });
        let disk = FaultDisk::new(plan);
        disk.write_at(b"abcdef", 0).unwrap();
        let mut buf = [0u8; 6];
        disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"ab\xe3def", "bit 7 of byte 2 flipped");
        disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"abcdef", "re-read sees clean data");
    }

    #[test]
    fn write_bit_rot_persists_and_syncs() {
        let plan = FaultPlan::armed(OpClass::Write, 0, FaultKind::BitRot { offset: 1, mask: 0x01 });
        let disk = FaultDisk::new(plan);
        disk.write_at(b"abc", 0).unwrap();
        disk.sync().unwrap();
        disk.crash();
        disk.reopen(FaultPlan::unarmed());
        let mut buf = [0u8; 3];
        disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"ac\x63", "rot survived the sync durably");
    }

    #[test]
    fn misdirected_write_lands_at_wrong_offset() {
        let plan = FaultPlan::armed(OpClass::Write, 1, FaultKind::Misdirected { to: 0 });
        let disk = FaultDisk::new(plan);
        disk.write_at(b"aaaa", 0).unwrap();
        disk.write_at(b"bbbb", 4).unwrap(); // acked, but lands at 0
        let mut buf = [0u8; 8];
        let n = disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf[..n], b"bbbb", "offset 4 never got its bytes");
    }

    #[test]
    fn misdirected_read_serves_wrong_sector() {
        let plan = FaultPlan::armed(OpClass::Read, 0, FaultKind::Misdirected { to: 4 });
        let disk = FaultDisk::new(plan);
        disk.write_at(b"aaaabbbb", 0).unwrap();
        let mut buf = [0u8; 4];
        disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"bbbb", "served the wrong sector");
        disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"aaaa", "next read is clean");
    }

    #[test]
    fn lost_write_is_acked_but_never_applied() {
        let plan = FaultPlan::armed(OpClass::Write, 1, FaultKind::LostWrite);
        let disk = FaultDisk::new(plan);
        disk.write_at(b"old", 0).unwrap();
        disk.write_at(b"new", 0).unwrap(); // lost
        let mut buf = [0u8; 3];
        disk.read_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"old");
    }

    #[test]
    fn short_read_returns_fewer_bytes_once() {
        let plan = FaultPlan::armed(OpClass::Read, 0, FaultKind::Short { len: 2 });
        let disk = FaultDisk::new(plan);
        disk.write_at(b"abcdef", 0).unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(disk.read_at(&mut buf, 0).unwrap(), 2);
        assert_eq!(disk.read_at(&mut buf, 2).unwrap(), 4, "retry completes");
    }
}
