//! # bess-storage — the physical storage layer of BeSS
//!
//! Implements §2 of "A High Performance Configurable Storage Manager"
//! (Biliris & Panagos, ICDE 1995): **storage areas** (UNIX files or — here,
//! additionally — in-memory regions standing in for raw partitions),
//! partitioned into **extents**, with disk segments allocated by the
//! **binary buddy system** of Biliris (ICDE 1992). File-backed areas expand
//! one extent at a time; fixed areas model raw partitions.
//!
//! The allocator state is persisted per extent on a dedicated metadata page
//! and rebuilt on open, so segments survive restarts. All I/O is counted in
//! [`IoStats`] for the benchmark harness.
//!
//! ```
//! use bess_storage::{AreaConfig, AreaId, StorageArea};
//!
//! let area = StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap();
//! let seg = area.alloc(3).unwrap(); // a 3-page disk segment
//! let page = vec![7u8; area.page_size()];
//! area.write_page(seg.start_page, &page).unwrap();
//! area.free(seg).unwrap();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod area;
mod buddy;
mod error;
pub mod fault;
pub mod integrity;
mod page;
mod space;
mod stats;

pub use area::{AreaConfig, PageUpdate, StorageArea};
pub use fault::{FaultDisk, FaultKind, FaultPlan, OpClass};
pub use buddy::BuddyExtent;
pub use error::{CorruptKind, StorageError, StorageResult};
pub use integrity::PAGE_HDR;
pub use page::{order_for_pages, AreaId, DiskPtr, PageId, PAGE_SIZE};
pub use space::DiskSpace;
pub use stats::IoStats;
