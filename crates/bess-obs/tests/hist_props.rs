//! Property tests for the log-bucketed histogram: the bucket scheme tiles
//! the u64 domain, quantiles never undershoot the recorded value's bucket,
//! and snapshot merge is associative/commutative with exact counts.

use bess_obs::{bucket_bounds, bucket_of, HistogramSnapshot, LatencyHistogram, BUCKETS};
use proptest::prelude::*;

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::unregistered();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bucket_bounds_contain_their_values(v in any::<u64>()) {
        let b = bucket_of(v);
        prop_assert!(b < BUCKETS);
        let (lo, hi) = bucket_bounds(b);
        prop_assert!(lo <= v && v <= hi, "value {v} outside bucket {b} [{lo}, {hi}]");
    }

    #[test]
    fn buckets_tile_without_gaps(i in 1usize..BUCKETS) {
        let (_, prev_hi) = bucket_bounds(i - 1);
        let (lo, hi) = bucket_bounds(i);
        prop_assert_eq!(lo, prev_hi + 1);
        prop_assert!(lo <= hi);
        // Boundary values land exactly where the bounds promise.
        prop_assert_eq!(bucket_of(lo), i);
        prop_assert_eq!(bucket_of(hi), i);
        prop_assert_eq!(bucket_of(prev_hi), i - 1);
    }

    #[test]
    fn quantile_upper_bounds_the_data(values in prop::collection::vec(any::<u64>(), 1..64)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        let max = *values.iter().max().unwrap();
        // p100 reports the upper bound of the max value's bucket: at least
        // the max itself, at most one power of two above it.
        let p100 = snap.quantile(1.0);
        prop_assert!(p100 >= max);
        prop_assert!(p100 <= bucket_bounds(bucket_of(max)).1);
        // Quantiles are monotone.
        prop_assert!(snap.p50() <= snap.p99());
        prop_assert!(snap.p99() <= p100);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(any::<u64>(), 0..32),
        b in prop::collection::vec(any::<u64>(), 0..32),
        c in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let ab_c = sa.merge(&sb).merge(&sc);
        let a_bc = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(ab_c.buckets, a_bc.buckets);
        prop_assert_eq!(ab_c.sum, a_bc.sum);

        let ba = sb.merge(&sa);
        let ab = sa.merge(&sb);
        prop_assert_eq!(ab.buckets, ba.buckets);
        prop_assert_eq!(ab.sum, ba.sum);

        // Merging matches recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = snapshot_of(&all);
        prop_assert_eq!(ab_c.buckets, direct.buckets);
        prop_assert_eq!(ab_c.sum, direct.sum);
        prop_assert_eq!(ab_c.count(), (a.len() + b.len() + c.len()) as u64);
    }

    #[test]
    fn since_inverts_merge(
        before in prop::collection::vec(any::<u64>(), 0..32),
        extra in prop::collection::vec(any::<u64>(), 0..32),
    ) {
        let early = snapshot_of(&before);
        let mut all = before.clone();
        all.extend_from_slice(&extra);
        let late = snapshot_of(&all);
        let diff = late.since(&early);
        let expect = snapshot_of(&extra);
        prop_assert_eq!(diff.buckets, expect.buckets);
        prop_assert_eq!(diff.sum, expect.sum);
    }
}
