//! The `obs-trace` event journal: a fixed-capacity ring buffer of span
//! events for tracing the commit and fault-wave paths.
//!
//! The journal is always compiled (so it can be tested and embedded
//! elsewhere); the `obs-trace` feature only controls whether
//! [`crate::Registry`] carries one and whether [`crate::Registry::trace`]
//! records into it. Recording takes a short mutex (rank `ObsJournal` in
//! `lock_order.toml`) — acceptable for a diagnostics path that is off by
//! default, and bounded: when full, the oldest event is dropped and a
//! drop counter keeps the loss observable.

use std::collections::VecDeque;
use std::time::Instant;

use parking_lot::Mutex;

/// What a [`SpanEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanPhase {
    /// Entry into a span.
    Begin,
    /// Exit from a span.
    End,
    /// A point event with no duration.
    Mark,
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotonic sequence number (never reused, survives ring wrap).
    pub seq: u64,
    /// Nanoseconds since the journal was created.
    pub t_ns: u64,
    /// Span name (`server.commit`, `vm.fault.wave2`, …).
    pub name: &'static str,
    /// Begin / End / Mark.
    pub phase: SpanPhase,
    /// Caller-defined argument (transaction id, segment id, …).
    pub arg: u64,
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<SpanEvent>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring of [`SpanEvent`]s.
#[derive(Debug)]
pub struct Journal {
    epoch: Instant,
    events: Mutex<Ring>,
}

impl Journal {
    /// A journal holding at most `cap` events (oldest evicted first).
    pub fn new(cap: usize) -> Journal {
        assert!(cap > 0, "journal needs capacity");
        Journal {
            epoch: Instant::now(),
            events: Mutex::new(Ring {
                buf: VecDeque::with_capacity(cap),
                cap,
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn record(&self, name: &'static str, phase: SpanPhase, arg: u64) {
        // Truncation unreachable: 2^64 ns since epoch is ~584 years.
        let t_ns = self.epoch.elapsed().as_nanos() as u64;
        let mut events = self.events.lock();
        let seq = events.next_seq;
        events.next_seq += 1;
        if events.buf.len() == events.cap {
            events.buf.pop_front();
            events.dropped += 1;
        }
        events.buf.push_back(SpanEvent { seq, t_ns, name, phase, arg });
    }

    /// A copy of the current contents, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        let events = self.events.lock();
        events.buf.iter().copied().collect()
    }

    /// How many events were evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        let events = self.events.lock();
        events.dropped
    }

    /// Empties the ring (the drop counter and sequence numbers persist).
    pub fn clear(&self) {
        let mut events = self.events.lock();
        events.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let j = Journal::new(8);
        j.record("a", SpanPhase::Begin, 1);
        j.record("a", SpanPhase::End, 1);
        j.record("b", SpanPhase::Mark, 7);
        let ev = j.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].name, "a");
        assert_eq!(ev[0].phase, SpanPhase::Begin);
        assert_eq!(ev[2].arg, 7);
        assert!(ev[0].seq < ev[1].seq && ev[1].seq < ev[2].seq);
        assert!(ev[0].t_ns <= ev[1].t_ns && ev[1].t_ns <= ev[2].t_ns);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let j = Journal::new(4);
        for i in 0..10 {
            j.record("tick", SpanPhase::Mark, i);
        }
        let ev = j.events();
        assert_eq!(ev.len(), 4);
        assert_eq!(ev.iter().map(|e| e.arg).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(j.dropped(), 6);
        j.clear();
        assert!(j.events().is_empty());
        j.record("tick", SpanPhase::Mark, 42);
        assert_eq!(j.events()[0].seq, 10);
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        let j = std::sync::Arc::new(Journal::new(100_000));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let j = std::sync::Arc::clone(&j);
                s.spawn(move || {
                    for i in 0..1000 {
                        j.record("t", SpanPhase::Mark, i);
                    }
                });
            }
        });
        let ev = j.events();
        assert_eq!(ev.len(), 4000);
        assert_eq!(j.dropped(), 0);
        // Sequence numbers are unique and dense.
        let mut seqs: Vec<u64> = ev.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..4000).collect::<Vec<_>>());
    }
}
