//! The unified observability layer of the BeSS workspace.
//!
//! The paper justifies every architectural choice — two-level clock,
//! callback locking, the three-wave swizzling protocol — with measured
//! counters (§6). This crate is the substrate those measurements flow
//! through: lock-free [`Counter`]s and [`Gauge`]s (relaxed atomics), a
//! log-bucketed [`LatencyHistogram`] with mergeable snapshots, and a
//! hierarchical [`Registry`] with dot-separated names
//! (`wal.append.ns`, `cache.private.hits`, `lock.wait.ns`, …) that can be
//! dumped as text or JSON and diffed generically.
//!
//! Design rules (DESIGN.md §12):
//!
//! - Handles are cheap `Arc` clones; the hot path never takes a lock.
//!   The registry's map is only locked at registration and snapshot time.
//! - A component owns its metrics and registers them into its own
//!   registry at construction; a parent composes a unified view with
//!   [`Registry::adopt`], which clones the *handles* — values stay live.
//! - Durations are histograms named `*.ns`; byte counters end in
//!   `*_bytes`; everything else is a plain event counter.
//! - Timing can be disabled at runtime ([`Registry::set_timing`]) or the
//!   whole layer compiled out (feature `noop`) for overhead measurement.
//!
//! The feature-gated `obs-trace` journal (see [`journal`]) records
//! span-style begin/end events on the commit and fault-wave paths into a
//! fixed-size ring buffer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod journal;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

pub use journal::{SpanEvent, SpanPhase};

/// Number of logarithmic buckets in a [`LatencyHistogram`]: one per bit
/// position of a `u64`, so any nanosecond value lands somewhere.
pub const BUCKETS: usize = 64;

/// Default capacity of the `obs-trace` ring journal.
pub const JOURNAL_CAP: usize = 4096;

// ---------------------------------------------------------------------------
// Counter / Gauge
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter.
///
/// Cloning yields another handle onto the same value, which is how a
/// registry observes a component's live counters. All operations are
/// relaxed atomics — wait-free, no ordering implied.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to any registry. Also what
    /// `Counter::default()` returns.
    pub fn unregistered() -> Counter {
        Counter::default()
    }

    /// Adds one; returns the *previous* value (handy for 1-in-N sampling
    /// decisions at zero extra cost).
    #[inline]
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n`; returns the previous value.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        #[cfg(not(feature = "noop"))]
        {
            self.0.fetch_add(n, Ordering::Relaxed)
        }
        #[cfg(feature = "noop")]
        {
            let _ = n;
            0
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (resident pages, in-flight requests).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn unregistered() -> Gauge {
        Gauge::default()
    }

    /// Sets the value outright.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.store(v, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = v;
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        #[cfg(not(feature = "noop"))]
        self.0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "noop")]
        let _ = n;
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------------

/// Bucket index for a recorded value: its bit length, i.e. bucket `i`
/// (for `1 <= i <= 62`) covers `[2^(i-1), 2^i - 1]` nanoseconds, bucket 0
/// holds exact zeros, and bucket 63 absorbs everything from `2^62` up.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (BUCKETS - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// The inclusive `(low, high)` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index {i} out of range");
    match i {
        0 => (0, 0),
        63 => (1 << 62, u64::MAX),
        i => (1 << (i - 1), (1 << i) - 1),
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    /// Runtime switch for the *timing* convenience path ([`
    /// LatencyHistogram::start`]): when off, no clock is read and nothing
    /// is recorded. Direct `record()` calls are unaffected.
    timing: AtomicBool,
}

/// A fixed 64-bucket log-scale (HDR-style) histogram of nanosecond
/// latencies. Recording is wait-free: one relaxed `fetch_add` per bucket
/// plus one for the running sum.
#[derive(Clone, Debug)]
pub struct LatencyHistogram(Arc<HistInner>);

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            timing: AtomicBool::new(true),
        }))
    }
}

impl LatencyHistogram {
    /// A histogram not attached to any registry.
    pub fn unregistered() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one observation of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(ns, Ordering::Relaxed);
        }
        #[cfg(feature = "noop")]
        let _ = ns;
    }

    /// Whether the timing path is live.
    #[inline]
    pub fn timing(&self) -> bool {
        self.0.timing.load(Ordering::Relaxed)
    }

    /// Enables or disables the timing path at runtime.
    pub fn set_timing(&self, on: bool) {
        self.0.timing.store(on, Ordering::Relaxed);
    }

    /// Starts a timer that records into this histogram when dropped (or
    /// explicitly [`Timer::stop`]ped). When timing is disabled — or the
    /// crate is compiled with `noop` — no clock is read.
    #[inline]
    pub fn start(&self) -> Timer<'_> {
        self.start_if(true)
    }

    /// Starts a timer only when `sample` is true *and* timing is enabled.
    /// Hot paths pass `prev_count & MASK == 0` from the companion
    /// counter's [`Counter::inc`] return value, timing 1-in-N events for
    /// near-zero steady-state cost while still populating p50/p99.
    #[inline]
    pub fn start_if(&self, sample: bool) -> Timer<'_> {
        let armed = sample && cfg!(not(feature = "noop")) && self.timing();
        Timer { start: armed.then(Instant::now), hist: self }
    }

    /// A point-in-time copy of the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A scope timer from [`LatencyHistogram::start`]; records on drop.
#[derive(Debug)]
pub struct Timer<'a> {
    start: Option<Instant>,
    hist: &'a LatencyHistogram,
}

impl Timer<'_> {
    /// Stops and records now (drop does the same; this just names it).
    pub fn stop(self) {}

    /// Discards the measurement (e.g. on an error path that should not
    /// pollute the latency distribution).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            // Nanoseconds since t0; truncation from u128 is unreachable
            // for any realistic duration (2^64 ns ≈ 584 years).
            self.hist.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`]. Mergeable and
/// diffable, so per-shard histograms can be combined and intervals
/// measured.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation counts per log bucket (see [`bucket_bounds`]).
    pub buckets: [u64; BUCKETS],
    /// Sum of all recorded values (for the mean).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], sum: 0 }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count())
            .field("sum", &self.sum)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket containing that rank (a conservative estimate; the
    /// log buckets bound the error to 2x).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// Median (upper bucket bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile (upper bucket bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Element-wise union of two snapshots (bucket-wise addition).
    /// Associative and commutative, so shard snapshots merge in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            // Wrapping, to match the relaxed fetch_add on the live sum.
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// Element-wise difference `self - earlier`, for measuring an
    /// interval. Bucket counts saturate so a snapshot from a different
    /// epoch degrades to zeros; the sum wraps to stay the exact inverse
    /// of the wrapping additions that built it.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| {
                self.buckets[i].saturating_sub(earlier.buckets[i])
            }),
            sum: self.sum.wrapping_sub(earlier.sum),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A handle to one registered metric.
#[derive(Clone, Debug)]
pub enum Metric {
    /// An event counter.
    Counter(Counter),
    /// An up/down value.
    Gauge(Gauge),
    /// A latency distribution.
    Histogram(LatencyHistogram),
}

/// A hierarchical metric registry: dot-separated names mapped to live
/// handles. Components register at construction; parents compose unified
/// views with [`Registry::adopt`]. The map is behind a mutex (rank
/// `ObsRegistry` in `lock_order.toml`) that the hot path never touches.
#[derive(Debug)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    timing: AtomicBool,
    #[cfg(feature = "obs-trace")]
    journal: journal::Journal,
}

impl Default for Registry {
    fn default() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
            timing: AtomicBool::new(true),
            #[cfg(feature = "obs-trace")]
            journal: journal::Journal::new(JOURNAL_CAP),
        }
    }
}

fn join(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

impl Registry {
    /// A fresh registry with timing enabled.
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    /// A [`Group`] prefixing every registration with `prefix` (empty for
    /// the root).
    pub fn group(self: &Arc<Self>, prefix: &str) -> Group {
        Group { reg: Arc::clone(self), prefix: prefix.to_string() }
    }

    /// Gets or creates the counter registered as `name`. If `name` is
    /// already a different metric kind, returns an unregistered handle
    /// (a programmer error surfaced by the golden dump test, not a
    /// panic in the storage hot path).
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Gets or creates the gauge registered as `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Gets or creates the histogram registered as `name`, inheriting the
    /// registry's current timing switch.
    pub fn histogram(&self, name: &str) -> LatencyHistogram {
        let timing = self.timing.load(Ordering::Relaxed);
        let mut metrics = self.metrics.lock();
        let entry = metrics.entry(name.to_string()).or_insert_with(|| {
            let h = LatencyHistogram::default();
            h.set_timing(timing);
            Metric::Histogram(h)
        });
        match entry {
            Metric::Histogram(h) => h.clone(),
            _ => LatencyHistogram::default(),
        }
    }

    /// Registers an existing handle under `name`. Returns `false` (and
    /// leaves the registry unchanged) if the name is taken.
    pub fn register(&self, name: &str, metric: Metric) -> bool {
        let mut metrics = self.metrics.lock();
        match metrics.entry(name.to_string()) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(metric);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Clones every metric handle of `other` into this registry under
    /// `prefix` (live aliasing, not copying: both registries observe the
    /// same atomics). Names already present are left alone. Returns how
    /// many handles were adopted.
    pub fn adopt(&self, prefix: &str, other: &Registry) -> usize {
        let imported = other.metric_handles();
        let mut n = 0;
        let mut metrics = self.metrics.lock();
        for (name, handle) in imported {
            if let std::collections::btree_map::Entry::Vacant(v) =
                metrics.entry(join(prefix, &name))
            {
                v.insert(handle);
                n += 1;
            }
        }
        n
    }

    /// All (name, handle) pairs, for adoption.
    fn metric_handles(&self) -> Vec<(String, Metric)> {
        let metrics = self.metrics.lock();
        metrics.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }

    /// Enables or disables the timing paths of every histogram currently
    /// registered (and of those registered later).
    pub fn set_timing(&self, on: bool) {
        self.timing.store(on, Ordering::Relaxed);
        let metrics = self.metrics.lock();
        for metric in metrics.values() {
            if let Metric::Histogram(h) = metric {
                h.set_timing(on);
            }
        }
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock();
        let entries = metrics
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), v)
            })
            .collect();
        RegistrySnapshot { entries }
    }

    /// Text exposition: one sorted `name value` line per metric (see
    /// [`RegistrySnapshot::dump`]).
    pub fn dump(&self) -> String {
        self.snapshot().dump()
    }

    /// JSON exposition (see [`RegistrySnapshot::to_json`]).
    pub fn dump_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Records a span event into the `obs-trace` journal. Compiles to
    /// nothing without the feature.
    #[inline]
    pub fn trace(&self, name: &'static str, phase: SpanPhase, arg: u64) {
        #[cfg(feature = "obs-trace")]
        self.journal.record(name, phase, arg);
        #[cfg(not(feature = "obs-trace"))]
        let _ = (name, phase, arg);
    }

    /// Opens a span: records `Begin` now and `End` when the guard drops.
    #[inline]
    pub fn span(&self, name: &'static str, arg: u64) -> SpanGuard<'_> {
        self.trace(name, SpanPhase::Begin, arg);
        SpanGuard { reg: self, name, arg }
    }

    /// Drains a copy of the journal's current contents (empty without the
    /// `obs-trace` feature).
    pub fn trace_events(&self) -> Vec<SpanEvent> {
        #[cfg(feature = "obs-trace")]
        {
            self.journal.events()
        }
        #[cfg(not(feature = "obs-trace"))]
        {
            Vec::new()
        }
    }
}

/// Guard from [`Registry::span`]: emits the `End` event on drop.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    reg: &'a Registry,
    name: &'static str,
    arg: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.reg.trace(self.name, SpanPhase::End, self.arg);
    }
}

// ---------------------------------------------------------------------------
// Group
// ---------------------------------------------------------------------------

/// A registration handle scoped to a name prefix — what a component's
/// `metrics()` accessor returns. `group.counter("hits")` under prefix
/// `cache.private` registers `cache.private.hits`.
#[derive(Clone, Debug)]
pub struct Group {
    reg: Arc<Registry>,
    prefix: String,
}

impl Group {
    /// The backing registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.reg
    }

    /// This group's name prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// A child group: `prefix.name`.
    pub fn sub(&self, name: &str) -> Group {
        Group { reg: Arc::clone(&self.reg), prefix: join(&self.prefix, name) }
    }

    /// Gets or creates `prefix.name` as a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.reg.counter(&join(&self.prefix, name))
    }

    /// Gets or creates `prefix.name` as a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.reg.gauge(&join(&self.prefix, name))
    }

    /// Gets or creates `prefix.name` as a histogram.
    pub fn histogram(&self, name: &str) -> LatencyHistogram {
        self.reg.histogram(&join(&self.prefix, name))
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// The value of one metric at snapshot time. The histogram variant is
/// ~520 bytes of inline buckets — deliberate: snapshots are short-lived
/// value types and `Copy` matters more than the enum's footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram contents.
    Histogram(HistogramSnapshot),
}

/// A point-in-time copy of a whole [`Registry`], diffable and mergeable.
/// This is the generic replacement for the twelve bespoke
/// `XStatsSnapshot` structs: one `delta()` instead of a hand-written
/// `since()` per subsystem.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Sorted metric name → value.
    pub entries: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// The raw value for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Counter value for `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value for `name` (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot for `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of every counter whose name matches `prefix` up to a `.` or
    /// exactly (for rollups like "all storage.a*.page_reads").
    pub fn counter_sum(&self, suffix: &str) -> u64 {
        self.entries
            .iter()
            .filter(|(name, _)| {
                name.as_str() == suffix || name.ends_with(&format!(".{suffix}"))
            })
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// Interval measurement `self - earlier`: counters and histograms
    /// subtract (saturating); gauges keep their current value. Metrics
    /// missing from `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(name, v)| {
                let d = match (v, earlier.entries.get(name)) {
                    (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                        MetricValue::Counter(now.saturating_sub(*then))
                    }
                    (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                        MetricValue::Histogram(now.since(then))
                    }
                    (v, _) => *v,
                };
                (name.clone(), d)
            })
            .collect();
        RegistrySnapshot { entries }
    }

    /// Copies every entry of `other` in under `prefix` (existing names
    /// win), composing snapshots from separate registries.
    pub fn merge(&mut self, prefix: &str, other: &RegistrySnapshot) {
        for (name, v) in &other.entries {
            self.entries.entry(join(prefix, name)).or_insert(*v);
        }
    }

    /// Adds `other` into `self` under `prefix`: counters sum, histograms
    /// merge bucket-wise, and gauges take `other`'s value. Where
    /// [`RegistrySnapshot::merge`] composes *disjoint* registries (first
    /// entry wins on collision), `absorb` aggregates *homologous* ones —
    /// e.g. rolling the `client.commit.rtt.ns` histograms of many client
    /// connections into a single fleet-wide distribution.
    pub fn absorb(&mut self, prefix: &str, other: &RegistrySnapshot) {
        for (name, v) in &other.entries {
            let key = join(prefix, name);
            match self.entries.get_mut(&key) {
                None => {
                    self.entries.insert(key, *v);
                }
                Some(mine) => {
                    *mine = match (&*mine, v) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                            MetricValue::Counter(a.saturating_add(*b))
                        }
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                            MetricValue::Histogram(a.merge(b))
                        }
                        _ => *v,
                    };
                }
            }
        }
    }

    /// Text exposition: `name value` per line; histograms render as
    /// `name count=N sum=N p50=N p99=N`.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                MetricValue::Counter(c) => {
                    let _ = writeln!(out, "{name} {c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = writeln!(out, "{name} {g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name} count={} sum={} p50={} p99={}",
                        h.count(),
                        h.sum,
                        h.p50(),
                        h.p99()
                    );
                }
            }
        }
        out
    }

    /// JSON object mapping names to values; histograms become
    /// `{"count":..,"sum":..,"p50":..,"p99":..,"buckets":{"i":n,..}}`
    /// with only the non-empty buckets listed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_string(name));
            match v {
                MetricValue::Counter(c) => {
                    let _ = write!(out, "{c}");
                }
                MetricValue::Gauge(g) => {
                    let _ = write!(out, "{g}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":{{",
                        h.count(),
                        h.sum,
                        h.p50(),
                        h.p99()
                    );
                    let mut first = true;
                    for (b, &c) in h.buckets.iter().enumerate() {
                        if c != 0 {
                            if !first {
                                out.push(',');
                            }
                            let _ = write!(out, "\"{b}\":{c}");
                            first = false;
                        }
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Renders `s` as a quoted JSON string (escaping the control set).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_aggregates_where_merge_keeps_first() {
        let mk = |n: u64, ns: u64| {
            let reg = Registry::new();
            reg.counter("c").add(n);
            reg.histogram("h.ns").record(ns);
            reg.gauge("g").set(n as i64);
            reg.snapshot()
        };
        let a = mk(3, 100);
        let b = mk(5, 100_000);

        let mut merged = a.clone();
        merged.merge("", &b);
        assert_eq!(merged.counter("c"), 3, "merge keeps the existing entry");

        let mut absorbed = a.clone();
        absorbed.absorb("", &b);
        assert_eq!(absorbed.counter("c"), 8, "absorb sums counters");
        assert_eq!(absorbed.gauge("g"), 5, "absorb takes the newest gauge");
        let h = absorbed.histogram("h.ns").unwrap();
        assert_eq!(h.count(), 2, "absorb merges histogram buckets");
        assert!(h.p99() >= 100_000, "slow shard's tail survives the union");

        // Prefixed absorb lands under the prefix.
        let mut pre = RegistrySnapshot::default();
        pre.absorb("s0", &a);
        pre.absorb("s0", &b);
        assert_eq!(pre.counter("s0.c"), 8);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::unregistered();
        assert_eq!(c.inc(), 0);
        assert_eq!(c.add(4), 1);
        assert_eq!(c.get(), 5);
        let alias = c.clone();
        alias.inc();
        assert_eq!(c.get(), 6);

        let g = Gauge::unregistered();
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn bucket_scheme_is_total_and_ordered() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi);
            assert_eq!(bucket_of(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_of(hi), i, "upper bound of bucket {i}");
        }
        // Buckets tile the whole u64 range with no gaps.
        for i in 1..BUCKETS {
            assert_eq!(bucket_bounds(i - 1).1.wrapping_add(1), bucket_bounds(i).0);
        }
    }

    #[test]
    fn histogram_quantiles() {
        let h = LatencyHistogram::unregistered();
        for _ in 0..98 {
            h.record(100); // bucket 7: [64, 127]
        }
        h.record(100_000); // bucket 17
        h.record(1_000_000); // bucket 20
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.p50(), 127);
        assert!(s.p99() >= 100_000);
        assert_eq!(s.mean(), (98 * 100 + 100_000 + 1_000_000) / 100);
    }

    #[test]
    fn timer_records_once() {
        let h = LatencyHistogram::unregistered();
        h.start().stop();
        {
            let _t = h.start();
        }
        h.start().cancel();
        h.start_if(false).stop();
        assert_eq!(h.snapshot().count(), 2);
        h.set_timing(false);
        h.start().stop();
        assert_eq!(h.snapshot().count(), 2);
    }

    #[test]
    fn concurrency_smoke_totals_exact() {
        const THREADS: usize = 8;
        const ITERS: u64 = 10_000;
        let c = Counter::unregistered();
        let h = LatencyHistogram::unregistered();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..ITERS {
                        c.inc();
                        h.record((t as u64) * 1000 + (i % 7));
                    }
                });
            }
        });
        assert_eq!(c.get(), THREADS as u64 * ITERS);
        let s = h.snapshot();
        assert_eq!(s.count(), THREADS as u64 * ITERS);
        let expected_sum: u64 =
            (0..THREADS as u64).map(|t| ITERS * t * 1000 + (0..ITERS).map(|i| i % 7).sum::<u64>()).sum();
        assert_eq!(s.sum, expected_sum);
    }

    #[test]
    fn registry_get_or_create_aliases() {
        let reg = Registry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x.hits"), 2);
        // Kind mismatch returns a detached handle, never corrupts.
        let stray = reg.gauge("x.hits");
        stray.set(99);
        assert_eq!(reg.snapshot().counter("x.hits"), 2);
    }

    #[test]
    fn groups_prefix_names() {
        let reg = Registry::new();
        let g = reg.group("cache").sub("private");
        g.counter("hits").inc();
        g.histogram("fault.ns").record(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.private.hits"), 1);
        assert_eq!(snap.histogram("cache.private.fault.ns").unwrap().count(), 1);
    }

    #[test]
    fn adopt_aliases_live_handles() {
        let child = Registry::new();
        let hits = child.group("lock").counter("requests");
        let parent = Registry::new();
        assert_eq!(parent.adopt("", &child), 1);
        hits.add(3); // bumped AFTER adoption: parent sees it live
        assert_eq!(parent.snapshot().counter("lock.requests"), 3);
        // Re-adoption and collisions are no-ops.
        assert_eq!(parent.adopt("", &child), 0);
        let other = Registry::new();
        other.group("lock").counter("requests").add(100);
        assert_eq!(parent.adopt("", &other), 0);
        assert_eq!(parent.snapshot().counter("lock.requests"), 3);
        // Prefixed adoption namespaces a second instance.
        assert_eq!(parent.adopt("n2", &other), 1);
        assert_eq!(parent.snapshot().counter("n2.lock.requests"), 100);
    }

    #[test]
    fn snapshot_delta_and_dump() {
        let reg = Registry::new();
        let c = reg.counter("wal.appends");
        let h = reg.histogram("wal.append.ns");
        c.add(5);
        h.record(1000);
        let before = reg.snapshot();
        c.add(7);
        h.record(2000);
        h.record(3000);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counter("wal.appends"), 7);
        assert_eq!(d.histogram("wal.append.ns").unwrap().count(), 2);
        let dump = reg.dump();
        assert!(dump.contains("wal.appends 12"), "dump:\n{dump}");
        assert!(dump.contains("wal.append.ns count=3"), "dump:\n{dump}");
    }

    #[test]
    fn counter_sum_rolls_up() {
        let reg = Registry::new();
        reg.counter("storage.a0.page_reads").add(2);
        reg.counter("storage.a1.page_reads").add(3);
        reg.counter("page_reads_unrelated").add(100);
        let s = reg.snapshot();
        assert_eq!(s.counter_sum("page_reads"), 5);
    }

    #[test]
    fn json_is_balanced_and_escaped() {
        let reg = Registry::new();
        reg.counter("a.b").add(1);
        reg.histogram("a.ns").record(7);
        reg.gauge("g").set(-4);
        let json = reg.dump_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced: {json}"
        );
        assert!(json.contains("\"a.b\":1"));
        assert!(json.contains("\"g\":-4"));
        assert!(json.contains("\"count\":1"));
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn set_timing_disables_existing_and_future() {
        let reg = Registry::new();
        let h1 = reg.histogram("one.ns");
        reg.set_timing(false);
        let h2 = reg.histogram("two.ns");
        h1.start().stop();
        h2.start().stop();
        assert_eq!(h1.snapshot().count(), 0);
        assert_eq!(h2.snapshot().count(), 0);
        // Direct record() is unaffected by the timing switch.
        h1.record(5);
        assert_eq!(h1.snapshot().count(), 1);
        reg.set_timing(true);
        h2.start().stop();
        assert_eq!(h2.snapshot().count(), 1);
    }
}
