//! Aging regression tests (§E22 satellite): a deterministic
//! allocate/free/grow churn over large objects must keep buddy
//! fragmentation under a pinned bound, coalesce completely when drained,
//! and leave the allocator's invariants intact after every cycle burst.
//!
//! The geometry mirrors the harness's `largeobj_aging` scenario: 512-byte
//! pages and 64-page extents, so an extent's allocation table can never
//! overflow its metadata page even if every block is a single page.

use std::sync::Arc;

use bess_largeobj::{LargeObject, LoConfig};
use bess_storage::{AreaConfig, AreaId, StorageArea};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn aging_area() -> Arc<StorageArea> {
    Arc::new(
        StorageArea::create_mem(
            AreaId(0),
            AreaConfig {
                page_size: 512,
                extent_pages_log2: 6,
                initial_extents: 2,
                expandable: true,
                verify_on_read: true,
            },
        )
        .unwrap(),
    )
}

/// One churn cycle: mostly creates while the pool is small, then a mix of
/// grows (with truncate recycling) and destroys. Returns the fragmentation
/// in permille after the cycle.
fn churn(
    area: &Arc<StorageArea>,
    pool: &mut Vec<LargeObject>,
    r: &mut StdRng,
    pool_cap: usize,
) -> u64 {
    let action = r.gen_range(0..100u32);
    let size = r.gen_range(64..2048usize);
    if pool.len() < pool_cap / 2 || (action < 40 && pool.len() < pool_cap) {
        let mut lo = LargeObject::create(Arc::clone(area), LoConfig::default());
        lo.append(&vec![0x11; size]).unwrap();
        pool.push(lo);
    } else if action < 70 {
        let i = r.gen_range(0..pool.len());
        if pool[i].len() > 16 * 1024 {
            pool[i].truncate(2048).unwrap();
        } else {
            pool[i].append(&vec![0x22; size]).unwrap();
        }
    } else {
        let i = r.gen_range(0..pool.len());
        pool.swap_remove(i).destroy().unwrap();
    }
    (area.fragmentation() * 1000.0).round() as u64
}

/// N churn cycles never push mean external fragmentation past the pinned
/// bound, and the tree + allocator invariants hold at every burst edge.
#[test]
fn fragmentation_stays_under_pinned_bound() {
    let area = aging_area();
    let mut pool = Vec::new();
    let mut r = StdRng::seed_from_u64(0xa61);
    let mut peak = 0u64;
    for cycle in 0..2000 {
        let frag = churn(&area, &mut pool, &mut r, 48);
        peak = peak.max(frag);
        if cycle % 250 == 249 {
            area.check_allocator_invariants();
            for lo in &pool {
                lo.check_invariants();
            }
        }
    }
    // Pinned from measured behaviour (peaks ~500-600 permille): mean
    // fragmentation beyond 900 means coalescing has regressed.
    assert!(peak <= 900, "fragmentation peaked at {peak} permille");
    assert!(peak > 0, "churn never fragmented — the workload is inert");
    for lo in pool.drain(..) {
        lo.destroy().unwrap();
    }
}

/// Draining every object returns each extent to one maximal free block:
/// fragmentation exactly zero and all pages free again.
#[test]
fn full_drain_coalesces_to_zero_fragmentation() {
    let area = aging_area();
    let mut pool = Vec::new();
    let mut r = StdRng::seed_from_u64(0xa62);
    for _ in 0..600 {
        churn(&area, &mut pool, &mut r, 32);
    }
    assert!(area.allocated_pages() > 0);
    for lo in pool.drain(..) {
        lo.destroy().unwrap();
    }
    area.check_allocator_invariants();
    assert_eq!(
        area.allocated_pages(),
        0,
        "a destroyed object must return every page"
    );
    assert_eq!(
        area.fragmentation(),
        0.0,
        "fully-free extents must coalesce to a single block"
    );
}

/// The same seed must produce the same fragmentation trajectory — the
/// harness depends on this to chart comparable aging curves across runs.
#[test]
fn aging_trajectory_is_deterministic() {
    let run = |seed: u64| -> Vec<u64> {
        let area = aging_area();
        let mut pool = Vec::new();
        let mut r = StdRng::seed_from_u64(seed);
        let curve: Vec<u64> = (0..400).map(|_| churn(&area, &mut pool, &mut r, 32)).collect();
        for lo in pool.drain(..) {
            lo.destroy().unwrap();
        }
        curve
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8), "different seeds should diverge");
}

/// The fragmentation and free-page gauges track the allocator live: after
/// churn they match the area's computed state, and after a drain the
/// fragmentation gauge reads zero.
#[test]
fn fragmentation_gauges_track_allocator() {
    let area = aging_area();
    let mut pool = Vec::new();
    let mut r = StdRng::seed_from_u64(0xa63);
    for _ in 0..300 {
        churn(&area, &mut pool, &mut r, 32);
    }
    let snap = area.metrics().registry().snapshot();
    assert_eq!(
        snap.gauge("storage.a0.frag_permille"),
        (area.fragmentation() * 1000.0).round() as i64,
        "gauge must be refreshed on every alloc/free"
    );
    assert_eq!(snap.gauge("storage.a0.free_pages"), area.free_pages() as i64);
    for lo in pool.drain(..) {
        lo.destroy().unwrap();
    }
    let snap = area.metrics().registry().snapshot();
    assert_eq!(snap.gauge("storage.a0.frag_permille"), 0);
}
