//! The positional tree over variable-size disk segments.
//!
//! "The large object is stored in a sequence of variable-size segments
//! indexed by a tree structure" (§2.1 of the paper, citing Biliris ICDE'92
//! and SIGMOD'92). Leaves reference buddy-allocated disk segments that may
//! be partially full (slack absorbs inserts and appends without copying
//! whole objects); internal nodes index children by cumulative byte count,
//! so any byte offset is located in `O(depth)`.
//!
//! All structural operations keep leaf depth uniform: inserts add sibling
//! leaves and split overfull internals upward, exactly like a B+-tree keyed
//! by position.

use bess_storage::{DiskPtr, DiskSpace, StorageResult};

use crate::segio::{seg_move, seg_read, seg_write};

/// Maximum children per internal node.
pub(crate) const MAX_FANOUT: usize = 16;

/// Leaf-allocation growth state: appends allocate progressively larger
/// segments, from `next_pages` doubling up to `max_pages` (the paper's
/// "hints about the potential size of the object" seed `next_pages`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GrowState {
    pub next_pages: u32,
    pub max_pages: u32,
}

impl GrowState {
    fn take(&mut self) -> u32 {
        let pages = self.next_pages;
        self.next_pages = (self.next_pages * 2).min(self.max_pages);
        pages
    }
}

pub(crate) struct Ctx<'a> {
    pub space: &'a dyn DiskSpace,
    pub area: u32,
    pub grow: &'a mut GrowState,
}

impl Ctx<'_> {
    /// Allocates a leaf big enough for `bytes` (used for split tails).
    fn alloc_exact(&mut self, bytes: u64) -> StorageResult<Leaf> {
        let page_size = self.space.page_size() as u64;
        let pages = u32::try_from(bytes.div_ceil(page_size).max(1))
            .map_err(|_| bess_storage::StorageError::OutOfSpace)?;
        let seg = self.space.alloc(self.area, pages)?;
        Ok(Leaf {
            seg,
            len: 0,
            cap: u64::from(seg.pages) * page_size,
        })
    }

    /// Allocates a leaf following the growth policy (used for appends and
    /// bulk inserts).
    fn alloc_growing(&mut self) -> StorageResult<Leaf> {
        let pages = self.grow.take();
        let seg = self.space.alloc(self.area, pages)?;
        Ok(Leaf {
            seg,
            len: 0,
            cap: u64::from(seg.pages) * self.space.page_size() as u64,
        })
    }
}

#[derive(Debug)]
pub(crate) struct Leaf {
    pub seg: DiskPtr,
    /// Bytes used.
    pub len: u64,
    /// Bytes available (`pages * page_size`).
    pub cap: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Internal {
    pub children: Vec<Node>,
    /// Cached subtree byte length.
    pub len: u64,
}

#[derive(Debug)]
pub(crate) enum Node {
    Leaf(Leaf),
    Internal(Internal),
}

impl Node {
    pub fn len(&self) -> u64 {
        match self {
            Node::Leaf(l) => l.len,
            Node::Internal(i) => i.len,
        }
    }

    pub fn read_into(
        &self,
        area: &dyn DiskSpace,
        mut offset: u64,
        buf: &mut [u8],
    ) -> StorageResult<()> {
        match self {
            Node::Leaf(l) => seg_read(area, l.seg, offset, buf),
            Node::Internal(i) => {
                let mut done = 0usize;
                for child in &i.children {
                    if done == buf.len() {
                        break;
                    }
                    let clen = child.len();
                    if offset >= clen {
                        offset -= clen;
                        continue;
                    }
                    let take = ((clen - offset) as usize).min(buf.len() - done);
                    child.read_into(area, offset, &mut buf[done..done + take])?;
                    done += take;
                    offset = 0;
                }
                Ok(())
            }
        }
    }

    /// Overwrites bytes in place without changing length or structure.
    pub fn write_over(
        &self,
        area: &dyn DiskSpace,
        mut offset: u64,
        data: &[u8],
    ) -> StorageResult<()> {
        match self {
            Node::Leaf(l) => seg_write(area, l.seg, offset, data),
            Node::Internal(i) => {
                let mut done = 0usize;
                for child in &i.children {
                    if done == data.len() {
                        break;
                    }
                    let clen = child.len();
                    if offset >= clen {
                        offset -= clen;
                        continue;
                    }
                    let take = ((clen - offset) as usize).min(data.len() - done);
                    child.write_over(area, offset, &data[done..done + take])?;
                    done += take;
                    offset = 0;
                }
                Ok(())
            }
        }
    }

    /// Inserts `data` at `offset` (≤ `self.len()`), returning any new right
    /// siblings the parent must add after this node.
    pub fn insert(&mut self, ctx: &mut Ctx<'_>, offset: u64, data: &[u8]) -> StorageResult<Vec<Node>> {
        match self {
            Node::Leaf(leaf) => leaf_insert(leaf, ctx, offset, data),
            Node::Internal(node) => {
                if node.children.is_empty() {
                    // Empty tree: materialise the data as fresh leaves.
                    debug_assert_eq!(offset, 0);
                    let mut rest = data;
                    while !rest.is_empty() {
                        let mut fresh = ctx.alloc_growing()?;
                        let take = (fresh.cap as usize).min(rest.len());
                        seg_write(ctx.space, fresh.seg, 0, &rest[..take])?;
                        fresh.len = take as u64;
                        node.children.push(Node::Leaf(fresh));
                        rest = &rest[take..];
                    }
                    node.len = data.len() as u64;
                    if node.children.len() <= MAX_FANOUT {
                        return Ok(Vec::new());
                    }
                    let all: Vec<Node> = std::mem::take(&mut node.children);
                    let mut groups = chunk_children(all);
                    let first = groups.remove(0);
                    node.len = first.iter().map(Node::len).sum();
                    node.children = first;
                    return Ok(groups
                        .into_iter()
                        .map(|g| {
                            let len = g.iter().map(Node::len).sum();
                            Node::Internal(Internal { children: g, len })
                        })
                        .collect());
                }
                // Choose the child containing the offset; boundary offsets
                // go to the left neighbour so its slack is used first. An
                // append (offset == len) targets the last child.
                let mut idx = node.children.len() - 1;
                let mut local = offset;
                for (i, child) in node.children.iter().enumerate() {
                    if local <= child.len() {
                        idx = i;
                        break;
                    }
                    local -= child.len();
                }
                let siblings = node.children[idx].insert(ctx, local, data)?;
                node.children
                    .splice(idx + 1..idx + 1, siblings);
                node.len += data.len() as u64;
                if node.children.len() <= MAX_FANOUT {
                    return Ok(Vec::new());
                }
                // Overflow: keep the first chunk here, return the rest
                // wrapped in internals of the same depth.
                let all: Vec<Node> = std::mem::take(&mut node.children);
                let mut groups = chunk_children(all);
                let first = groups.remove(0);
                node.len = first.iter().map(Node::len).sum();
                node.children = first;
                Ok(groups
                    .into_iter()
                    .map(|g| {
                        let len = g.iter().map(Node::len).sum();
                        Node::Internal(Internal { children: g, len })
                    })
                    .collect())
            }
        }
    }

    /// Deletes `dlen` bytes at `offset`, freeing fully vacated segments.
    /// The node may end up empty (`len() == 0`); parents prune such nodes.
    pub fn delete(
        &mut self,
        area: &dyn DiskSpace,
        offset: u64,
        dlen: u64,
        freed: &mut Vec<DiskPtr>,
    ) -> StorageResult<()> {
        match self {
            Node::Leaf(leaf) => {
                debug_assert!(offset + dlen <= leaf.len);
                if offset == 0 && dlen == leaf.len {
                    freed.push(leaf.seg);
                    leaf.len = 0;
                } else {
                    let tail = leaf.len - offset - dlen;
                    seg_move(area, leaf.seg, offset + dlen, offset, tail)?;
                    leaf.len -= dlen;
                }
                Ok(())
            }
            Node::Internal(node) => {
                let mut remaining = dlen;
                let mut local = offset;
                for child in node.children.iter_mut() {
                    if remaining == 0 {
                        break;
                    }
                    let clen = child.len();
                    if local >= clen {
                        local -= clen;
                        continue;
                    }
                    let here = (clen - local).min(remaining);
                    child.delete(area, local, here, freed)?;
                    remaining -= here;
                    local = 0;
                }
                node.children.retain(|c| c.len() > 0);
                node.len -= dlen;
                Ok(())
            }
        }
    }

    /// Frees every segment in the subtree.
    pub fn destroy(&self, freed: &mut Vec<DiskPtr>) {
        match self {
            Node::Leaf(l) => freed.push(l.seg),
            Node::Internal(i) => {
                for c in &i.children {
                    c.destroy(freed);
                }
            }
        }
    }

    /// Depth of the subtree (a lone leaf is depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(i) => 1 + i.children.iter().map(Node::depth).max().unwrap_or(0),
        }
    }

    /// Number of leaves in the subtree.
    pub fn num_leaves(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal(i) => i.children.iter().map(Node::num_leaves).sum(),
        }
    }

    /// Validates cached lengths, fanout, and uniform leaf depth.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> u64 {
        match self {
            Node::Leaf(l) => {
                assert!(l.len <= l.cap, "leaf len {} exceeds cap {}", l.len, l.cap);
                l.len
            }
            Node::Internal(i) => {
                assert!(i.children.len() <= MAX_FANOUT, "fanout overflow");
                let sum: u64 = i.children.iter().map(Node::check_invariants).sum();
                assert_eq!(sum, i.len, "cached len mismatch");
                let depths: Vec<usize> = i.children.iter().map(Node::depth).collect();
                if let (Some(min), Some(max)) = (depths.iter().min(), depths.iter().max()) {
                    assert_eq!(min, max, "non-uniform leaf depth");
                }
                sum
            }
        }
    }
}

/// Splits `children` into groups of at most `MAX_FANOUT`, each at least
/// `MAX_FANOUT / 2` where possible.
fn chunk_children(children: Vec<Node>) -> Vec<Vec<Node>> {
    let n = children.len();
    let groups = n.div_ceil(MAX_FANOUT);
    let per = n.div_ceil(groups);
    let mut out = Vec::with_capacity(groups);
    let mut iter = children.into_iter();
    loop {
        let group: Vec<Node> = iter.by_ref().take(per).collect();
        if group.is_empty() {
            break;
        }
        out.push(group);
    }
    out
}

fn leaf_insert(leaf: &mut Leaf, ctx: &mut Ctx<'_>, offset: u64, data: &[u8]) -> StorageResult<Vec<Node>> {
    let n = data.len() as u64;
    let slack = leaf.cap - leaf.len;
    if n <= slack {
        // Shift the tail right and write in place.
        seg_move(ctx.space, leaf.seg, offset, offset + n, leaf.len - offset)?;
        seg_write(ctx.space, leaf.seg, offset, data)?;
        leaf.len += n;
        return Ok(Vec::new());
    }
    // Split: move the tail [offset..len) into its own leaf.
    let mut siblings = Vec::new();
    let tail_len = leaf.len - offset;
    if tail_len > 0 {
        let mut tail_leaf = ctx.alloc_exact(tail_len)?;
        let mut buf = vec![0u8; tail_len as usize];
        seg_read(ctx.space, leaf.seg, offset, &mut buf)?;
        seg_write(ctx.space, tail_leaf.seg, 0, &buf)?;
        tail_leaf.len = tail_len;
        siblings.push(tail_leaf);
        leaf.len = offset;
    }
    // Fill this leaf's remaining capacity with the head of the data.
    let head = ((leaf.cap - leaf.len) as usize).min(data.len());
    if head > 0 {
        seg_write(ctx.space, leaf.seg, leaf.len, &data[..head])?;
        leaf.len += head as u64;
    }
    // Remaining data goes into fresh leaves placed before the tail.
    let mut rest = &data[head..];
    let mut data_leaves = Vec::new();
    while !rest.is_empty() {
        let mut fresh = ctx.alloc_growing()?;
        let take = (fresh.cap as usize).min(rest.len());
        seg_write(ctx.space, fresh.seg, 0, &rest[..take])?;
        fresh.len = take as u64;
        data_leaves.push(fresh);
        rest = &rest[take..];
    }
    let mut out: Vec<Node> = data_leaves.into_iter().map(Node::Leaf).collect();
    out.extend(siblings.into_iter().map(Node::Leaf));
    Ok(out)
}
