//! The large-object interface: byte-range operations over the positional
//! tree.
//!
//! "BeSS offers a class interface for very large objects that includes byte
//! range operations — such as read, write, insert, delete a number of bytes
//! starting at some arbitrary byte position within the object, and append
//! bytes at the end of the object. In anticipation of object growth, hints
//! about the potential size of the object can be provided by the user."
//! (§2.1)

use std::fmt;
use std::sync::Arc;

use bess_storage::{DiskPtr, DiskSpace, StorageError};

use crate::tree::{Ctx, GrowState, Internal, Leaf, Node};

/// Errors from large-object operations.
#[derive(Debug)]
pub enum LoError {
    /// A byte range fell outside the object.
    OutOfRange {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Current object size.
        size: u64,
    },
    /// The storage layer failed.
    Storage(StorageError),
    /// A persisted descriptor failed validation.
    BadDescriptor(String),
}

impl fmt::Display for LoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoError::OutOfRange { offset, len, size } => {
                write!(f, "byte range {offset}+{len} outside object of {size} bytes")
            }
            LoError::Storage(e) => write!(f, "storage error: {e}"),
            LoError::BadDescriptor(m) => write!(f, "bad large-object descriptor: {m}"),
        }
    }
}

impl std::error::Error for LoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for LoError {
    fn from(e: StorageError) -> Self {
        LoError::Storage(e)
    }
}

/// Result alias for large-object operations.
pub type LoResult<T> = Result<T, LoError>;

/// Sizing policy for a large object.
#[derive(Clone, Copy, Debug)]
pub struct LoConfig {
    /// Pages of the first append-allocated leaf segment.
    pub initial_leaf_pages: u32,
    /// Ceiling for the doubling growth of leaf segments.
    pub max_leaf_pages: u32,
}

impl Default for LoConfig {
    fn default() -> Self {
        LoConfig {
            initial_leaf_pages: 4,
            max_leaf_pages: 16,
        }
    }
}

impl LoConfig {
    /// Derives a config from the user's size hint (§2.1): leaves start
    /// large enough that an object of `hint_bytes` needs only a handful of
    /// segments.
    pub fn with_size_hint(hint_bytes: u64, page_size: usize) -> Self {
        // LINT: allow(cast) — clamped to 1..=64 on the line itself.
        let pages = hint_bytes.div_ceil(page_size as u64).clamp(1, 64) as u32;
        LoConfig {
            initial_leaf_pages: pages.next_power_of_two().min(64),
            max_leaf_pages: 64,
        }
    }
}

/// A large object: a mutable, persistent byte sequence of unbounded size.
pub struct LargeObject {
    space: Arc<dyn DiskSpace>,
    area: u32,
    root: Node,
    grow: GrowState,
}

impl LargeObject {
    /// Creates an empty large object allocating from storage area `area`
    /// of `space`.
    pub fn create_in(space: Arc<dyn DiskSpace>, area: u32, config: LoConfig) -> Self {
        LargeObject {
            space,
            area,
            root: Node::Internal(Internal::default()),
            grow: GrowState {
                next_pages: config.initial_leaf_pages.max(1),
                max_pages: config.max_leaf_pages.max(config.initial_leaf_pages).max(1),
            },
        }
    }

    /// Convenience: creates a large object on a single [`StorageArea`].
    pub fn create(area: Arc<bess_storage::StorageArea>, config: LoConfig) -> Self {
        let id = area.id().0;
        Self::create_in(area as Arc<dyn DiskSpace>, id, config)
    }

    /// Convenience: restores a large object from a single [`StorageArea`].
    ///
    /// [`StorageArea`]: bess_storage::StorageArea
    pub fn from_descriptor(
        area: Arc<bess_storage::StorageArea>,
        desc: &[u8],
    ) -> LoResult<Self> {
        let id = area.id().0;
        Self::from_descriptor_in(area as Arc<dyn DiskSpace>, id, desc)
    }

    /// Current size in bytes.
    pub fn len(&self) -> u64 {
        self.root.len()
    }

    /// Whether the object holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree depth (for diagnostics and benchmarks).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Number of leaf segments (for diagnostics and benchmarks).
    pub fn num_leaves(&self) -> usize {
        self.root.num_leaves()
    }

    fn check_range(&self, offset: u64, len: u64) -> LoResult<()> {
        if offset.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(LoError::OutOfRange {
                offset,
                len,
                size: self.len(),
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    pub fn read(&self, offset: u64, buf: &mut [u8]) -> LoResult<()> {
        self.check_range(offset, buf.len() as u64)?;
        self.root.read_into(self.space.as_ref(), offset, buf)?;
        Ok(())
    }

    /// Reads `len` bytes at `offset` into a fresh vector.
    pub fn read_vec(&self, offset: u64, len: usize) -> LoResult<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.read(offset, &mut buf)?;
        Ok(buf)
    }

    /// Overwrites bytes at `offset` (entirely within the object).
    pub fn write(&mut self, offset: u64, data: &[u8]) -> LoResult<()> {
        self.check_range(offset, data.len() as u64)?;
        self.root.write_over(self.space.as_ref(), offset, data)?;
        Ok(())
    }

    /// Inserts `data` at byte position `offset` (≤ current length),
    /// shifting the tail of the object right.
    pub fn insert(&mut self, offset: u64, data: &[u8]) -> LoResult<()> {
        if offset > self.len() {
            return Err(LoError::OutOfRange {
                offset,
                len: data.len() as u64,
                size: self.len(),
            });
        }
        if data.is_empty() {
            return Ok(());
        }
        let mut ctx = Ctx {
            space: self.space.as_ref(),
            area: self.area,
            grow: &mut self.grow,
        };
        let siblings = self.root.insert(&mut ctx, offset, data)?;
        if !siblings.is_empty() {
            // Root split: grow the tree by one level.
            let old = std::mem::replace(&mut self.root, Node::Internal(Internal::default()));
            let mut children = vec![old];
            children.extend(siblings);
            let len = children.iter().map(Node::len).sum();
            self.root = Node::Internal(Internal { children, len });
        }
        Ok(())
    }

    /// Appends `data` at the end of the object.
    pub fn append(&mut self, data: &[u8]) -> LoResult<()> {
        self.insert(self.len(), data)
    }

    /// Deletes `len` bytes starting at `offset`, shifting the tail left
    /// and freeing vacated segments.
    pub fn delete(&mut self, offset: u64, len: u64) -> LoResult<()> {
        self.check_range(offset, len)?;
        if len == 0 {
            return Ok(());
        }
        let mut freed = Vec::new();
        self.root.delete(self.space.as_ref(), offset, len, &mut freed)?;
        for seg in freed {
            self.space.free(seg)?;
        }
        self.collapse_root();
        Ok(())
    }

    /// Truncates the object to `new_len` bytes (must not exceed the
    /// current length).
    pub fn truncate(&mut self, new_len: u64) -> LoResult<()> {
        let len = self.len();
        if new_len > len {
            return Err(LoError::OutOfRange {
                offset: new_len,
                len: 0,
                size: len,
            });
        }
        self.delete(new_len, len - new_len)
    }

    /// Destroys the object, freeing every segment.
    pub fn destroy(self) -> LoResult<()> {
        let mut freed = Vec::new();
        self.root.destroy(&mut freed);
        for seg in freed {
            self.space.free(seg)?;
        }
        Ok(())
    }

    fn collapse_root(&mut self) {
        loop {
            let Node::Internal(ref mut i) = self.root else {
                return;
            };
            if i.children.len() == 1 && matches!(i.children[0], Node::Internal(_)) {
                let child = i.children.pop().expect("one child");
                self.root = child;
            } else {
                return;
            }
        }
    }

    /// Validates internal invariants (testing hook).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        self.root.check_invariants();
    }

    // ---- descriptor persistence ----------------------------------------

    /// Serialises the tree into a descriptor, as stored in the overflow
    /// segment of the owning object segment ("the root of the tree is
    /// placed in the overflow segment", §2.1).
    pub fn to_descriptor(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.grow.next_pages.to_le_bytes());
        out.extend_from_slice(&self.grow.max_pages.to_le_bytes());
        out.extend_from_slice(&self.area.to_le_bytes());
        encode_node(&self.root, &mut out);
        out
    }

    /// Rebuilds a large object from a descriptor produced by
    /// [`Self::to_descriptor`]. New allocations go to storage area `area`.
    pub fn from_descriptor_in(space: Arc<dyn DiskSpace>, area: u32, desc: &[u8]) -> LoResult<Self> {
        let mut pos = 0usize;
        let next_pages = read_u32(desc, &mut pos)?;
        let max_pages = read_u32(desc, &mut pos)?;
        let stored_area = read_u32(desc, &mut pos)?;
        let _ = stored_area;
        let root = decode_node(desc, &mut pos, space.page_size() as u64)?;
        if pos != desc.len() {
            return Err(LoError::BadDescriptor("trailing bytes".into()));
        }
        // The root must be an internal node for insert's split handling.
        let root = match root {
            Node::Internal(_) => root,
            leaf @ Node::Leaf(_) => {
                let len = leaf.len();
                Node::Internal(Internal {
                    children: vec![leaf],
                    len,
                })
            }
        };
        Ok(LargeObject {
            space,
            area,
            root,
            grow: GrowState {
                next_pages: next_pages.max(1),
                max_pages: max_pages.max(1),
            },
        })
    }
}

impl fmt::Debug for LargeObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LargeObject")
            .field("len", &self.len())
            .field("depth", &self.depth())
            .field("leaves", &self.num_leaves())
            .finish()
    }
}

const TAG_LEAF: u8 = 1;
const TAG_INTERNAL: u8 = 2;

fn encode_node(node: &Node, out: &mut Vec<u8>) {
    match node {
        Node::Leaf(l) => {
            out.push(TAG_LEAF);
            out.extend_from_slice(&l.seg.area.0.to_le_bytes());
            out.extend_from_slice(&l.seg.start_page.to_le_bytes());
            out.extend_from_slice(&l.seg.pages.to_le_bytes());
            out.extend_from_slice(&l.len.to_le_bytes());
        }
        Node::Internal(i) => {
            out.push(TAG_INTERNAL);
            out.extend_from_slice(&(i.children.len() as u32).to_le_bytes());
            for c in &i.children {
                encode_node(c, out);
            }
        }
    }
}

fn read_u32(buf: &[u8], pos: &mut usize) -> LoResult<u32> {
    let end = *pos + 4;
    if end > buf.len() {
        return Err(LoError::BadDescriptor("truncated".into()));
    }
    let v = u32::from_le_bytes(buf[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

fn read_u64(buf: &[u8], pos: &mut usize) -> LoResult<u64> {
    let end = *pos + 8;
    if end > buf.len() {
        return Err(LoError::BadDescriptor("truncated".into()));
    }
    let v = u64::from_le_bytes(buf[*pos..end].try_into().unwrap());
    *pos = end;
    Ok(v)
}

fn decode_node(buf: &[u8], pos: &mut usize, page_size: u64) -> LoResult<Node> {
    if *pos >= buf.len() {
        return Err(LoError::BadDescriptor("truncated".into()));
    }
    let tag = buf[*pos];
    *pos += 1;
    match tag {
        TAG_LEAF => {
            let area = read_u32(buf, pos)?;
            let start_page = read_u64(buf, pos)?;
            let pages = read_u32(buf, pos)?;
            let len = read_u64(buf, pos)?;
            let cap = u64::from(pages) * page_size;
            if len > cap {
                return Err(LoError::BadDescriptor("leaf len exceeds capacity".into()));
            }
            Ok(Node::Leaf(Leaf {
                seg: DiskPtr {
                    area: bess_storage::AreaId(area),
                    start_page,
                    pages,
                },
                len,
                cap,
            }))
        }
        TAG_INTERNAL => {
            let n = read_u32(buf, pos)? as usize;
            if n > crate::tree::MAX_FANOUT {
                return Err(LoError::BadDescriptor("fanout overflow".into()));
            }
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(decode_node(buf, pos, page_size)?);
            }
            let len = children.iter().map(Node::len).sum();
            Ok(Node::Internal(Internal { children, len }))
        }
        _ => Err(LoError::BadDescriptor(format!("unknown node tag {tag}"))),
    }
}
