//! Byte-range I/O over buddy-allocated disk segments.

use bess_storage::{DiskPtr, DiskSpace, StorageResult};

/// Reads `buf.len()` bytes starting at byte `offset` of segment `seg`.
///
/// # Panics
/// Panics if the range exceeds the segment.
pub fn seg_read(
    space: &dyn DiskSpace,
    seg: DiskPtr,
    offset: u64,
    buf: &mut [u8],
) -> StorageResult<()> {
    let page_size = space.page_size() as u64;
    assert!(
        offset + buf.len() as u64 <= u64::from(seg.pages) * page_size,
        "segment read out of range"
    );
    let mut done = 0usize;
    while done < buf.len() {
        let pos = offset + done as u64;
        let page = seg.start_page + pos / page_size;
        let in_page = (page_size - pos % page_size) as usize;
        let chunk = in_page.min(buf.len() - done);
        space.read_at(
            seg.area.0,
            page,
            (pos % page_size) as usize,
            &mut buf[done..done + chunk],
        )?;
        done += chunk;
    }
    Ok(())
}

/// Writes `data` starting at byte `offset` of segment `seg`.
///
/// # Panics
/// Panics if the range exceeds the segment.
pub fn seg_write(
    space: &dyn DiskSpace,
    seg: DiskPtr,
    offset: u64,
    data: &[u8],
) -> StorageResult<()> {
    let page_size = space.page_size() as u64;
    assert!(
        offset + data.len() as u64 <= u64::from(seg.pages) * page_size,
        "segment write out of range"
    );
    let mut done = 0usize;
    while done < data.len() {
        let pos = offset + done as u64;
        let page = seg.start_page + pos / page_size;
        let in_page = (page_size - pos % page_size) as usize;
        let chunk = in_page.min(data.len() - done);
        space.write_at(
            seg.area.0,
            page,
            (pos % page_size) as usize,
            &data[done..done + chunk],
        )?;
        done += chunk;
    }
    Ok(())
}

/// Moves `len` bytes within a segment from `src` to `dst` (ranges may
/// overlap), via a bounce buffer.
pub fn seg_move(
    space: &dyn DiskSpace,
    seg: DiskPtr,
    src: u64,
    dst: u64,
    len: u64,
) -> StorageResult<()> {
    if len == 0 || src == dst {
        return Ok(());
    }
    let mut buf = vec![0u8; len as usize];
    seg_read(space, seg, src, &mut buf)?;
    seg_write(space, seg, dst, &buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bess_storage::{AreaConfig, AreaId, StorageArea};

    fn area() -> StorageArea {
        StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap()
    }

    #[test]
    fn cross_page_round_trip() {
        let area = area();
        let seg = area.alloc(3).unwrap();
        let data: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let offset = area.page_size() as u64 - 100; // straddles a boundary
        seg_write(&area, seg, offset, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        seg_read(&area, seg, offset, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn move_overlapping_forward() {
        let area = area();
        let seg = area.alloc(1).unwrap();
        seg_write(&area, seg, 0, b"abcdefgh").unwrap();
        // Shift "cdefgh" right by 2 to make room.
        seg_move(&area, seg, 2, 4, 6).unwrap();
        let mut buf = [0u8; 10];
        seg_read(&area, seg, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdcdefgh");
    }

    #[test]
    #[should_panic]
    fn out_of_segment_panics() {
        let area = area();
        let seg = area.alloc(1).unwrap();
        let mut buf = [0u8; 8];
        seg_read(&area, seg, area.page_size() as u64 - 4, &mut buf).unwrap();
    }
}
