//! # bess-largeobj — very large objects with byte-range operations
//!
//! Implements the large-object machinery of §2.1 of "A High Performance
//! Configurable Storage Manager" (Biliris & Panagos, ICDE 1995): objects too
//! big to build in memory are stored as "a sequence of variable-size
//! segments indexed by a tree structure" (the EOS large-object design of
//! Biliris, ICDE'92/SIGMOD'92), supporting **read, write, insert, delete**
//! at arbitrary byte positions and **append** at the end, with user size
//! hints pre-sizing the leaf segments.
//!
//! The tree root serialises to a compact descriptor
//! ([`LargeObject::to_descriptor`]) that the segment layer stores in the
//! overflow segment.
//!
//! ```
//! use std::sync::Arc;
//! use bess_largeobj::{LargeObject, LoConfig};
//! use bess_storage::{AreaConfig, AreaId, StorageArea};
//!
//! let area = Arc::new(StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap());
//! let mut lo = LargeObject::create(area, LoConfig::default());
//! lo.append(b"hello world").unwrap();
//! lo.insert(5, b",").unwrap();
//! lo.delete(0, 7).unwrap(); // drop "hello, "
//! assert_eq!(lo.read_vec(0, 5).unwrap(), b"world");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod object;
mod segio;
mod tree;

pub use object::{LargeObject, LoConfig, LoError, LoResult};
pub use segio::{seg_move, seg_read, seg_write};

#[cfg(test)]
mod tests {
    use super::*;
    use bess_storage::{AreaConfig, AreaId, StorageArea};
    use proptest::prelude::*;
    use std::sync::Arc;

    fn area() -> Arc<StorageArea> {
        Arc::new(StorageArea::create_mem(AreaId(1), AreaConfig::default()).unwrap())
    }

    fn lo(area: &Arc<StorageArea>) -> LargeObject {
        LargeObject::create(Arc::clone(area), LoConfig::default())
    }

    #[test]
    fn empty_object() {
        let a = area();
        let o = lo(&a);
        assert_eq!(o.len(), 0);
        assert!(o.is_empty());
        assert!(o.read_vec(0, 1).is_err());
    }

    #[test]
    fn append_and_read_small() {
        let a = area();
        let mut o = lo(&a);
        o.append(b"persistent").unwrap();
        assert_eq!(o.len(), 10);
        assert_eq!(o.read_vec(0, 10).unwrap(), b"persistent");
        assert_eq!(o.read_vec(3, 4).unwrap(), b"sist");
        o.check_invariants();
    }

    #[test]
    fn append_grows_across_many_segments() {
        let a = area();
        let mut o = lo(&a);
        let chunk = vec![7u8; 10_000];
        for _ in 0..50 {
            o.append(&chunk).unwrap();
        }
        assert_eq!(o.len(), 500_000);
        assert!(o.num_leaves() > 1);
        assert!(o.depth() >= 2);
        o.check_invariants();
        // Spot-check contents.
        assert_eq!(o.read_vec(499_990, 10).unwrap(), vec![7u8; 10]);
        assert_eq!(o.read_vec(123_456, 3).unwrap(), vec![7u8; 3]);
    }

    #[test]
    fn overwrite_in_place() {
        let a = area();
        let mut o = lo(&a);
        o.append(&vec![0u8; 100_000]).unwrap();
        o.write(50_000, b"MARKER").unwrap();
        assert_eq!(o.read_vec(50_000, 6).unwrap(), b"MARKER");
        assert_eq!(o.read_vec(49_999, 1).unwrap(), vec![0]);
        assert_eq!(o.len(), 100_000);
    }

    #[test]
    fn insert_in_middle() {
        let a = area();
        let mut o = lo(&a);
        o.append(b"hello world").unwrap();
        o.insert(5, b" brave new").unwrap();
        assert_eq!(
            o.read_vec(0, o.len() as usize).unwrap(),
            b"hello brave new world"
        );
        o.check_invariants();
    }

    #[test]
    fn insert_large_block_in_middle_splits_leaves() {
        let a = area();
        let mut o = lo(&a);
        o.append(&vec![1u8; 40_000]).unwrap();
        let before_leaves = o.num_leaves();
        o.insert(20_000, &vec![2u8; 200_000]).unwrap();
        assert!(o.num_leaves() > before_leaves);
        assert_eq!(o.len(), 240_000);
        assert_eq!(o.read_vec(19_999, 2).unwrap(), vec![1, 2]);
        assert_eq!(o.read_vec(219_999, 2).unwrap(), vec![2, 1]);
        o.check_invariants();
    }

    #[test]
    fn delete_middle_and_ends() {
        let a = area();
        let mut o = lo(&a);
        o.append(b"0123456789").unwrap();
        o.delete(3, 4).unwrap(); // -> 012789
        assert_eq!(o.read_vec(0, 6).unwrap(), b"012789");
        o.delete(0, 2).unwrap(); // -> 2789
        assert_eq!(o.read_vec(0, 4).unwrap(), b"2789");
        o.delete(2, 2).unwrap(); // -> 27
        assert_eq!(o.read_vec(0, 2).unwrap(), b"27");
        o.check_invariants();
    }

    #[test]
    fn delete_frees_segments() {
        let a = area();
        let mut o = lo(&a);
        o.append(&vec![9u8; 300_000]).unwrap();
        let allocated = a.allocated_pages();
        o.delete(0, 300_000).unwrap();
        assert_eq!(o.len(), 0);
        assert!(a.allocated_pages() < allocated);
        o.check_invariants();
        // Reusable afterwards.
        o.append(b"again").unwrap();
        assert_eq!(o.read_vec(0, 5).unwrap(), b"again");
    }

    #[test]
    fn truncate() {
        let a = area();
        let mut o = lo(&a);
        o.append(&(0..=255u8).cycle().take(100_000).collect::<Vec<_>>())
            .unwrap();
        o.truncate(10).unwrap();
        assert_eq!(o.len(), 10);
        assert_eq!(o.read_vec(0, 10).unwrap(), (0..10u8).collect::<Vec<_>>());
        assert!(o.truncate(11).is_err());
    }

    #[test]
    fn destroy_frees_everything() {
        let a = area();
        let mut o = lo(&a);
        o.append(&vec![1u8; 100_000]).unwrap();
        assert!(a.allocated_pages() > 0);
        o.destroy().unwrap();
        assert_eq!(a.allocated_pages(), 0);
    }

    #[test]
    fn size_hint_reduces_segment_count() {
        let a = area();
        let mut small = LargeObject::create(Arc::clone(&a), LoConfig::default());
        let mut hinted = LargeObject::create(
            Arc::clone(&a),
            LoConfig::with_size_hint(1 << 20, a.page_size()),
        );
        let data = vec![3u8; 500_000];
        small.append(&data).unwrap();
        hinted.append(&data).unwrap();
        assert!(
            hinted.num_leaves() <= small.num_leaves(),
            "hinted {} vs default {}",
            hinted.num_leaves(),
            small.num_leaves()
        );
    }

    #[test]
    fn descriptor_round_trip() {
        let a = area();
        let mut o = lo(&a);
        o.append(&vec![5u8; 123_456]).unwrap();
        o.insert(1000, b"needle").unwrap();
        let desc = o.to_descriptor();
        let restored = LargeObject::from_descriptor(Arc::clone(&a), &desc).unwrap();
        assert_eq!(restored.len(), o.len());
        assert_eq!(restored.read_vec(1000, 6).unwrap(), b"needle");
        restored.check_invariants();
    }

    #[test]
    fn bad_descriptor_rejected() {
        let a = area();
        assert!(LargeObject::from_descriptor(Arc::clone(&a), &[]).is_err());
        assert!(LargeObject::from_descriptor(Arc::clone(&a), &[0u8; 9]).is_err());
    }

    /// Random byte-range operations checked against a `Vec<u8>` model.
    #[derive(Debug, Clone)]
    enum Op {
        Append(Vec<u8>),
        Insert(u64, Vec<u8>),
        Delete(u64, u64),
        Write(u64, Vec<u8>),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        let data = prop::collection::vec(any::<u8>(), 1..3000);
        prop_oneof![
            data.clone().prop_map(Op::Append),
            (any::<u64>(), data.clone()).prop_map(|(o, d)| Op::Insert(o, d)),
            (any::<u64>(), 0u64..4000).prop_map(|(o, l)| Op::Delete(o, l)),
            (any::<u64>(), data).prop_map(|(o, d)| Op::Write(o, d)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn matches_vec_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
            let a = area();
            let mut o = lo(&a);
            let mut model: Vec<u8> = Vec::new();
            for op in ops {
                match op {
                    Op::Append(d) => {
                        o.append(&d).unwrap();
                        model.extend_from_slice(&d);
                    }
                    Op::Insert(off, d) => {
                        let off = if model.is_empty() { 0 } else { off % (model.len() as u64 + 1) };
                        o.insert(off, &d).unwrap();
                        let mut tail = model.split_off(off as usize);
                        model.extend_from_slice(&d);
                        model.append(&mut tail);
                    }
                    Op::Delete(off, l) => {
                        if model.is_empty() { continue; }
                        let off = off % model.len() as u64;
                        let l = l.min(model.len() as u64 - off);
                        o.delete(off, l).unwrap();
                        model.drain(off as usize..(off + l) as usize);
                    }
                    Op::Write(off, d) => {
                        if model.is_empty() { continue; }
                        let off = off % model.len() as u64;
                        let l = (d.len() as u64).min(model.len() as u64 - off) as usize;
                        o.write(off, &d[..l]).unwrap();
                        model[off as usize..off as usize + l].copy_from_slice(&d[..l]);
                    }
                }
                o.check_invariants();
                prop_assert_eq!(o.len(), model.len() as u64);
            }
            let contents = o.read_vec(0, model.len()).unwrap();
            prop_assert_eq!(contents, model);
        }
    }
}
