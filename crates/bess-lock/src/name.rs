//! Lockable resource names.

use std::fmt;

/// Identifies a transaction across the whole BeSS system.
///
/// Allocated by servers; unique per server and made globally unique by the
/// caller embedding a node number in the high bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// A lockable resource in the BeSS hierarchy.
///
/// The paper locks database pages (hardware-detected, §2.3) within files and
/// databases; object-level locking was future work (§2.3) and is supported
/// here by the `Object` granule for the software-based path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockName {
    /// A whole database.
    Database(u32),
    /// A BeSS file within a database.
    File {
        /// Owning database.
        db: u32,
        /// File number within the database.
        file: u32,
    },
    /// An object segment, identified by its slotted segment's first page.
    Segment {
        /// Storage area holding the slotted segment.
        area: u32,
        /// First page of the slotted segment.
        page: u64,
    },
    /// A single page.
    Page {
        /// Storage area holding the page.
        area: u32,
        /// Absolute page number.
        page: u64,
    },
    /// A single object (software-based object-level locking).
    Object {
        /// Storage area holding the object's slot.
        area: u32,
        /// Page of the slot.
        page: u64,
        /// Slot index within the slotted segment.
        slot: u32,
    },
}

impl fmt::Display for LockName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockName::Database(db) => write!(f, "db{db}"),
            LockName::File { db, file } => write!(f, "db{db}/file{file}"),
            LockName::Segment { area, page } => write!(f, "seg@{area}:{page}"),
            LockName::Page { area, page } => write!(f, "page@{area}:{page}"),
            LockName::Object { area, page, slot } => write!(f, "obj@{area}:{page}[{slot}]"),
        }
    }
}
