//! Lock-order validated synchronisation primitives.
//!
//! BeSS holds many short critical sections across layers — the lock
//! manager's shards, the buffer pools, the WAL state, the fault-injection
//! disk — and the only thing standing between them and an ABBA deadlock is
//! a documented acquisition order. This module makes that order executable:
//!
//! * Every tracked lock is declared here as a [`Rank`] (mirrored in the
//!   repo-root `lock_order.toml`, which `bess-lint` cross-checks against
//!   this enum and enforces statically).
//! * [`OrderedMutex`] / [`OrderedRwLock`] wrap the `parking_lot` shim and,
//!   in debug builds only, maintain a thread-local stack of held ranks.
//!   Acquiring a lock whose rank is not strictly greater than every rank
//!   already held panics with **both** acquisition backtraces — the held
//!   lock's and the offending one's.
//!
//! Release builds compile the bookkeeping away entirely: the wrappers cost
//! one `u16` + one `&'static str` per lock object and nothing per
//! operation.
//!
//! # Registering a new lock
//!
//! 1. Pick where it sits in the hierarchy and add a variant to [`Rank`]
//!    (equal ranks may never be held together, so give each lock class its
//!    own value and leave gaps for future layers).
//! 2. Add the same name/value pair to `lock_order.toml` under `[ranks]`,
//!    and a `[[lock]]` entry binding the field name to the rank so the
//!    static scan can see it.
//! 3. Construct the field with `OrderedMutex::new(Rank::…, "label", value)`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// The global lock hierarchy, smallest rank first.
///
/// A thread may only acquire a lock whose rank is **strictly greater** than
/// every rank it already holds (so two locks of equal rank can never be
/// held together). The values are spaced out to leave room for future
/// layers; they are mirrored in `lock_order.toml` and cross-checked by
/// `bess-lint`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum Rank {
    /// `LockManager::held` — the per-transaction held-lock registry. Only
    /// ever taken with no other tracked lock held.
    LockManagerHeld = 10,
    /// `LockManager::shards[i]` — a lock-table shard. At most one shard is
    /// held at a time (equal ranks conflict, which enforces that).
    LockManagerShard = 12,
    /// `LockManager::waits` — the waits-for graph (Detect policy), taken
    /// under a shard while classifying blockers.
    LockManagerWaits = 14,
    /// `Waiter::state` — a waiter's grant flag, signalled under a shard.
    LockWaiter = 16,
    /// `LockCache::locks` — the client-side cached-lock table.
    LockCache = 18,
    /// `SharedView::mapped` — a process's vframe→slot map. Held across
    /// `SharedCache` calls in the fault handler, so it ranks *below* the
    /// shared pool.
    ViewMap = 19,
    /// `SharedCache::inner` — the multi-process shared buffer pool.
    SharedPool = 20,
    /// `PrivatePool::inner` — a client's private page cache. Held across
    /// `PageIo::write_back` during eviction, so all storage-side locks rank
    /// above it.
    PrivatePool = 24,
    /// `MapIo::pages` — the in-memory test backing store for pools.
    TestPageIo = 28,
    /// `AreaSet::areas` — the area-id → `StorageArea` routing table.
    AreaSet = 30,
    /// `LogManager::gc` — group-commit coordination (leader election and
    /// follower wakeup). A leader holds it while taking the WAL state
    /// lock to swap tail buffers, so it ranks below `WalLog`. Followers
    /// condvar-wait on it (the rank stays registered across the wait).
    WalGroup = 38,
    /// `LogManager::state` — WAL append/flush state. Held only for short
    /// critical sections (append framing, buffer swap); the group-commit
    /// leader performs device I/O with no log locks held.
    WalLog = 40,
    /// `StorageArea::extents` — the buddy-allocator extent table, held
    /// across backend growth when expanding an area.
    AreaExtents = 44,
    /// `StorageArea::quarantined` — the set of pages whose integrity
    /// verification failed unrepairably. Checked before every backend
    /// read and never held across I/O (blocking-under-lock enforces
    /// that statically).
    AreaQuarantine = 45,
    /// `IoQueue::state` — the submission/completion bookkeeping of the
    /// async I/O runtime. Taken briefly at submit, dequeue, and completion
    /// publication; never held across a device call. Ranks above every
    /// lock a submitter may hold (WAL state, area extents) and below the
    /// device-side leaves.
    IoQueue = 48,
    /// `MemDevice::bytes` — the in-memory disk image behind an
    /// [`bess-io`] memory device (storage areas, the WAL's memory log).
    /// A device-side leaf: nothing is acquired under it.
    IoMemDevice = 49,
    /// `FaultDisk::images` — the two-image (durable/volatile) state of the
    /// fault-injection disk; `reopen` takes the plan slot under it.
    FaultImages = 50,
    /// `FaultDisk::plan` — the armed-plan slot.
    FaultPlanSlot = 52,
    /// `FaultPlan::armed` — the single-shot armed fault inside a plan.
    FaultArmed = 54,
    /// `Scrubber::cursor` — the background scrubber's walk position and
    /// bookkeeping. Ranks *above* every storage/WAL/fault lock so that
    /// holding it across a page verification (which acquires those) is
    /// itself a reported inversion: the scrubber must snapshot its cursor,
    /// drop the guard, then do I/O.
    ServerScrub = 55,
    /// `ServerInner::leases` — the per-client lease table. Taken briefly on
    /// every received message and by the reaper; never held across lock
    /// manager, log, or network calls.
    ServerLeases = 56,
    /// `ServerInner::dedup` — the request-id dedup window. Taken briefly
    /// around commit dispatch; never held across the commit itself.
    ServerDedup = 58,
    /// `Network::partitioned` — the set of partitioned nodes, checked on
    /// every send. A leaf: nothing is acquired under it.
    NetPartition = 60,
    /// `Network::plan` — the armed network-fault-plan slot.
    NetPlanSlot = 62,
    /// `NetFaultPlan::armed` — the single-shot armed fault inside a plan.
    NetFaultArmed = 64,
    /// `Registry::metrics` — the bess-obs metric name table. Taken on
    /// registration and snapshot only (recording is lock-free); a leaf.
    ObsRegistry = 66,
    /// `Journal::events` — the bess-obs trace ring buffer. A leaf, taken
    /// per traced event under any of the locks above.
    ObsJournal = 68,
}

impl Rank {
    /// Every variant, in hierarchy order — used by tests and by the
    /// `lock_order.toml` consistency check.
    pub const ALL: &'static [Rank] = &[
        Rank::LockManagerHeld,
        Rank::LockManagerShard,
        Rank::LockManagerWaits,
        Rank::LockWaiter,
        Rank::LockCache,
        Rank::ViewMap,
        Rank::SharedPool,
        Rank::PrivatePool,
        Rank::TestPageIo,
        Rank::AreaSet,
        Rank::WalGroup,
        Rank::WalLog,
        Rank::AreaExtents,
        Rank::AreaQuarantine,
        Rank::IoQueue,
        Rank::IoMemDevice,
        Rank::FaultImages,
        Rank::FaultPlanSlot,
        Rank::FaultArmed,
        Rank::ServerScrub,
        Rank::ServerLeases,
        Rank::ServerDedup,
        Rank::NetPartition,
        Rank::NetPlanSlot,
        Rank::NetFaultArmed,
        Rank::ObsRegistry,
        Rank::ObsJournal,
    ];

    /// The numeric rank value (as written in `lock_order.toml`).
    pub fn value(self) -> u16 {
        self as u16
    }

    /// The variant name (as written in `lock_order.toml`).
    pub fn name(self) -> &'static str {
        match self {
            Rank::LockManagerHeld => "LockManagerHeld",
            Rank::LockManagerShard => "LockManagerShard",
            Rank::LockManagerWaits => "LockManagerWaits",
            Rank::LockWaiter => "LockWaiter",
            Rank::LockCache => "LockCache",
            Rank::ViewMap => "ViewMap",
            Rank::SharedPool => "SharedPool",
            Rank::PrivatePool => "PrivatePool",
            Rank::TestPageIo => "TestPageIo",
            Rank::AreaSet => "AreaSet",
            Rank::WalGroup => "WalGroup",
            Rank::WalLog => "WalLog",
            Rank::AreaExtents => "AreaExtents",
            Rank::AreaQuarantine => "AreaQuarantine",
            Rank::IoQueue => "IoQueue",
            Rank::IoMemDevice => "IoMemDevice",
            Rank::FaultImages => "FaultImages",
            Rank::FaultPlanSlot => "FaultPlanSlot",
            Rank::FaultArmed => "FaultArmed",
            Rank::ServerScrub => "ServerScrub",
            Rank::ServerLeases => "ServerLeases",
            Rank::ServerDedup => "ServerDedup",
            Rank::NetPartition => "NetPartition",
            Rank::NetPlanSlot => "NetPlanSlot",
            Rank::NetFaultArmed => "NetFaultArmed",
            Rank::ObsRegistry => "ObsRegistry",
            Rank::ObsJournal => "ObsJournal",
        }
    }
}

#[cfg(debug_assertions)]
mod validator {
    use super::Rank;
    use std::backtrace::Backtrace;
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};

    // LINT: allow(raw-counter) — debug-validator token allocator, not a metric
    static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

    struct Held {
        rank: Rank,
        label: &'static str,
        token: u64,
        // Captured lazily by the runtime: with `RUST_BACKTRACE` unset this
        // is a cheap "disabled" placeholder, so the validator stays almost
        // free in ordinary debug runs.
        acquired_at: Backtrace,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Checks `rank` against every lock this thread already holds and
    /// records the acquisition. Runs *before* blocking on the lock so an
    /// inversion panics instead of deadlocking.
    pub(super) fn acquire(rank: Rank, label: &'static str) -> u64 {
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(conflict) = held.iter().find(|h| h.rank >= rank) {
                let msg = format!(
                    "lock-order violation: acquiring \"{label}\" (rank {} {:?}) while \
                     holding \"{}\" (rank {} {:?})\n\
                     --- held lock acquired at ---\n{}\n\
                     --- offending acquisition at ---\n{}",
                    rank.value(),
                    rank,
                    conflict.label,
                    conflict.rank.value(),
                    conflict.rank,
                    conflict.acquired_at,
                    Backtrace::force_capture(),
                );
                drop(held);
                panic!("{msg}");
            }
            held.push(Held {
                rank,
                label,
                token,
                acquired_at: Backtrace::capture(),
            });
        });
        token
    }

    /// Removes the acquisition identified by `token`. Tokens (not a plain
    /// pop) let guards be dropped in any order.
    pub(super) fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.token == token) {
                held.remove(pos);
            }
        });
    }
}

/// RAII registration of one acquisition on the thread-local stack.
/// Zero-sized (and wholly inert) in release builds.
struct HeldToken {
    #[cfg(debug_assertions)]
    token: u64,
}

impl HeldToken {
    #[inline]
    fn acquire(_rank: Rank, _label: &'static str) -> Self {
        HeldToken {
            #[cfg(debug_assertions)]
            token: validator::acquire(_rank, _label),
        }
    }
}

impl Drop for HeldToken {
    #[inline]
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        validator::release(self.token);
    }
}

/// A [`parking_lot::Mutex`] that participates in the global lock hierarchy.
pub struct OrderedMutex<T> {
    rank: Rank,
    label: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex at `rank`; `label` names it in violation reports.
    pub const fn new(rank: Rank, label: &'static str, value: T) -> Self {
        OrderedMutex {
            rank,
            label,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Acquires the mutex, first checking the hierarchy (debug builds).
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let held = HeldToken::acquire(self.rank, self.label);
        OrderedMutexGuard {
            guard: self.inner.lock(),
            _held: held,
        }
    }

    /// Attempts to acquire without blocking. A `try_lock` cannot deadlock,
    /// but a successful one still *holds* the lock, so it registers on the
    /// stack and is checked like any acquisition.
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let held = HeldToken::acquire(self.rank, self.label);
        self.inner
            .try_lock()
            .map(|guard| OrderedMutexGuard { guard, _held: held })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// This lock's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// RAII guard for [`OrderedMutex`].
pub struct OrderedMutexGuard<'a, T> {
    guard: parking_lot::MutexGuard<'a, T>,
    _held: HeldToken,
}

impl<'a, T> OrderedMutexGuard<'a, T> {
    /// The underlying `parking_lot` guard, for [`parking_lot::Condvar`]
    /// waits. The hierarchy entry stays registered across the wait: the
    /// thread is blocked for the whole gap, so it cannot acquire anything
    /// out of order while the mutex is temporarily released.
    pub fn raw(&mut self) -> &mut parking_lot::MutexGuard<'a, T> {
        &mut self.guard
    }
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A [`parking_lot::RwLock`] that participates in the global lock
/// hierarchy. Read and write acquisitions are ranked identically — a
/// same-thread read-while-reading recursion is reported too, since under
/// a writer-priority implementation it can deadlock just the same.
pub struct OrderedRwLock<T> {
    rank: Rank,
    label: &'static str,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates a reader-writer lock at `rank`.
    pub const fn new(rank: Rank, label: &'static str, value: T) -> Self {
        OrderedRwLock {
            rank,
            label,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Acquires shared read access, first checking the hierarchy.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        let held = HeldToken::acquire(self.rank, self.label);
        OrderedRwLockReadGuard {
            guard: self.inner.read(),
            _held: held,
        }
    }

    /// Acquires exclusive write access, first checking the hierarchy.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        let held = HeldToken::acquire(self.rank, self.label);
        OrderedRwLockWriteGuard {
            guard: self.inner.write(),
            _held: held,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// This lock's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// Shared-read RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T> {
    guard: parking_lot::RwLockReadGuard<'a, T>,
    _held: HeldToken,
}

impl<T> Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-write RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T> {
    guard: parking_lot::RwLockWriteGuard<'a, T>,
    _held: HeldToken,
}

impl<T> Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ranks_are_strictly_increasing_and_names_match() {
        for pair in Rank::ALL.windows(2) {
            assert!(
                pair[0].value() < pair[1].value(),
                "{:?} must rank below {:?}",
                pair[0],
                pair[1]
            );
        }
        for &r in Rank::ALL {
            assert_eq!(format!("{r:?}"), r.name());
        }
    }

    #[test]
    fn correct_order_is_silent() {
        let a = OrderedMutex::new(Rank::SharedPool, "a", 0u32);
        let b = OrderedMutex::new(Rank::AreaSet, "b", 0u32);
        let c = OrderedRwLock::new(Rank::WalLog, "c", 0u32);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.read();
        drop((ga, gb, gc));
        // Re-acquire after full release: the stack must be empty again.
        let _ga = a.lock();
    }

    #[test]
    fn guards_may_drop_in_any_order() {
        let a = OrderedMutex::new(Rank::SharedPool, "a", ());
        let b = OrderedMutex::new(Rank::AreaSet, "b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // out-of-order release: tokens, not a strict pop
        let c = OrderedMutex::new(Rank::WalLog, "c", ());
        let _gc = c.lock();
        drop(gb);
        // After releasing everything the low rank is acquirable again.
        drop(_gc);
        let _ga = a.lock();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inversion_panics_with_both_ranks_named() {
        // Seeded A→B / B→A inversion: thread 1 takes SharedPool→AreaSet
        // (legal); this thread takes AreaSet→SharedPool and must die.
        let err = thread::Builder::new()
            .name("inversion".into())
            .spawn(|| {
                let a = OrderedMutex::new(Rank::SharedPool, "pool", ());
                let b = OrderedMutex::new(Rank::AreaSet, "areas", ());
                {
                    let _ga = a.lock();
                    let _gb = b.lock(); // legal: 20 then 30
                }
                let _gb = b.lock();
                let _ga = a.lock(); // illegal: 20 while holding 30
            })
            .expect("spawn")
            .join()
            .expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "{msg}");
        assert!(msg.contains("pool") && msg.contains("areas"), "{msg}");
        assert!(
            msg.contains("held lock acquired at") && msg.contains("offending acquisition at"),
            "{msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn equal_rank_is_rejected() {
        let err = thread::spawn(|| {
            let a = OrderedMutex::new(Rank::LockManagerShard, "shard-a", ());
            let b = OrderedMutex::new(Rank::LockManagerShard, "shard-b", ());
            let _ga = a.lock();
            let _gb = b.lock(); // two shards at once: forbidden
        })
        .join()
        .expect_err("equal ranks must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn rwlock_participates_in_ordering() {
        let err = thread::spawn(|| {
            let rw = OrderedRwLock::new(Rank::AreaSet, "areas", ());
            let m = OrderedMutex::new(Rank::ViewMap, "mapped", ());
            let _g = rw.read();
            let _m = m.lock(); // 19 while holding 30
        })
        .join()
        .expect_err("rwlock inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock-order violation"), "{msg}");
    }

    #[test]
    fn condvar_interop_via_raw_guard() {
        use std::sync::Arc;
        use std::time::Duration;
        let pair = Arc::new((
            OrderedMutex::new(Rank::LockWaiter, "state", false),
            parking_lot::Condvar::new(),
        ));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(g.raw());
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().expect("waiter exits");
    }
}
