//! The lock manager: strict two-phase locking with timeout-based deadlock
//! detection.
//!
//! "The strict two phase locking algorithm is used for concurrency control"
//! and "timeouts are used for distributed deadlock detection" (§3). The
//! manager grants hierarchical modes FIFO, supports in-place upgrades
//! (which jump the queue, as is standard, to reduce upgrade deadlocks), and
//! resolves both local and distributed deadlocks by timing out waiters.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bess_obs::{Counter, Group, LatencyHistogram, Registry};
use parking_lot::Condvar;

use crate::mode::LockMode;
use crate::name::{LockName, TxnId};
use crate::order::{OrderedMutex, Rank};

/// How deadlocks are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeadlockPolicy {
    /// The paper's policy (§3): waiters time out and abort — simple and
    /// correct in a distributed setting where no one sees the whole
    /// waits-for graph.
    Timeout,
    /// Ablation baseline: maintain a local waits-for graph and refuse a
    /// wait that would close a cycle — victims are chosen immediately, at
    /// the cost of centralised knowledge (only sound within one manager).
    Detect,
}

/// Errors from lock operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockError {
    /// The wait exceeded the timeout — treated as a (possible) deadlock,
    /// exactly as the paper resolves deadlocks.
    Timeout {
        /// The waiting transaction.
        txn: TxnId,
        /// The contested resource.
        name: LockName,
        /// The requested mode.
        mode: LockMode,
    },
    /// The wait would close a waits-for cycle ([`DeadlockPolicy::Detect`]).
    DeadlockDetected {
        /// The refused transaction (the victim).
        txn: TxnId,
        /// The contested resource.
        name: LockName,
    },
    /// An unlock/downgrade named a lock the transaction does not hold.
    NotHeld {
        /// The transaction.
        txn: TxnId,
        /// The resource.
        name: LockName,
    },
    /// A downgrade requested a mode not covered by the held mode.
    BadDowngrade {
        /// The held mode.
        held: LockMode,
        /// The requested weaker mode.
        requested: LockMode,
    },
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Timeout { txn, name, mode } => {
                write!(f, "{txn} timed out waiting for {mode:?} on {name} (possible deadlock)")
            }
            LockError::DeadlockDetected { txn, name } => {
                write!(f, "{txn} would deadlock waiting for {name}")
            }
            LockError::NotHeld { txn, name } => write!(f, "{txn} does not hold {name}"),
            LockError::BadDowngrade { held, requested } => {
                write!(f, "cannot downgrade {held:?} to non-covered {requested:?}")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// Result alias for lock operations.
pub type LockResult<T> = Result<T, LockError>;

#[derive(Debug)]
enum WaitState {
    Waiting,
    Granted,
}

struct Waiter {
    txn: TxnId,
    mode: LockMode,
    upgrade: bool,
    state: OrderedMutex<WaitState>,
    cond: Condvar,
}

#[derive(Default)]
struct LockEntry {
    granted: Vec<(TxnId, LockMode)>,
    queue: VecDeque<Arc<Waiter>>,
}

impl LockEntry {
    fn can_grant(&self, txn: TxnId, mode: LockMode) -> bool {
        self.granted
            .iter()
            .all(|&(t, m)| t == txn || m.compatible(mode))
    }

    /// Grants every queue-front waiter whose mode is now compatible.
    fn promote(&mut self) -> Vec<Arc<Waiter>> {
        let mut woken = Vec::new();
        while let Some(front) = self.queue.front() {
            if !self.can_grant(front.txn, front.mode) {
                break;
            }
            let Some(w) = self.queue.pop_front() else {
                break;
            };
            if w.upgrade {
                if let Some(slot) = self.granted.iter_mut().find(|(t, _)| *t == w.txn) {
                    slot.1 = w.mode;
                } else {
                    // Holder released (aborted) while upgrade waited;
                    // grant as a fresh lock.
                    self.granted.push((w.txn, w.mode));
                }
            } else {
                self.granted.push((w.txn, w.mode));
            }
            woken.push(w);
        }
        woken
    }

    fn is_empty(&self) -> bool {
        self.granted.is_empty() && self.queue.is_empty()
    }
}

fn wake(woken: Vec<Arc<Waiter>>) {
    for w in woken {
        *w.state.lock() = WaitState::Granted;
        w.cond.notify_one();
    }
}

/// Counters kept by the lock manager — [`bess_obs`] handles registered
/// under the `lock.` prefix of [`LockManager::metrics`].
#[derive(Debug)]
pub struct LockStats {
    /// Total lock requests (`lock.requests`).
    pub requests: Counter,
    /// Requests granted without waiting (`lock.immediate`).
    pub immediate: Counter,
    /// Requests that waited (`lock.waits`).
    pub waits: Counter,
    /// Requests that timed out, deadlock victims (`lock.timeouts`).
    pub timeouts: Counter,
    /// Upgrade requests (`lock.upgrades`).
    pub upgrades: Counter,
}

impl LockStats {
    fn new(group: &Group) -> LockStats {
        LockStats {
            requests: group.counter("requests"),
            immediate: group.counter("immediate"),
            waits: group.counter("waits"),
            timeouts: group.counter("timeouts"),
            upgrades: group.counter("upgrades"),
        }
    }
}

const SHARDS: usize = 16;

/// The BeSS lock manager.
///
/// Thread-safe; one instance per server (and per node server, which locks
/// on behalf of its local applications, §3).
pub struct LockManager {
    shards: Vec<OrderedMutex<HashMap<LockName, LockEntry>>>,
    held: OrderedMutex<HashMap<TxnId, HashSet<LockName>>>,
    /// Waits-for edges (waiter -> blockers), maintained only under
    /// [`DeadlockPolicy::Detect`].
    waits: OrderedMutex<HashMap<TxnId, HashSet<TxnId>>>,
    policy: DeadlockPolicy,
    default_timeout: Duration,
    group: Group,
    stats: LockStats,
    wait_ns: LatencyHistogram,
}

impl LockManager {
    /// Creates a manager with the given deadlock timeout (the paper's
    /// resolution policy).
    pub fn new(default_timeout: Duration) -> Self {
        Self::with_policy(default_timeout, DeadlockPolicy::Timeout)
    }

    /// Creates a manager with an explicit deadlock policy.
    pub fn with_policy(default_timeout: Duration, policy: DeadlockPolicy) -> Self {
        let group = Registry::new().group("lock");
        let stats = LockStats::new(&group);
        let wait_ns = group.histogram("wait.ns");
        LockManager {
            shards: (0..SHARDS)
                .map(|_| OrderedMutex::new(Rank::LockManagerShard, "lock.shard", HashMap::new()))
                .collect(),
            held: OrderedMutex::new(Rank::LockManagerHeld, "lock.held", HashMap::new()),
            waits: OrderedMutex::new(Rank::LockManagerWaits, "lock.waits", HashMap::new()),
            policy,
            default_timeout,
            group,
            stats,
            wait_ns,
        }
    }

    /// Whether `waiter` can reach `target` through the waits-for graph.
    fn reaches(waits: &HashMap<TxnId, HashSet<TxnId>>, from: TxnId, target: TxnId) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == target {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some(next) = waits.get(&t) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// The configured deadlock timeout.
    pub fn default_timeout(&self) -> Duration {
        self.default_timeout
    }

    /// Lock activity counters.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// The manager's metric group (`lock.*`), including the `lock.wait.ns`
    /// histogram of time spent blocked in [`LockManager::lock_timeout`].
    pub fn metrics(&self) -> &Group {
        &self.group
    }

    fn shard(&self, name: &LockName) -> &OrderedMutex<HashMap<LockName, LockEntry>> {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[h.finish() as usize % SHARDS]
    }

    fn record_held(&self, txn: TxnId, name: LockName) {
        self.held.lock().entry(txn).or_default().insert(name);
    }

    /// Acquires `mode` on `name` for `txn` with the default timeout.
    pub fn lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> LockResult<()> {
        self.lock_timeout(txn, name, mode, self.default_timeout)
    }

    /// Acquires `mode` on `name` for `txn`, waiting at most `timeout`.
    ///
    /// Re-requests of covered modes are free; stronger modes upgrade in
    /// place, jumping the wait queue.
    pub fn lock_timeout(
        &self,
        txn: TxnId,
        name: LockName,
        mode: LockMode,
        timeout: Duration,
    ) -> LockResult<()> {
        self.stats.requests.inc();
        let waiter = {
            let mut shard = self.shard(&name).lock();
            let entry = shard.entry(name).or_default();
            // Deadlock detection (ablation): refuse a wait that closes a
            // cycle through the current holders.
            if self.policy == DeadlockPolicy::Detect {
                let blockers: HashSet<TxnId> = entry
                    .granted
                    .iter()
                    .filter(|&&(t, m)| t != txn && !m.compatible(mode))
                    .map(|&(t, _)| t)
                    .collect();
                if !blockers.is_empty() {
                    let mut waits = self.waits.lock();
                    if blockers
                        .iter()
                        .any(|&b| Self::reaches(&waits, b, txn))
                    {
                        self.stats.timeouts.inc();
                        return Err(LockError::DeadlockDetected { txn, name });
                    }
                    waits.entry(txn).or_default().extend(blockers.iter());
                }
            }
            if let Some(pos) = entry.granted.iter().position(|(t, _)| *t == txn) {
                let current = entry.granted[pos].1;
                let needed = current.supremum(mode);
                if needed == current {
                    self.stats.immediate.inc();
                    return Ok(());
                }
                self.stats.upgrades.inc();
                if entry.can_grant(txn, needed) {
                    entry.granted[pos].1 = needed;
                    self.stats.immediate.inc();
                    return Ok(());
                }
                let w = Arc::new(Waiter {
                    txn,
                    mode: needed,
                    upgrade: true,
                    state: OrderedMutex::new(Rank::LockWaiter, "lock.waiter", WaitState::Waiting),
                    cond: Condvar::new(),
                });
                // Upgrades go to the front so a waiting reader cannot block
                // a holder's upgrade forever.
                entry.queue.push_front(Arc::clone(&w));
                w
            } else {
                if entry.queue.is_empty() && entry.can_grant(txn, mode) {
                    entry.granted.push((txn, mode));
                    self.stats.immediate.inc();
                    drop(shard);
                    self.record_held(txn, name);
                    return Ok(());
                }
                let w = Arc::new(Waiter {
                    txn,
                    mode,
                    upgrade: false,
                    state: OrderedMutex::new(Rank::LockWaiter, "lock.waiter", WaitState::Waiting),
                    cond: Condvar::new(),
                });
                entry.queue.push_back(Arc::clone(&w));
                w
            }
        };
        self.stats.waits.inc();
        // Records the blocked time into `lock.wait.ns` on every exit from
        // the wait loop (grant, late grant, or timeout) when it drops.
        let _wait_timer = self.wait_ns.start();

        let deadline = Instant::now() + timeout;
        let mut state = waiter.state.lock();
        loop {
            if matches!(*state, WaitState::Granted) {
                drop(state);
                self.waits.lock().remove(&txn);
                self.record_held(txn, name);
                return Ok(());
            }
            if waiter.cond.wait_until(state.raw(), deadline).timed_out() {
                if matches!(*state, WaitState::Granted) {
                    drop(state);
                    self.waits.lock().remove(&txn);
                    self.record_held(txn, name);
                    return Ok(());
                }
                drop(state);
                self.waits.lock().remove(&txn);
                // Remove ourselves from the queue; a racing grant may have
                // happened between the timeout and taking the shard lock.
                let mut shard = self.shard(&name).lock();
                if matches!(*waiter.state.lock(), WaitState::Granted) {
                    drop(shard);
                    self.record_held(txn, name);
                    return Ok(());
                }
                if let Some(entry) = shard.get_mut(&name) {
                    entry.queue.retain(|w| !Arc::ptr_eq(w, &waiter));
                    let woken = entry.promote();
                    if entry.is_empty() {
                        shard.remove(&name);
                    }
                    drop(shard);
                    wake(woken);
                }
                self.stats.timeouts.inc();
                return Err(LockError::Timeout { txn, name, mode });
            }
        }
    }

    /// Attempts to acquire without waiting. Returns `false` if it would
    /// have to wait.
    pub fn try_lock(&self, txn: TxnId, name: LockName, mode: LockMode) -> bool {
        self.stats.requests.inc();
        let mut shard = self.shard(&name).lock();
        let entry = shard.entry(name).or_default();
        if let Some(pos) = entry.granted.iter().position(|(t, _)| *t == txn) {
            let current = entry.granted[pos].1;
            let needed = current.supremum(mode);
            if needed == current || entry.can_grant(txn, needed) {
                entry.granted[pos].1 = needed;
                self.stats.immediate.inc();
                return true;
            }
            return false;
        }
        if entry.queue.is_empty() && entry.can_grant(txn, mode) {
            entry.granted.push((txn, mode));
            drop(shard);
            self.record_held(txn, name);
            self.stats.immediate.inc();
            return true;
        }
        false
    }

    /// The mode `txn` holds on `name`, if any.
    pub fn held(&self, txn: TxnId, name: LockName) -> Option<LockMode> {
        let shard = self.shard(&name).lock();
        shard
            .get(&name)
            .and_then(|e| e.granted.iter().find(|(t, _)| *t == txn).map(|&(_, m)| m))
    }

    /// All current holders of `name`.
    pub fn holders(&self, name: LockName) -> Vec<(TxnId, LockMode)> {
        let shard = self.shard(&name).lock();
        shard.get(&name).map(|e| e.granted.clone()).unwrap_or_default()
    }

    /// Resources currently held by `txn`.
    pub fn held_by(&self, txn: TxnId) -> Vec<LockName> {
        self.held
            .lock()
            .get(&txn)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Releases one lock. Used by the callback protocol, which may release
    /// individual cached locks between transactions.
    pub fn unlock(&self, txn: TxnId, name: LockName) -> LockResult<()> {
        {
            let mut held = self.held.lock();
            let removed = match held.get_mut(&txn) {
                Some(set) => {
                    let removed = set.remove(&name);
                    if removed && set.is_empty() {
                        held.remove(&txn);
                    }
                    removed
                }
                None => false,
            };
            if !removed {
                return Err(LockError::NotHeld { txn, name });
            }
        }
        self.release_internal(txn, name);
        Ok(())
    }

    /// Weakens a held lock to `to` (which must be covered by the held
    /// mode), promoting any now-compatible waiters.
    pub fn downgrade(&self, txn: TxnId, name: LockName, to: LockMode) -> LockResult<()> {
        let mut shard = self.shard(&name).lock();
        let entry = shard
            .get_mut(&name)
            .ok_or(LockError::NotHeld { txn, name })?;
        let slot = entry
            .granted
            .iter_mut()
            .find(|(t, _)| *t == txn)
            .ok_or(LockError::NotHeld { txn, name })?;
        if !slot.1.covers(to) {
            return Err(LockError::BadDowngrade {
                held: slot.1,
                requested: to,
            });
        }
        slot.1 = to;
        let woken = entry.promote();
        drop(shard);
        wake(woken);
        Ok(())
    }

    /// Releases every lock held by `txn` — the strict-2PL release at commit
    /// or abort.
    pub fn unlock_all(&self, txn: TxnId) {
        self.waits.lock().remove(&txn);
        let names: Vec<LockName> = {
            let mut held = self.held.lock();
            held.remove(&txn)
                .map(|s| s.into_iter().collect())
                .unwrap_or_default()
        };
        for name in names {
            self.release_internal(txn, name);
        }
    }

    fn release_internal(&self, txn: TxnId, name: LockName) {
        let mut shard = self.shard(&name).lock();
        if let Some(entry) = shard.get_mut(&name) {
            entry.granted.retain(|(t, _)| *t != txn);
            let woken = entry.promote();
            if entry.is_empty() {
                shard.remove(&name);
            }
            drop(shard);
            wake(woken);
        }
    }
}

impl std::fmt::Debug for LockManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockManager")
            .field("timeout", &self.default_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;
    use std::thread;

    fn page(p: u64) -> LockName {
        LockName::Page { area: 0, page: p }
    }

    fn mgr() -> Arc<LockManager> {
        Arc::new(LockManager::new(Duration::from_millis(200)))
    }

    #[test]
    fn shared_locks_coexist() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        m.lock(TxnId(2), page(1), LockMode::S).unwrap();
        assert_eq!(m.holders(page(1)).len(), 2);
    }

    #[test]
    fn exclusive_conflicts_time_out() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        let err = m
            .lock_timeout(TxnId(2), page(1), LockMode::S, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, LockError::Timeout { .. }));
        assert_eq!(m.stats().timeouts.get(), 1);
    }

    #[test]
    fn release_wakes_waiter() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || {
            m2.lock_timeout(TxnId(2), page(1), LockMode::X, Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(30));
        m.unlock_all(TxnId(1));
        waiter.join().unwrap().unwrap();
        assert_eq!(m.held(TxnId(2), page(1)), Some(LockMode::X));
    }

    #[test]
    fn re_request_of_covered_mode_is_free() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        assert_eq!(m.held(TxnId(1), page(1)), Some(LockMode::X));
    }

    #[test]
    fn upgrade_in_place() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        assert_eq!(m.held(TxnId(1), page(1)), Some(LockMode::X));
    }

    #[test]
    fn s_plus_ix_upgrades_to_six() {
        let m = mgr();
        m.lock(TxnId(1), LockName::File { db: 0, file: 1 }, LockMode::S)
            .unwrap();
        m.lock(TxnId(1), LockName::File { db: 0, file: 1 }, LockMode::IX)
            .unwrap();
        assert_eq!(
            m.held(TxnId(1), LockName::File { db: 0, file: 1 }),
            Some(LockMode::SIX)
        );
    }

    #[test]
    fn upgrade_waits_for_other_reader_then_succeeds() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        m.lock(TxnId(2), page(1), LockMode::S).unwrap();
        let m2 = Arc::clone(&m);
        let upgrader = thread::spawn(move || {
            m2.lock_timeout(TxnId(1), page(1), LockMode::X, Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(30));
        m.unlock_all(TxnId(2));
        upgrader.join().unwrap().unwrap();
        assert_eq!(m.held(TxnId(1), page(1)), Some(LockMode::X));
    }

    #[test]
    fn upgrade_jumps_queue_ahead_of_new_readers() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        m.lock(TxnId(2), page(1), LockMode::S).unwrap();
        // Txn1 wants X (must wait for txn2); txn3 wants S and queues after.
        let m1 = Arc::clone(&m);
        let upgrader =
            thread::spawn(move || m1.lock_timeout(TxnId(1), page(1), LockMode::X, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        let m3 = Arc::clone(&m);
        let reader =
            thread::spawn(move || m3.lock_timeout(TxnId(3), page(1), LockMode::S, Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(30));
        // Releasing txn2 should grant the upgrade first; the reader gets in
        // only after txn1 releases.
        m.unlock_all(TxnId(2));
        upgrader.join().unwrap().unwrap();
        assert_eq!(m.held(TxnId(1), page(1)), Some(LockMode::X));
        assert!(m.held(TxnId(3), page(1)).is_none());
        m.unlock_all(TxnId(1));
        reader.join().unwrap().unwrap();
    }

    #[test]
    fn deadlock_resolved_by_timeout() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        m.lock(TxnId(2), page(2), LockMode::X).unwrap();
        let m1 = Arc::clone(&m);
        let t1 = thread::spawn(move || {
            m1.lock_timeout(TxnId(1), page(2), LockMode::X, Duration::from_millis(150))
        });
        let m2 = Arc::clone(&m);
        let t2 = thread::spawn(move || {
            m2.lock_timeout(TxnId(2), page(1), LockMode::X, Duration::from_millis(150))
        });
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1.is_err() || r2.is_err(),
            "at least one deadlock victim must time out"
        );
    }

    #[test]
    fn try_lock_does_not_wait() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        assert!(!m.try_lock(TxnId(2), page(1), LockMode::S));
        assert!(m.try_lock(TxnId(2), page(2), LockMode::S));
    }

    #[test]
    fn unlock_single_and_not_held() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        m.unlock(TxnId(1), page(1)).unwrap();
        assert!(m.held(TxnId(1), page(1)).is_none());
        assert!(matches!(
            m.unlock(TxnId(1), page(1)),
            Err(LockError::NotHeld { .. })
        ));
    }

    #[test]
    fn downgrade_wakes_readers() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let reader = thread::spawn(move || {
            m2.lock_timeout(TxnId(2), page(1), LockMode::S, Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(30));
        m.downgrade(TxnId(1), page(1), LockMode::S).unwrap();
        reader.join().unwrap().unwrap();
        assert_eq!(m.held(TxnId(1), page(1)), Some(LockMode::S));
        assert_eq!(m.held(TxnId(2), page(1)), Some(LockMode::S));
    }

    #[test]
    fn downgrade_to_stronger_rejected() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        assert!(matches!(
            m.downgrade(TxnId(1), page(1), LockMode::X),
            Err(LockError::BadDowngrade { .. })
        ));
    }

    #[test]
    fn unlock_all_releases_everything() {
        let m = mgr();
        for p in 0..10 {
            m.lock(TxnId(1), page(p), LockMode::X).unwrap();
        }
        assert_eq!(m.held_by(TxnId(1)).len(), 10);
        m.unlock_all(TxnId(1));
        assert!(m.held_by(TxnId(1)).is_empty());
        for p in 0..10 {
            m.lock(TxnId(2), page(p), LockMode::X).unwrap();
        }
    }

    #[test]
    fn fifo_prevents_writer_starvation() {
        let m = mgr();
        m.lock(TxnId(1), page(1), LockMode::S).unwrap();
        // Writer queues.
        let mw = Arc::clone(&m);
        let writer = thread::spawn(move || {
            mw.lock_timeout(TxnId(2), page(1), LockMode::X, Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(30));
        // A later reader must queue behind the writer, not sneak in.
        let mr = Arc::clone(&m);
        let reader = thread::spawn(move || {
            mr.lock_timeout(TxnId(3), page(1), LockMode::S, Duration::from_secs(5))
        });
        thread::sleep(Duration::from_millis(30));
        assert!(m.held(TxnId(3), page(1)).is_none(), "reader must not jump the writer");
        m.unlock_all(TxnId(1));
        writer.join().unwrap().unwrap();
        m.unlock_all(TxnId(2));
        reader.join().unwrap().unwrap();
    }

    #[test]
    fn concurrent_stress_is_serializable_per_resource() {
        // Many threads take X on the same counter resource and increment a
        // plain integer under it; the final count proves mutual exclusion.
        let m = mgr();
        let counter = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for t in 0..8 {
            let m = Arc::clone(&m);
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                for i in 0..50 {
                    let txn = TxnId(t * 1000 + i);
                    m.lock_timeout(txn, page(42), LockMode::X, Duration::from_secs(10))
                        .unwrap();
                    {
                        let mut c = counter.lock();
                        let v = *c;
                        thread::yield_now();
                        *c = v + 1;
                    }
                    m.unlock_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 50);
    }
}

#[cfg(test)]
mod detect_tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Instant;

    fn page(p: u64) -> LockName {
        LockName::Page { area: 0, page: p }
    }

    #[test]
    fn cycle_refused_immediately() {
        let m = Arc::new(LockManager::with_policy(
            Duration::from_secs(5),
            DeadlockPolicy::Detect,
        ));
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        m.lock(TxnId(2), page(2), LockMode::X).unwrap();
        // Txn 1 queues behind txn 2 on page 2.
        let m1 = Arc::clone(&m);
        let t1 = thread::spawn(move || m1.lock(TxnId(1), page(2), LockMode::X));
        thread::sleep(Duration::from_millis(50));
        // Txn 2 asking for page 1 would close the cycle: refused at once,
        // long before any timeout could fire.
        let t0 = Instant::now();
        let r = m.lock(TxnId(2), page(1), LockMode::X);
        assert!(matches!(r, Err(LockError::DeadlockDetected { .. })), "{r:?}");
        assert!(t0.elapsed() < Duration::from_millis(100));
        // The victim releases; txn 1 proceeds.
        m.unlock_all(TxnId(2));
        t1.join().unwrap().unwrap();
    }

    #[test]
    fn no_false_positive_on_plain_contention() {
        let m = Arc::new(LockManager::with_policy(
            Duration::from_secs(5),
            DeadlockPolicy::Detect,
        ));
        m.lock(TxnId(1), page(1), LockMode::X).unwrap();
        let m2 = Arc::clone(&m);
        let waiter = thread::spawn(move || m2.lock(TxnId(2), page(1), LockMode::X));
        thread::sleep(Duration::from_millis(50));
        m.unlock_all(TxnId(1));
        waiter.join().unwrap().unwrap();
        // A later unrelated request by txn 1 must not trip on stale edges.
        m.lock(TxnId(1), page(9), LockMode::X).unwrap();
    }

    #[test]
    fn three_party_cycle_detected() {
        let m = Arc::new(LockManager::with_policy(
            Duration::from_secs(5),
            DeadlockPolicy::Detect,
        ));
        for t in 1..=3u64 {
            m.lock(TxnId(t), page(t), LockMode::X).unwrap();
        }
        // 1 waits on 2, 2 waits on 3 (both block in threads).
        let m1 = Arc::clone(&m);
        let h1 = thread::spawn(move || m1.lock(TxnId(1), page(2), LockMode::X));
        let m2 = Arc::clone(&m);
        let h2 = thread::spawn(move || m2.lock(TxnId(2), page(3), LockMode::X));
        thread::sleep(Duration::from_millis(80));
        // 3 asking for 1 closes the 3-cycle.
        assert!(matches!(
            m.lock(TxnId(3), page(1), LockMode::X),
            Err(LockError::DeadlockDetected { .. })
        ));
        m.unlock_all(TxnId(3));
        h2.join().unwrap().unwrap();
        m.unlock_all(TxnId(2));
        h1.join().unwrap().unwrap();
    }

    /// Regression: a timed-out waiter must leave no ghost entry in the
    /// queue. If it did, a later request compatible with the *holders*
    /// (but queued behind the ghost) would wait for no reason — or worse,
    /// a grant could land on the abandoned waiter and leak the lock.
    #[test]
    fn timed_out_waiter_leaves_no_ghost_in_queue() {
        let m = LockManager::new(Duration::from_millis(50));
        // Holder: S on the page. An X request conflicts and times out.
        m.lock(TxnId(1), page(5), LockMode::S).unwrap();
        assert!(matches!(
            m.lock_timeout(TxnId(2), page(5), LockMode::X, Duration::from_millis(50)),
            Err(LockError::Timeout { .. })
        ));
        // The ghost X waiter is gone: an S request compatible with the
        // S holder must be granted without waiting.
        assert!(
            m.try_lock(TxnId(3), page(5), LockMode::S),
            "compatible request blocked by a ghost waiter"
        );
        // And the timed-out transaction holds nothing on the page.
        assert!(m.held(TxnId(2), page(5)).is_none());
        assert!(m.held_by(TxnId(2)).is_empty());
        // Once everyone releases, the entry disappears entirely and an X
        // grant to the former waiter works immediately.
        m.unlock_all(TxnId(1));
        m.unlock_all(TxnId(3));
        assert!(m.try_lock(TxnId(2), page(5), LockMode::X));
    }
}
