//! # bess-lock — concurrency control for BeSS
//!
//! Implements the locking machinery of §3 of "A High Performance
//! Configurable Storage Manager" (Biliris & Panagos, ICDE 1995):
//!
//! * [`LockManager`] — strict two-phase locking over hierarchical modes
//!   (IS/IX/S/SIX/X) with FIFO queues, in-place upgrades and **timeout
//!   based deadlock detection**, exactly the paper's policy;
//! * [`LockCache`] — the per-client cache of data *locks* retained between
//!   transactions, with the **callback locking** responses (release /
//!   defer) the servers drive cache consistency with.
//!
//! ```
//! use std::time::Duration;
//! use bess_lock::{LockManager, LockMode, LockName, TxnId};
//!
//! let mgr = LockManager::new(Duration::from_millis(100));
//! let page = LockName::Page { area: 0, page: 7 };
//! mgr.lock(TxnId(1), page, LockMode::S).unwrap();
//! mgr.lock(TxnId(2), page, LockMode::S).unwrap(); // shared: both granted
//! mgr.unlock_all(TxnId(1));
//! mgr.unlock_all(TxnId(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod manager;
mod mode;
mod name;
pub mod order;

pub use cache::{CacheDecision, CacheStats, CallbackResponse, LockCache};
pub use order::{OrderedMutex, OrderedRwLock, Rank};
pub use manager::{DeadlockPolicy, LockError, LockManager, LockResult, LockStats};
pub use mode::LockMode;
pub use name::{LockName, TxnId};
