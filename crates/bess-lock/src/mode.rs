//! Lock modes and the compatibility matrix.
//!
//! BeSS uses "the strict two phase locking algorithm ... for concurrency
//! control" (§3). The mode set is the classic hierarchical one (Gray), which
//! the paper's page/segment/file/database granularities require.

/// A lock mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention shared.
    IS,
    /// Intention exclusive.
    IX,
    /// Shared.
    S,
    /// Shared + intention exclusive.
    SIX,
    /// Exclusive.
    X,
}

impl LockMode {
    /// Whether a holder of `self` is compatible with a holder of `other`.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (IS, X) | (X, IS) => false,
            (IS, _) | (_, IS) => true,
            (IX, IX) => true,
            (IX, S) | (S, IX) => false,
            (IX, SIX) | (SIX, IX) => false,
            (IX, X) | (X, IX) => false,
            (S, S) => true,
            (S, SIX) | (SIX, S) => false,
            (S, X) | (X, S) => false,
            (SIX, SIX) => false,
            (SIX, X) | (X, SIX) => false,
            (X, X) => false,
        }
    }

    /// The least mode at least as strong as both, used for upgrades
    /// (e.g. holding `S` and requesting `IX` needs `SIX`).
    pub fn supremum(self, other: LockMode) -> LockMode {
        use LockMode::*;
        if self == other {
            return self;
        }
        match (self, other) {
            (IS, m) | (m, IS) => m,
            (IX, S) | (S, IX) => SIX,
            (IX, SIX) | (SIX, IX) => SIX,
            (IX, X) | (X, IX) => X,
            (S, SIX) | (SIX, S) => SIX,
            (S, X) | (X, S) => X,
            (SIX, X) | (X, SIX) => X,
            _ => unreachable!("equal modes handled above"),
        }
    }

    /// Whether `self` is at least as strong as `other`
    /// (i.e. `self.supremum(other) == self`).
    pub fn covers(self, other: LockMode) -> bool {
        self.supremum(other) == self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LockMode::*;

    const ALL: [LockMode; 5] = [IS, IX, S, SIX, X];

    #[test]
    fn compatibility_matrix_matches_gray() {
        // Rows/cols in order IS, IX, S, SIX, X.
        let expected = [
            [true, true, true, true, false],
            [true, true, false, false, false],
            [true, false, true, false, false],
            [true, false, false, false, false],
            [false, false, false, false, false],
        ];
        for (i, a) in ALL.iter().enumerate() {
            for (j, b) in ALL.iter().enumerate() {
                assert_eq!(
                    a.compatible(*b),
                    expected[i][j],
                    "compat({a:?},{b:?})"
                );
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.compatible(b), b.compatible(a));
            }
        }
    }

    #[test]
    fn supremum_is_commutative_and_covers_both() {
        for a in ALL {
            for b in ALL {
                let s = a.supremum(b);
                assert_eq!(s, b.supremum(a));
                assert!(s.covers(a), "{s:?} covers {a:?}");
                assert!(s.covers(b), "{s:?} covers {b:?}");
            }
        }
    }

    #[test]
    fn specific_suprema() {
        assert_eq!(S.supremum(IX), SIX);
        assert_eq!(IS.supremum(X), X);
        assert_eq!(S.supremum(S), S);
        assert_eq!(SIX.supremum(IX), SIX);
    }

    #[test]
    fn covers_is_reflexive_and_x_covers_all() {
        for a in ALL {
            assert!(a.covers(a));
            assert!(X.covers(a));
        }
        assert!(!S.covers(IX));
        assert!(!IX.covers(S));
    }
}
