//! The client-side lock cache for callback locking.
//!
//! "Client-server interaction is minimized by caching data and locks
//! between transactions running on the same client. Cache consistency is
//! provided by employing the callback locking algorithm" (§3, citing
//! Howard et al. and Lamb et al.).
//!
//! A [`LockCache`] lives on each client (or node server). Locks obtained
//! from a server are *cached* here when the transaction that acquired them
//! finishes; a later local transaction that needs a covered mode hits the
//! cache and avoids a server round trip. When another client wants a
//! conflicting lock, the server issues a **callback**; the cache releases
//! the lock immediately if no local transaction is using it, otherwise the
//! callback is deferred until the last local user finishes.

use std::collections::{HashMap, HashSet};

use bess_obs::{Counter, Group, Registry};

use crate::mode::LockMode;
use crate::name::{LockName, TxnId};
use crate::order::{OrderedMutex, Rank};

/// Outcome of a local lock probe against the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheDecision {
    /// The cache holds a covering lock; no server message needed.
    Hit,
    /// The server must be asked for `need` (either nothing is cached or the
    /// cached mode is too weak).
    Miss {
        /// The mode to request from the server.
        need: LockMode,
    },
}

/// Response to a server callback for one resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallbackResponse {
    /// The lock was dropped from the cache; the server may grant the
    /// conflicting request.
    Released,
    /// A local transaction is using the lock; the release will happen when
    /// the last user finishes ([`LockCache::finish_txn`] returns it).
    Deferred,
    /// The resource was not cached here (e.g. raced with an earlier
    /// release); nothing to do.
    NotCached,
}

#[derive(Debug)]
struct CachedLock {
    mode: LockMode,
    users: HashSet<TxnId>,
    callback_pending: bool,
}

/// Counters kept by a [`LockCache`] — [`bess_obs`] handles registered
/// under the `lock.cache.` prefix of [`LockCache::metrics`].
#[derive(Debug)]
pub struct CacheStats {
    /// Probes answered from the cache (`lock.cache.hits`).
    pub hits: Counter,
    /// Probes that required a server request (`lock.cache.misses`).
    pub misses: Counter,
    /// Callbacks received (`lock.cache.callbacks`).
    pub callbacks: Counter,
    /// Callbacks answered with immediate release
    /// (`lock.cache.callback_released`).
    pub callback_released: Counter,
    /// Callbacks deferred because the lock was in use
    /// (`lock.cache.callback_deferred`).
    pub callback_deferred: Counter,
}

impl CacheStats {
    fn new(group: &Group) -> CacheStats {
        CacheStats {
            hits: group.counter("hits"),
            misses: group.counter("misses"),
            callbacks: group.counter("callbacks"),
            callback_released: group.counter("callback_released"),
            callback_deferred: group.counter("callback_deferred"),
        }
    }
}

/// The per-client cache of locks granted by servers.
pub struct LockCache {
    locks: OrderedMutex<HashMap<LockName, CachedLock>>,
    group: Group,
    stats: CacheStats,
}

impl LockCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        let group = Registry::new().group("lock.cache");
        let stats = CacheStats::new(&group);
        LockCache {
            locks: OrderedMutex::new(Rank::LockCache, "lock.cache", HashMap::new()),
            group,
            stats,
        }
    }

    /// Cache activity counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The cache's metric group (`lock.cache.*`).
    pub fn metrics(&self) -> &Group {
        &self.group
    }

    /// Probes the cache on behalf of local transaction `txn` wanting
    /// `mode`. On [`CacheDecision::Hit`] the transaction is registered as a
    /// user of the cached lock.
    pub fn acquire(&self, txn: TxnId, name: LockName, mode: LockMode) -> CacheDecision {
        let mut locks = self.locks.lock();
        match locks.get_mut(&name) {
            Some(cached) if cached.mode.covers(mode) && !cached.callback_pending => {
                cached.users.insert(txn);
                self.stats.hits.inc();
                CacheDecision::Hit
            }
            Some(cached) if !cached.callback_pending => {
                // Cached but too weak: the server must upgrade to the
                // supremum of what is cached and what is wanted.
                self.stats.misses.inc();
                CacheDecision::Miss {
                    need: cached.mode.supremum(mode),
                }
            }
            _ => {
                self.stats.misses.inc();
                CacheDecision::Miss { need: mode }
            }
        }
    }

    /// Records a lock granted by the server for `txn`.
    pub fn grant(&self, txn: TxnId, name: LockName, mode: LockMode) {
        let mut locks = self.locks.lock();
        let entry = locks.entry(name).or_insert_with(|| CachedLock {
            mode,
            users: HashSet::new(),
            callback_pending: false,
        });
        entry.mode = entry.mode.supremum(mode);
        entry.users.insert(txn);
    }

    /// Handles a server callback for `name`. Returns how the cache
    /// responded; on [`CallbackResponse::Deferred`] the eventual release is
    /// reported by [`Self::finish_txn`].
    pub fn callback(&self, name: LockName) -> CallbackResponse {
        self.stats.callbacks.inc();
        let mut locks = self.locks.lock();
        match locks.get_mut(&name) {
            None => CallbackResponse::NotCached,
            Some(cached) if cached.users.is_empty() => {
                locks.remove(&name);
                self.stats.callback_released.inc();
                CallbackResponse::Released
            }
            Some(cached) => {
                cached.callback_pending = true;
                self.stats.callback_deferred.inc();
                CallbackResponse::Deferred
            }
        }
    }

    /// A server may also *downgrade-callback* a cached X lock to S (enough
    /// for a remote reader). If no local user holds it, the cached mode is
    /// weakened in place and `true` is returned.
    pub fn callback_downgrade(&self, name: LockName, to: LockMode) -> bool {
        self.stats.callbacks.inc();
        let mut locks = self.locks.lock();
        match locks.get_mut(&name) {
            Some(cached) if cached.users.is_empty() && cached.mode.covers(to) => {
                cached.mode = to;
                self.stats.callback_released.inc();
                true
            }
            None => true,
            _ => {
                if let Some(cached) = locks.get_mut(&name) {
                    cached.callback_pending = true;
                }
                self.stats.callback_deferred.inc();
                false
            }
        }
    }

    /// Marks a cached lock as having a pending callback (used when a
    /// callback raced the grant of the lock: the release happens when the
    /// last user finishes). Returns whether the lock was cached.
    pub fn mark_callback_pending(&self, name: LockName) -> bool {
        let mut locks = self.locks.lock();
        match locks.get_mut(&name) {
            Some(cached) => {
                cached.callback_pending = true;
                true
            }
            None => false,
        }
    }

    /// Ends `txn` locally: the transaction stops using its cached locks but
    /// the locks *stay cached* for future transactions (the whole point of
    /// callback locking). Returns the resources whose deferred callbacks
    /// can now be answered — the caller must send the releases to the
    /// server.
    pub fn finish_txn(&self, txn: TxnId) -> Vec<LockName> {
        let mut released = Vec::new();
        let mut locks = self.locks.lock();
        locks.retain(|name, cached| {
            cached.users.remove(&txn);
            if cached.callback_pending && cached.users.is_empty() {
                released.push(*name);
                false
            } else {
                true
            }
        });
        released
    }

    /// Drops every cached lock (client shutdown, or a client without a node
    /// server whose locks are only cached for the transaction duration,
    /// §3). Returns the names so the caller can notify servers.
    pub fn clear(&self) -> Vec<LockName> {
        let mut locks = self.locks.lock();
        let names = locks.keys().copied().collect();
        locks.clear();
        names
    }

    /// The cached mode for `name`, if any.
    pub fn cached_mode(&self, name: LockName) -> Option<LockMode> {
        self.locks.lock().get(&name).map(|c| c.mode)
    }

    /// Number of cached locks.
    pub fn len(&self) -> usize {
        self.locks.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.locks.lock().is_empty()
    }
}

impl Default for LockCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(p: u64) -> LockName {
        LockName::Page { area: 0, page: p }
    }

    #[test]
    fn miss_then_grant_then_hit() {
        let cache = LockCache::new();
        assert_eq!(
            cache.acquire(TxnId(1), page(1), LockMode::S),
            CacheDecision::Miss { need: LockMode::S }
        );
        cache.grant(TxnId(1), page(1), LockMode::S);
        cache.finish_txn(TxnId(1));
        // Next transaction hits without a server message.
        assert_eq!(cache.acquire(TxnId(2), page(1), LockMode::S), CacheDecision::Hit);
        let s = cache.stats();
        assert_eq!((s.hits.get(), s.misses.get()), (1, 1));
    }

    #[test]
    fn weak_cached_mode_asks_for_supremum() {
        let cache = LockCache::new();
        cache.grant(TxnId(1), page(1), LockMode::S);
        cache.finish_txn(TxnId(1));
        assert_eq!(
            cache.acquire(TxnId(2), page(1), LockMode::X),
            CacheDecision::Miss { need: LockMode::X }
        );
        cache.grant(TxnId(2), page(1), LockMode::X);
        assert_eq!(cache.cached_mode(page(1)), Some(LockMode::X));
    }

    #[test]
    fn callback_on_idle_lock_releases_immediately() {
        let cache = LockCache::new();
        cache.grant(TxnId(1), page(1), LockMode::X);
        cache.finish_txn(TxnId(1));
        assert_eq!(cache.callback(page(1)), CallbackResponse::Released);
        assert!(cache.is_empty());
    }

    #[test]
    fn callback_on_lock_in_use_defers_until_finish() {
        let cache = LockCache::new();
        cache.grant(TxnId(1), page(1), LockMode::X);
        assert_eq!(cache.callback(page(1)), CallbackResponse::Deferred);
        // While deferred, new local transactions cannot use it.
        assert!(matches!(
            cache.acquire(TxnId(2), page(1), LockMode::S),
            CacheDecision::Miss { .. }
        ));
        let released = cache.finish_txn(TxnId(1));
        assert_eq!(released, vec![page(1)]);
        assert!(cache.is_empty());
    }

    #[test]
    fn callback_for_unknown_resource() {
        let cache = LockCache::new();
        assert_eq!(cache.callback(page(9)), CallbackResponse::NotCached);
    }

    #[test]
    fn downgrade_callback_weakens_idle_lock() {
        let cache = LockCache::new();
        cache.grant(TxnId(1), page(1), LockMode::X);
        cache.finish_txn(TxnId(1));
        assert!(cache.callback_downgrade(page(1), LockMode::S));
        assert_eq!(cache.cached_mode(page(1)), Some(LockMode::S));
        // Another local reader now hits.
        assert_eq!(cache.acquire(TxnId(2), page(1), LockMode::S), CacheDecision::Hit);
    }

    #[test]
    fn downgrade_callback_defers_when_in_use() {
        let cache = LockCache::new();
        cache.grant(TxnId(1), page(1), LockMode::X);
        assert!(!cache.callback_downgrade(page(1), LockMode::S));
        let released = cache.finish_txn(TxnId(1));
        assert_eq!(released, vec![page(1)]);
    }

    #[test]
    fn clear_returns_all_names() {
        let cache = LockCache::new();
        cache.grant(TxnId(1), page(1), LockMode::S);
        cache.grant(TxnId(1), page(2), LockMode::X);
        let mut names = cache.clear();
        names.sort();
        assert_eq!(names, vec![page(1), page(2)]);
        assert!(cache.is_empty());
    }

    #[test]
    fn multiple_users_share_cached_lock() {
        let cache = LockCache::new();
        cache.grant(TxnId(1), page(1), LockMode::S);
        assert_eq!(cache.acquire(TxnId(2), page(1), LockMode::S), CacheDecision::Hit);
        assert_eq!(cache.callback(page(1)), CallbackResponse::Deferred);
        assert!(cache.finish_txn(TxnId(1)).is_empty(), "txn2 still using");
        assert_eq!(cache.finish_txn(TxnId(2)), vec![page(1)]);
    }
}
