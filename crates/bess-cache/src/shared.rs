//! The shared cache and its shared mapping table (SMT).
//!
//! Figure 3 of the paper: the node server creates a cache "viewed as a
//! contiguous sequence of equal length frames, and the size of each frame is
//! equal to the page size". In shared-memory mode (§4.1.2) pointer validity
//! across processes is achieved by (a) mapping each database page to the
//! same **virtual frame** index in every process (the SMT), and (b) using
//! offsets in that fictitious address space (SVMA) as shared pointers.
//!
//! Replacement is the second level of the two-level clock of §4.2: each
//! cache slot carries a counter of "the number of processes that can access
//! that slot"; the first-level (per-process) clocks decrement it by
//! invalidating their PVMA frames; a slot with counter zero may be evicted.

use std::collections::HashMap;
use std::sync::Arc;

use bess_lock::order::{OrderedMutex, Rank};
use bess_obs::{Counter, Group, LatencyHistogram, Registry};
use bess_vm::{FrameId, HeapStore, PageStore};
use parking_lot::Condvar;

use crate::page::DbPage;

/// Errors from shared-cache operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheError {
    /// Every slot is pinned, loading, or still accessible to some process;
    /// the caller should run its first-level clock and retry.
    NoEvictableSlot,
    /// The virtual frame table is exhausted (too many distinct pages touched
    /// without releasing any).
    VframesExhausted,
    /// The page is not known to the SMT.
    UnknownPage(DbPage),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::NoEvictableSlot => write!(f, "no evictable cache slot"),
            CacheError::VframesExhausted => write!(f, "virtual frame table exhausted"),
            CacheError::UnknownPage(p) => write!(f, "page {p} unknown to the SMT"),
        }
    }
}

impl std::error::Error for CacheError {}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SlotState {
    Empty,
    Loading(DbPage),
    Resident(DbPage),
}

struct Slot {
    frame: FrameId,
    state: SlotState,
    /// Processes that can currently access this slot (the §4.2 counter).
    access: u32,
    /// Node-server pins (never evict while pinned).
    pins: u32,
    dirty: bool,
}

struct PageState {
    vframe: usize,
    slot: Option<usize>,
}

struct Inner {
    slots: Vec<Slot>,
    hand: usize,
    /// Virtual frame table: index -> page currently assigned there.
    vframes: Vec<Option<DbPage>>,
    free_vframes: Vec<usize>,
    by_page: HashMap<DbPage, PageState>,
}

/// Counters kept by a [`SharedCache`] — [`bess_obs`] handles registered
/// under the `cache.shared.` prefix of [`SharedCache::metrics`].
#[derive(Debug)]
pub struct SharedCacheStats {
    /// `get` calls finding the page resident (`cache.shared.hits`).
    pub hits: Counter,
    /// `get` calls that had to load (`cache.shared.loads`).
    pub loads: Counter,
    /// Slots evicted by the second-level clock (`cache.shared.evictions`).
    pub evictions: Counter,
    /// Dirty evictions requiring write-back
    /// (`cache.shared.dirty_evictions`).
    pub dirty_evictions: Counter,
    /// Virtual frames assigned (`cache.shared.vframe_assigns`).
    pub vframe_assigns: Counter,
}

impl SharedCacheStats {
    fn new(group: &Group) -> SharedCacheStats {
        SharedCacheStats {
            hits: group.counter("hits"),
            loads: group.counter("loads"),
            evictions: group.counter("evictions"),
            dirty_evictions: group.counter("dirty_evictions"),
            vframe_assigns: group.counter("vframe_assigns"),
        }
    }
}

/// Outcome of [`SharedCache::get`].
#[derive(Debug)]
pub enum GetOutcome {
    /// The page is resident; the caller's access is already counted.
    Resident {
        /// Slot index.
        slot: usize,
        /// The slot's frame in the cache store.
        frame: FrameId,
    },
    /// The caller must fill `frame` with the page's content (fetching from
    /// the server or disk) and then call [`SharedCache::finish_load`].
    MustLoad {
        /// Slot index.
        slot: usize,
        /// The slot's frame in the cache store.
        frame: FrameId,
        /// A dirty page evicted to make room; the caller must write it
        /// back *before* loading over it is observable (the data has
        /// already been copied out).
        evicted: Option<Evicted>,
    },
}

/// A dirty page evicted from the cache.
#[derive(Debug)]
pub struct Evicted {
    /// The page that was evicted.
    pub page: DbPage,
    /// Its bytes at eviction time.
    pub data: Vec<u8>,
}

/// The shared client cache of Figure 3.
pub struct SharedCache {
    store: Arc<HeapStore>,
    page_size: usize,
    inner: OrderedMutex<Inner>,
    load_done: Condvar,
    group: Group,
    stats: SharedCacheStats,
    lookup_ns: LatencyHistogram,
}

impl SharedCache {
    /// Creates a cache of `num_slots` frames, addressable through
    /// `num_vframes` virtual frames (`num_vframes >= num_slots`; the PVMA
    /// "may be much larger than the size of the shared cache", §4.1.2).
    pub fn new(num_slots: usize, num_vframes: usize, page_size: usize) -> Arc<Self> {
        assert!(num_slots > 0, "cache needs at least one slot");
        assert!(
            num_vframes >= num_slots,
            "virtual frames must cover the cache"
        );
        let store = Arc::new(HeapStore::new(page_size));
        let group = Registry::new().group("cache.shared");
        let stats = SharedCacheStats::new(&group);
        let lookup_ns = group.histogram("lookup.ns");
        let slots = (0..num_slots)
            .map(|_| Slot {
                frame: store.alloc(),
                state: SlotState::Empty,
                access: 0,
                pins: 0,
                dirty: false,
            })
            .collect();
        Arc::new(SharedCache {
            store,
            page_size,
            inner: OrderedMutex::new(
                Rank::SharedPool,
                "cache.shared",
                Inner {
                    slots,
                    hand: 0,
                    vframes: vec![None; num_vframes],
                    free_vframes: (0..num_vframes).rev().collect(),
                    by_page: HashMap::new(),
                },
            ),
            load_done: Condvar::new(),
            group,
            stats,
            lookup_ns,
        })
    }

    /// The frame store backing the cache slots. Processes map their PVMA
    /// pages onto these frames.
    pub fn store(&self) -> &Arc<HeapStore> {
        &self.store
    }

    /// Bytes per frame.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The cache's metric group (`cache.shared.*`), including the
    /// `cache.shared.lookup.ns` histogram over [`SharedCache::get`]
    /// (sampled 1-in-8).
    pub fn metrics(&self) -> &Group {
        &self.group
    }

    /// Number of cache slots.
    pub fn num_slots(&self) -> usize {
        self.inner.lock().slots.len()
    }

    /// Number of virtual frames.
    pub fn num_vframes(&self) -> usize {
        self.inner.lock().vframes.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> &SharedCacheStats {
        &self.stats
    }

    /// The sticky virtual frame of `page`, assigning one if needed. "If a
    /// process maps a page at some frame, all processes see this page at
    /// this frame" (§4.1.2).
    pub fn vframe_of(&self, page: DbPage) -> Result<usize, CacheError> {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.by_page.get(&page) {
            return Ok(state.vframe);
        }
        let Some(vf) = inner.free_vframes.pop() else {
            return Err(CacheError::VframesExhausted);
        };
        inner.vframes[vf] = Some(page);
        inner.by_page.insert(page, PageState { vframe: vf, slot: None });
        self.stats.vframe_assigns.inc();
        Ok(vf)
    }

    /// The page assigned to virtual frame `vframe`, if any.
    pub fn page_at_vframe(&self, vframe: usize) -> Option<DbPage> {
        self.inner.lock().vframes.get(vframe).copied().flatten()
    }

    /// Releases a page's virtual frame (no process references it anymore —
    /// e.g. its segment was unmapped at end of transaction). The page may
    /// stay resident; only the SVMA naming is released.
    pub fn release_vframe(&self, page: DbPage) {
        let mut inner = self.inner.lock();
        if let Some(state) = inner.by_page.get(&page) {
            if state.slot.is_none() {
                let vf = state.vframe;
                inner.vframes[vf] = None;
                inner.free_vframes.push(vf);
                inner.by_page.remove(&page);
            }
            // If still resident we keep the naming: pointers may be
            // re-validated cheaply. Residents are fully forgotten on
            // eviction via `forget_if_unnamed`.
        }
    }

    /// Makes `page` resident, counting the caller as an accessor of the
    /// slot. Blocks while another caller is loading the same page.
    pub fn get(&self, page: DbPage) -> Result<GetOutcome, CacheError> {
        // Sampled 1-in-8: the resident path is a map probe plus a counter,
        // and an unconditional pair of clock reads would dominate it.
        let probes = self.stats.hits.get() + self.stats.loads.get();
        let _timer = self.lookup_ns.start_if(probes & 7 == 0);
        let mut inner = self.inner.lock();
        loop {
            // Ensure the page has a vframe (SMT entry).
            if !inner.by_page.contains_key(&page) {
                let Some(vf) = inner.free_vframes.pop() else {
                    return Err(CacheError::VframesExhausted);
                };
                inner.vframes[vf] = Some(page);
                inner.by_page.insert(page, PageState { vframe: vf, slot: None });
                self.stats.vframe_assigns.inc();
            }
            if let Some(slot_idx) = inner.by_page[&page].slot {
                match inner.slots[slot_idx].state {
                    SlotState::Resident(p) => {
                        debug_assert_eq!(p, page);
                        inner.slots[slot_idx].access += 1;
                        self.stats.hits.inc();
                        return Ok(GetOutcome::Resident {
                            slot: slot_idx,
                            frame: inner.slots[slot_idx].frame,
                        });
                    }
                    SlotState::Loading(p) => {
                        debug_assert_eq!(p, page);
                        // LINT: allow(blocking-under-lock) — condvar wait atomically releases `inner` via raw().
                        self.load_done.wait(inner.raw());
                        continue; // re-evaluate from scratch
                    }
                    SlotState::Empty => unreachable!("slot mapped but empty"),
                }
            }
            // Not resident: find a slot.
            let (slot_idx, evicted) = self.find_slot(&mut inner)?;
            let frame = inner.slots[slot_idx].frame;
            inner.slots[slot_idx].state = SlotState::Loading(page);
            inner.slots[slot_idx].access = 1; // the loading caller
            inner.slots[slot_idx].dirty = false;
            if let Some(state) = inner.by_page.get_mut(&page) {
                state.slot = Some(slot_idx);
            }
            self.stats.loads.inc();
            return Ok(GetOutcome::MustLoad {
                slot: slot_idx,
                frame,
                evicted,
            });
        }
    }

    /// Second-level clock: selects an empty slot or evicts one with a zero
    /// access counter.
    fn find_slot(&self, inner: &mut Inner) -> Result<(usize, Option<Evicted>), CacheError> {
        // Prefer empty slots.
        if let Some(idx) = inner
            .slots
            .iter()
            .position(|s| matches!(s.state, SlotState::Empty))
        {
            return Ok((idx, None));
        }
        let n = inner.slots.len();
        for _ in 0..n {
            let idx = inner.hand;
            inner.hand = (inner.hand + 1) % n;
            let slot = &inner.slots[idx];
            if slot.pins > 0 || slot.access > 0 {
                continue;
            }
            let SlotState::Resident(old_page) = slot.state else {
                continue; // Loading slots are never evicted.
            };
            // Evict.
            let evicted = if slot.dirty {
                let mut data = vec![0u8; self.page_size];
                self.store.read(slot.frame, 0, &mut data);
                self.stats.dirty_evictions.inc();
                Some(Evicted {
                    page: old_page,
                    data,
                })
            } else {
                None
            };
            self.stats.evictions.inc();
            let slot = &mut inner.slots[idx];
            slot.state = SlotState::Empty;
            slot.dirty = false;
            if let Some(state) = inner.by_page.get_mut(&old_page) {
                state.slot = None;
            }
            return Ok((idx, evicted));
        }
        Err(CacheError::NoEvictableSlot)
    }

    /// Marks a load complete; waiters on the page proceed.
    pub fn finish_load(&self, slot: usize, page: DbPage) {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.slots[slot].state, SlotState::Loading(page));
        inner.slots[slot].state = SlotState::Resident(page);
        drop(inner);
        self.load_done.notify_all();
    }

    /// Abandons a failed load, emptying the slot.
    pub fn abort_load(&self, slot: usize, page: DbPage) {
        let mut inner = self.inner.lock();
        debug_assert_eq!(inner.slots[slot].state, SlotState::Loading(page));
        inner.slots[slot].state = SlotState::Empty;
        inner.slots[slot].access = 0;
        if let Some(state) = inner.by_page.get_mut(&page) {
            state.slot = None;
        }
        drop(inner);
        self.load_done.notify_all();
    }

    /// Decrements a slot's access counter (a first-level clock invalidated
    /// one process's mapping of it).
    pub fn dec_access(&self, slot: usize) {
        let mut inner = self.inner.lock();
        let s = &mut inner.slots[slot];
        debug_assert!(s.access > 0, "access counter underflow");
        s.access = s.access.saturating_sub(1);
    }

    /// Marks the page in `slot` dirty (a process took a write fault on it).
    pub fn mark_dirty(&self, slot: usize) {
        self.inner.lock().slots[slot].dirty = true;
    }

    /// Pins a slot against eviction (node-server internal use).
    pub fn pin(&self, slot: usize) {
        self.inner.lock().slots[slot].pins += 1;
    }

    /// Releases a pin.
    pub fn unpin(&self, slot: usize) {
        let mut inner = self.inner.lock();
        let s = &mut inner.slots[slot];
        debug_assert!(s.pins > 0);
        s.pins = s.pins.saturating_sub(1);
    }

    /// The current slot of `page`, if resident.
    pub fn slot_of(&self, page: DbPage) -> Option<(usize, FrameId)> {
        let inner = self.inner.lock();
        let slot = inner.by_page.get(&page)?.slot?;
        matches!(inner.slots[slot].state, SlotState::Resident(_))
            .then(|| (slot, inner.slots[slot].frame))
    }

    /// The access counter of `slot` (diagnostics, tests).
    pub fn access_count(&self, slot: usize) -> u32 {
        self.inner.lock().slots[slot].access
    }

    /// Copies out every dirty resident page and clears the dirty bits
    /// (used at commit/checkpoint by the node server).
    pub fn drain_dirty(&self) -> Vec<(DbPage, Vec<u8>)> {
        let mut inner = self.inner.lock();
        let mut out = Vec::new();
        let page_size = self.page_size;
        for slot in inner.slots.iter_mut() {
            if slot.dirty {
                if let SlotState::Resident(page) = slot.state {
                    let mut data = vec![0u8; page_size];
                    self.store.read(slot.frame, 0, &mut data);
                    out.push((page, data));
                    slot.dirty = false;
                }
            }
        }
        out
    }

    /// Drops a resident clean page from the cache if nobody can access it
    /// (used when a callback forces a page out of client caches).
    pub fn purge(&self, page: DbPage) -> bool {
        let mut inner = self.inner.lock();
        let Some(state) = inner.by_page.get(&page) else {
            return true;
        };
        let Some(slot_idx) = state.slot else {
            return true;
        };
        let slot = &inner.slots[slot_idx];
        if slot.access > 0 || slot.pins > 0 || !matches!(slot.state, SlotState::Resident(_)) {
            return false;
        }
        let vf = state.vframe;
        inner.slots[slot_idx].state = SlotState::Empty;
        inner.slots[slot_idx].dirty = false;
        inner.by_page.remove(&page);
        inner.vframes[vf] = None;
        inner.free_vframes.push(vf);
        true
    }
}

impl std::fmt::Debug for SharedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SharedCache")
            .field("slots", &inner.slots.len())
            .field("vframes", &inner.vframes.len())
            .field("resident", &inner.by_page.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(p: u64) -> DbPage {
        DbPage { area: 0, page: p }
    }

    fn fill(cache: &SharedCache, outcome: &GetOutcome, byte: u8) {
        if let GetOutcome::MustLoad { slot, frame, .. } = outcome {
            let data = vec![byte; cache.page_size()];
            cache.store().write(*frame, 0, &data);
            let p = match cache.inner.lock().slots[*slot].state {
                SlotState::Loading(p) => p,
                other => panic!("slot not loading: {other:?}"),
            };
            cache.finish_load(*slot, p);
        }
    }

    #[test]
    fn miss_load_then_hit() {
        let cache = SharedCache::new(4, 8, 256);
        let out = cache.get(page(1)).unwrap();
        assert!(matches!(out, GetOutcome::MustLoad { .. }));
        fill(&cache, &out, 0xAA);
        let out2 = cache.get(page(1)).unwrap();
        let GetOutcome::Resident { slot, frame } = out2 else {
            panic!("expected resident");
        };
        let mut buf = vec![0u8; 256];
        cache.store().read(frame, 0, &mut buf);
        assert_eq!(buf[0], 0xAA);
        assert_eq!(cache.access_count(slot), 2);
        let s = cache.stats();
        assert_eq!((s.hits.get(), s.loads.get()), (1, 1));
    }

    #[test]
    fn vframes_are_sticky_and_shared() {
        let cache = SharedCache::new(2, 16, 256);
        let vf1 = cache.vframe_of(page(1)).unwrap();
        let vf1_again = cache.vframe_of(page(1)).unwrap();
        assert_eq!(vf1, vf1_again);
        let vf2 = cache.vframe_of(page(2)).unwrap();
        assert_ne!(vf1, vf2);
        assert_eq!(cache.page_at_vframe(vf1), Some(page(1)));
    }

    #[test]
    fn eviction_skips_accessed_slots() {
        let cache = SharedCache::new(2, 16, 256);
        let a = cache.get(page(1)).unwrap();
        fill(&cache, &a, 1);
        let b = cache.get(page(2)).unwrap();
        fill(&cache, &b, 2);
        // Both slots have access == 1 (the loading caller): no eviction.
        assert_eq!(cache.get(page(3)).unwrap_err(), CacheError::NoEvictableSlot);
        // A first-level clock releases page 1's slot.
        let GetOutcome::MustLoad { slot: s1, .. } = a else {
            panic!()
        };
        cache.dec_access(s1);
        let c = cache.get(page(3)).unwrap();
        assert!(matches!(c, GetOutcome::MustLoad { .. }));
        fill(&cache, &c, 3);
        // Page 1 no longer resident.
        assert!(cache.slot_of(page(1)).is_none());
        assert!(cache.slot_of(page(3)).is_some());
    }

    #[test]
    fn dirty_eviction_returns_data() {
        let cache = SharedCache::new(1, 16, 64);
        let a = cache.get(page(1)).unwrap();
        fill(&cache, &a, 7);
        let GetOutcome::MustLoad { slot, .. } = a else {
            panic!()
        };
        cache.mark_dirty(slot);
        cache.dec_access(slot);
        let b = cache.get(page(2)).unwrap();
        let GetOutcome::MustLoad { evicted, .. } = &b else {
            panic!()
        };
        let ev = evicted.as_ref().expect("dirty page must be handed back");
        assert_eq!(ev.page, page(1));
        assert_eq!(ev.data, vec![7u8; 64]);
    }

    #[test]
    fn clean_eviction_returns_nothing() {
        let cache = SharedCache::new(1, 16, 64);
        let a = cache.get(page(1)).unwrap();
        fill(&cache, &a, 7);
        let GetOutcome::MustLoad { slot, .. } = a else {
            panic!()
        };
        cache.dec_access(slot);
        let b = cache.get(page(2)).unwrap();
        let GetOutcome::MustLoad { evicted, .. } = &b else {
            panic!()
        };
        assert!(evicted.is_none());
    }

    #[test]
    fn pinned_slots_survive() {
        let cache = SharedCache::new(1, 16, 64);
        let a = cache.get(page(1)).unwrap();
        fill(&cache, &a, 7);
        let GetOutcome::MustLoad { slot, .. } = a else {
            panic!()
        };
        cache.pin(slot);
        cache.dec_access(slot);
        assert_eq!(cache.get(page(2)).unwrap_err(), CacheError::NoEvictableSlot);
        cache.unpin(slot);
        assert!(cache.get(page(2)).is_ok());
    }

    #[test]
    fn vframe_exhaustion() {
        let cache = SharedCache::new(2, 2, 64);
        cache.vframe_of(page(1)).unwrap();
        cache.vframe_of(page(2)).unwrap();
        assert_eq!(
            cache.vframe_of(page(3)).unwrap_err(),
            CacheError::VframesExhausted
        );
        cache.release_vframe(page(1));
        cache.vframe_of(page(3)).unwrap();
    }

    #[test]
    fn concurrent_loads_of_same_page_wait() {
        use std::thread;
        let cache = SharedCache::new(4, 16, 64);
        let loader = cache.get(page(1)).unwrap();
        let GetOutcome::MustLoad { slot, frame, .. } = loader else {
            panic!()
        };
        let cache2 = Arc::clone(&cache);
        let waiter = thread::spawn(move || {
            // This get should block until finish_load, then be a hit.
            let out = cache2.get(page(1)).unwrap();
            matches!(out, GetOutcome::Resident { .. })
        });
        thread::sleep(std::time::Duration::from_millis(50));
        cache.store().write(frame, 0, &[9u8; 64]);
        cache.finish_load(slot, page(1));
        assert!(waiter.join().unwrap());
        assert_eq!(cache.stats().loads.get(), 1, "only one real load");
    }

    #[test]
    fn purge_respects_access() {
        let cache = SharedCache::new(2, 16, 64);
        let a = cache.get(page(1)).unwrap();
        fill(&cache, &a, 1);
        assert!(!cache.purge(page(1)), "still accessed");
        let GetOutcome::MustLoad { slot, .. } = a else {
            panic!()
        };
        cache.dec_access(slot);
        assert!(cache.purge(page(1)));
        assert!(cache.slot_of(page(1)).is_none());
    }

    #[test]
    fn drain_dirty_clears_bits() {
        let cache = SharedCache::new(2, 16, 64);
        let a = cache.get(page(1)).unwrap();
        fill(&cache, &a, 5);
        let GetOutcome::MustLoad { slot, .. } = a else {
            panic!()
        };
        cache.mark_dirty(slot);
        let drained = cache.drain_dirty();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, page(1));
        assert_eq!(drained[0].1, vec![5u8; 64]);
        assert!(cache.drain_dirty().is_empty());
    }
}
