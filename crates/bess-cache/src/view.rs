//! A process's view of the shared cache: PVMA frames, SVMA translation,
//! and the first-level clock.
//!
//! §4.1.2: "Each process P maps the shared cache in a number of frames —
//! each having size equal to database page — in the process' private
//! virtual memory address range, referred to as PVMA. ... Mapping of
//! database pages to virtual frames is performed via a mapping table,
//! referred to as SMT, shared by all processes. ... The shared mapping
//! table in conjunction with the use of offsets gives the illusion of a
//! shared virtual address space, referred to as SVMA."
//!
//! Here a [`SharedView`] reserves `num_vframes` pages in the process's
//! [`AddressSpace`]; faults map the touched PVMA frame onto whichever cache
//! slot currently holds the page the SMT assigns to that virtual frame. A
//! shared pointer is an [`Svma`] offset, valid in every process.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use bess_obs::{Counter, Group, Registry};

use bess_vm::{
    Access, AddressSpace, Fault, FaultHandler, FaultOutcome, FrameState, PageStore, Protect,
    VAddr, VRange,
};
use bess_lock::order::{OrderedMutex, Rank};

use crate::page::{DbPage, PageIo};
use crate::shared::{CacheError, GetOutcome, SharedCache};

/// A pointer in the shared virtual address space: an offset from the start
/// of the PVMA region, identical in every process (`vframe * page_size +
/// offset_in_page`). This is what a `shm_ref<T>` stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Svma(pub u64);

/// Counters kept by a [`SharedView`] — [`bess_obs`] handles registered
/// under the `cache.view.` prefix of [`SharedView::metrics`].
#[derive(Debug)]
pub struct ViewStats {
    /// Faults that only re-enabled a protected frame
    /// (`cache.view.revalidations`).
    pub revalidations: Counter,
    /// Faults that mapped a frame to a resident slot
    /// (`cache.view.attach_hits`).
    pub attach_hits: Counter,
    /// Faults that loaded the page into the cache
    /// (`cache.view.attach_loads`).
    pub attach_loads: Counter,
    /// Frames moved accessible -> protected by the first-level clock
    /// (`cache.view.clock_protected`).
    pub clock_protected: Counter,
    /// Frames invalidated (unmapped, access count released) —
    /// `cache.view.clock_invalidated`.
    pub clock_invalidated: Counter,
}

impl ViewStats {
    fn new(group: &Group) -> ViewStats {
        ViewStats {
            revalidations: group.counter("revalidations"),
            attach_hits: group.counter("attach_hits"),
            attach_loads: group.counter("attach_loads"),
            clock_protected: group.counter("clock_protected"),
            clock_invalidated: group.counter("clock_invalidated"),
        }
    }
}

/// One process's attachment to the shared cache (Figure 4's P1/P2).
pub struct SharedView {
    space: Arc<AddressSpace>,
    cache: Arc<SharedCache>,
    io: Arc<dyn PageIo>,
    base: VRange,
    /// vframe -> slot currently mapped by *this* process.
    mapped: OrderedMutex<std::collections::HashMap<usize, usize>>,
    hand: AtomicUsize,
    group: Group,
    stats: ViewStats,
}

struct ViewHandler(Weak<SharedView>);

impl FaultHandler for ViewHandler {
    fn handle(&self, _space: &AddressSpace, fault: Fault) -> FaultOutcome {
        match self.0.upgrade() {
            Some(view) => view.handle_fault(fault),
            None => FaultOutcome::Deny,
        }
    }
}

impl SharedView {
    /// Attaches `space` (one process's address space) to the shared cache,
    /// reserving the PVMA region. All processes must attach to caches with
    /// the same `num_vframes` ("for our scheme to work all processes must
    /// reserve the same number of PVMA frames", §4.1.2).
    pub fn attach(
        space: Arc<AddressSpace>,
        cache: Arc<SharedCache>,
        io: Arc<dyn PageIo>,
    ) -> Arc<SharedView> {
        assert_eq!(
            cache.page_size() as u64,
            space.page_size(),
            "cache frame size must match the address-space page size"
        );
        let len = cache.num_vframes() as u64 * space.page_size();
        let base = space.reserve(len, None);
        let group = Registry::new().group("cache.view");
        let stats = ViewStats::new(&group);
        let view = Arc::new(SharedView {
            space: Arc::clone(&space),
            cache,
            io,
            base,
            mapped: OrderedMutex::new(Rank::ViewMap, "view.mapped", std::collections::HashMap::new()),
            hand: AtomicUsize::new(0),
            group,
            stats,
        });
        let handler: Arc<dyn FaultHandler> = Arc::new(ViewHandler(Arc::downgrade(&view)));
        space
            .set_handler(base.start(), Some(handler))
            .expect("fresh region");
        view
    }

    /// The process's address space.
    pub fn space(&self) -> &Arc<AddressSpace> {
        &self.space
    }

    /// The attached shared cache.
    pub fn cache(&self) -> &Arc<SharedCache> {
        &self.cache
    }

    /// The view's metric group (`cache.view.*` in its registry).
    pub fn metrics(&self) -> &Group {
        &self.group
    }

    /// Activity counters.
    pub fn stats(&self) -> &ViewStats {
        &self.stats
    }

    /// The local virtual address of a shared pointer.
    pub fn to_local(&self, svma: Svma) -> VAddr {
        self.base.start().add(svma.0)
    }

    /// The shared pointer for a local address inside the PVMA region.
    ///
    /// # Panics
    /// Panics if `addr` is outside the PVMA region.
    pub fn to_svma(&self, addr: VAddr) -> Svma {
        assert!(self.base.contains(addr), "address outside PVMA");
        Svma(addr.offset_from(self.base.start()))
    }

    /// The shared pointer to byte `offset` of `page`, assigning the page a
    /// virtual frame if it has none.
    pub fn svma_of(&self, page: DbPage, offset: u64) -> Result<Svma, CacheError> {
        let vf = self.cache.vframe_of(page)?;
        Ok(Svma(vf as u64 * self.space.page_size() + offset))
    }

    /// Local address of byte `offset` of `page`.
    pub fn addr_of(&self, page: DbPage, offset: u64) -> Result<VAddr, CacheError> {
        Ok(self.to_local(self.svma_of(page, offset)?))
    }

    fn vframe_of_addr(&self, addr: VAddr) -> usize {
        (addr.offset_from(self.base.start()) / self.space.page_size()) as usize
    }

    fn frame_addr(&self, vframe: usize) -> VAddr {
        self.base.start().add(vframe as u64 * self.space.page_size())
    }

    fn handle_fault(&self, fault: Fault) -> FaultOutcome {
        let vframe = self.vframe_of_addr(fault.addr);
        let Some(page) = self.cache.page_at_vframe(vframe) else {
            // Touching a virtual frame the SMT assigned no page: a stray
            // pointer.
            return FaultOutcome::Deny;
        };
        let addr = self.frame_addr(vframe);
        let want = match fault.access {
            Access::Read => Protect::Read,
            Access::Write => Protect::ReadWrite,
        };

        // Case 1: the frame is already mapped — either the first-level
        // clock demoted it (protected) or a write hit a read-only mapping;
        // restore/upgrade access in place (and dirty-track writes).
        if self.space.frame_state(addr) != FrameState::Invalid {
            if let Some(&slot) = self.mapped.lock().get(&vframe) {
                if fault.access == Access::Write {
                    self.cache.mark_dirty(slot);
                }
                let page_range = VRange::new(addr, self.space.page_size());
                self.space
                    .protect(page_range, want)
                    .expect("pvma page reserved");
                self.stats.revalidations.inc();
                return FaultOutcome::Resume;
            }
        }

        // Case 2: frame invalid — attach to the cache slot, loading if
        // needed. On a full cache run our own first-level clock and retry;
        // if every slot is claimed by *other* processes, wait for their
        // clocks to release claims (bounded).
        let mut attempts = 0u32;
        loop {
            match self.cache.get(page) {
                Ok(GetOutcome::Resident { slot, frame }) => {
                    self.attach_frame(vframe, addr, slot, frame, want, fault.access);
                    self.stats.attach_hits.inc();
                    return FaultOutcome::Resume;
                }
                Ok(GetOutcome::MustLoad {
                    slot,
                    frame,
                    evicted,
                }) => {
                    if let Some(ev) = evicted {
                        if self.io.write_back(ev.page, &ev.data).is_err() {
                            // The victim's content could not be persisted;
                            // deny the faulting access rather than lose it.
                            self.cache.abort_load(slot, page);
                            return FaultOutcome::Deny;
                        }
                    }
                    let mut buf = vec![0u8; self.cache.page_size()];
                    if self.io.load(page, &mut buf).is_err() {
                        self.cache.abort_load(slot, page);
                        return FaultOutcome::Deny;
                    }
                    self.cache.store().write(frame, 0, &buf);
                    self.cache.finish_load(slot, page);
                    self.attach_frame(vframe, addr, slot, frame, want, fault.access);
                    self.stats.attach_loads.inc();
                    return FaultOutcome::Resume;
                }
                Err(CacheError::NoEvictableSlot) if attempts < 200 => {
                    attempts += 1;
                    // Free our own claims first; afterwards the wait is on
                    // the other processes' first-level clocks.
                    self.sweep(self.cache.num_vframes() * 2);
                    if attempts > 1 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                }
                Err(_) => return FaultOutcome::Deny,
            }
        }
    }

    fn attach_frame(
        &self,
        vframe: usize,
        addr: VAddr,
        slot: usize,
        frame: bess_vm::FrameId,
        want: Protect,
        access: Access,
    ) {
        if access == Access::Write {
            self.cache.mark_dirty(slot);
        }
        let store: Arc<dyn PageStore> = Arc::clone(self.cache.store()) as Arc<dyn PageStore>;
        self.space
            .map_page(addr, store, frame, want)
            .expect("pvma page reserved");
        let prev = self.mapped.lock().insert(vframe, slot);
        debug_assert!(prev.is_none(), "frame attached twice");
    }

    /// Runs the first-level clock over up to `steps` virtual frames:
    /// accessible frames are demoted to protected; protected frames are
    /// invalidated, releasing this process's claim on the cache slot
    /// (decrementing its counter). Returns the number of invalidations.
    pub fn sweep(&self, steps: usize) -> usize {
        let n = self.cache.num_vframes();
        let mut invalidated = 0;
        for _ in 0..steps {
            let vf = self.hand.fetch_add(1, Ordering::Relaxed) % n;
            let addr = self.frame_addr(vf);
            match self.space.frame_state(addr) {
                FrameState::Invalid => {}
                FrameState::Accessible => {
                    let page_range = VRange::new(addr, self.space.page_size());
                    self.space
                        .protect(page_range, Protect::None)
                        .expect("pvma page reserved");
                    self.stats.clock_protected.inc();
                }
                FrameState::Protected => {
                    if let Some(slot) = self.mapped.lock().remove(&vf) {
                        self.space.unmap_page(addr).expect("pvma page reserved");
                        self.cache.dec_access(slot);
                        self.stats.clock_invalidated.inc();
                        invalidated += 1;
                    }
                }
            }
        }
        invalidated
    }

    /// Invalidates every frame this process has mapped (end of transaction
    /// for clients without inter-transaction caching, §3; or detach).
    pub fn invalidate_all(&self) {
        let mapped: Vec<(usize, usize)> = self.mapped.lock().drain().collect();
        for (vf, slot) in mapped {
            let addr = self.frame_addr(vf);
            self.space.unmap_page(addr).expect("pvma page reserved");
            self.cache.dec_access(slot);
            self.stats.clock_invalidated.inc();
        }
    }

    /// Reads `buf.len()` bytes at shared pointer `svma` through the normal
    /// faulting path.
    pub fn read(&self, svma: Svma, buf: &mut [u8]) -> bess_vm::VmResult<()> {
        self.space.read(self.to_local(svma), buf)
    }

    /// Writes `data` at shared pointer `svma` through the normal faulting
    /// path (first write to a page faults and marks it dirty).
    pub fn write(&self, svma: Svma, data: &[u8]) -> bess_vm::VmResult<()> {
        self.space.write(self.to_local(svma), data)
    }
}

impl std::fmt::Debug for SharedView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedView")
            .field("base", &self.base)
            .field("mapped", &self.mapped.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MapIo;

    fn setup(slots: usize, vframes: usize) -> (Arc<SharedCache>, Arc<MapIo>) {
        let cache = SharedCache::new(slots, vframes, 256);
        let io = Arc::new(MapIo::new());
        (cache, io)
    }

    fn attach(cache: &Arc<SharedCache>, io: &Arc<MapIo>) -> Arc<SharedView> {
        let space = Arc::new(AddressSpace::with_page_size(256));
        SharedView::attach(space, Arc::clone(cache), Arc::clone(io) as Arc<dyn PageIo>)
    }

    fn page(p: u64) -> DbPage {
        DbPage { area: 0, page: p }
    }

    #[test]
    fn fault_loads_page_and_reads_content() {
        let (cache, io) = setup(4, 8);
        io.put(page(1), {
            let mut v = vec![0u8; 256];
            v[10] = 0x5A;
            v
        });
        let view = attach(&cache, &io);
        let svma = view.svma_of(page(1), 10).unwrap();
        let mut buf = [0u8; 1];
        view.read(svma, &mut buf).unwrap();
        assert_eq!(buf[0], 0x5A);
        assert_eq!(view.stats().attach_loads.get(), 1);
        // Second read: no fault at all.
        view.read(svma, &mut buf).unwrap();
        assert_eq!(view.space().stats().read_faults.get(), 1);
    }

    #[test]
    fn two_processes_share_one_load_and_see_writes() {
        let (cache, io) = setup(4, 8);
        let p1 = attach(&cache, &io);
        let p2 = attach(&cache, &io);
        let svma = p1.svma_of(page(7), 0).unwrap();
        // Same SVMA in both processes (that is the point of the SMT).
        assert_eq!(svma, p2.svma_of(page(7), 0).unwrap());
        // But (possibly) different local addresses.
        p1.write(svma, b"shared!").unwrap();
        let mut buf = [0u8; 7];
        p2.read(svma, &mut buf).unwrap();
        assert_eq!(&buf, b"shared!");
        assert_eq!(cache.stats().loads.get(), 1, "one load served both");
    }

    #[test]
    fn figure4_walkthrough() {
        // The exact §4.1.2 scenario: 2-slot cache, processes P1 and P2,
        // pages A, B, C.
        let (cache, io) = setup(2, 8);
        io.put(page(0xA), vec![0xA; 256]);
        io.put(page(0xB), vec![0xB; 256]);
        io.put(page(0xC), vec![0xC; 256]);
        let p1 = attach(&cache, &io);
        let p2 = attach(&cache, &io);

        // (a) P1 accesses A; P2 accesses B.
        let a = p1.svma_of(page(0xA), 0).unwrap();
        let b = p2.svma_of(page(0xB), 0).unwrap();
        let mut buf = [0u8; 1];
        p1.read(a, &mut buf).unwrap();
        assert_eq!(buf[0], 0xA);
        p2.read(b, &mut buf).unwrap();
        assert_eq!(buf[0], 0xB);

        // (b) P2 wants C. The cache is full; P2's first-level clock must
        // give up its claim on B before a slot frees up.
        p2.sweep(16); // accessible -> protected
        p2.sweep(16); // protected -> invalid (decrements B's slot counter)
        let c = p2.svma_of(page(0xC), 0).unwrap();
        p2.read(c, &mut buf).unwrap();
        assert_eq!(buf[0], 0xC);
        assert!(cache.slot_of(page(0xB)).is_none(), "B was replaced");

        // P1 can still read A (its claim was preserved: P1's clock did not
        // run) and can reach C at the same SVMA P2 used.
        p1.read(a, &mut buf).unwrap();
        assert_eq!(buf[0], 0xA);
        p1.read(c, &mut buf).unwrap();
        assert_eq!(buf[0], 0xC);
        assert_eq!(c, p1.svma_of(page(0xC), 0).unwrap());
    }

    #[test]
    fn clock_revalidation_is_cheap() {
        let (cache, io) = setup(4, 8);
        let view = attach(&cache, &io);
        let svma = view.svma_of(page(1), 0).unwrap();
        let mut buf = [0u8; 1];
        view.read(svma, &mut buf).unwrap();
        // Demote to protected; next access revalidates without cache calls.
        view.sweep(8);
        let loads_before = cache.stats().loads.get();
        view.read(svma, &mut buf).unwrap();
        assert_eq!(view.stats().revalidations.get(), 1);
        assert_eq!(cache.stats().loads.get(), loads_before);
    }

    #[test]
    fn write_fault_marks_dirty_and_write_back_on_eviction() {
        let (cache, io) = setup(1, 8);
        let view = attach(&cache, &io);
        let svma = view.svma_of(page(1), 3).unwrap();
        view.write(svma, b"dirty").unwrap();
        // Invalidate and touch another page: eviction must write back.
        view.sweep(16);
        view.sweep(16);
        let other = view.svma_of(page(2), 0).unwrap();
        let mut buf = [0u8; 1];
        view.read(other, &mut buf).unwrap();
        assert_eq!(io.write_backs(), 1);
        assert_eq!(&io.get(page(1), 256)[3..8], b"dirty");
    }

    #[test]
    fn full_cache_self_heals_via_own_clock() {
        let (cache, io) = setup(2, 8);
        let view = attach(&cache, &io);
        let mut buf = [0u8; 1];
        // Touch three pages through a 2-slot cache; the handler must run
        // the first-level clock internally.
        for p in 1..=3 {
            let svma = view.svma_of(page(p), 0).unwrap();
            view.read(svma, &mut buf).unwrap();
        }
        assert!(cache.slot_of(page(3)).is_some());
    }

    #[test]
    fn stray_frame_access_denied() {
        let (cache, io) = setup(2, 8);
        let view = attach(&cache, &io);
        // vframe 5 has no page assigned; direct access must be a caught
        // protection violation.
        let addr = view.to_local(Svma(5 * 256));
        let err = view.space().read_u32(addr).unwrap_err();
        assert!(matches!(err, bess_vm::VmError::ProtectionViolation { .. }));
    }

    #[test]
    fn invalidate_all_releases_claims() {
        let (cache, io) = setup(2, 8);
        let view = attach(&cache, &io);
        let mut buf = [0u8; 1];
        for p in 1..=2 {
            let svma = view.svma_of(page(p), 0).unwrap();
            view.read(svma, &mut buf).unwrap();
        }
        view.invalidate_all();
        let (slot1, _) = cache.slot_of(page(1)).unwrap();
        assert_eq!(cache.access_count(slot1), 0);
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use crate::page::MapIo;
    use crate::shared::SharedCache;
    use std::thread;

    /// Many "processes" hammer a small shared cache concurrently: every
    /// read must observe exactly the per-page stamp that was seeded,
    /// through any interleaving of faults, first-level clock sweeps, and
    /// second-level replacements.
    #[test]
    fn many_views_small_cache_stay_coherent() {
        const PS: usize = 256;
        const PAGES: u64 = 64;
        let cache = SharedCache::new(8, 128, PS);
        let io = Arc::new(MapIo::new());
        for p in 0..PAGES {
            let mut content = vec![0u8; PS];
            content[..8].copy_from_slice(&p.to_le_bytes());
            content[PS - 1] = (p % 251) as u8;
            io.put(DbPage { area: 0, page: p }, content);
        }

        let mut handles = Vec::new();
        for t in 0..6u64 {
            let cache = Arc::clone(&cache);
            let io = Arc::clone(&io);
            handles.push(thread::spawn(move || {
                let space = Arc::new(AddressSpace::with_page_size(PS as u64));
                let view =
                    SharedView::attach(space, cache, io as Arc<dyn crate::page::PageIo>);
                let mut buf8 = [0u8; 8];
                let mut buf1 = [0u8; 1];
                for i in 0..2000u64 {
                    let p = (i.wrapping_mul(31).wrapping_add(t * 17)) % PAGES;
                    let svma = view.svma_of(DbPage { area: 0, page: p }, 0).unwrap();
                    view.read(svma, &mut buf8).unwrap();
                    assert_eq!(u64::from_le_bytes(buf8), p, "thread {t} page {p}");
                    let tail = view
                        .svma_of(DbPage { area: 0, page: p }, PS as u64 - 1)
                        .unwrap();
                    view.read(tail, &mut buf1).unwrap();
                    assert_eq!(buf1[0], (p % 251) as u8);
                    // Periodically run the first-level clock to release
                    // claims (and force replacement churn).
                    if i % 64 == 0 {
                        view.sweep(256);
                    }
                }
                view.invalidate_all();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert!(s.evictions.get() > 0, "an 8-slot cache must churn: {s:?}");
    }
}
