//! A [`PageIo`] over a set of storage areas.

use std::collections::HashMap;
use std::sync::Arc;

use bess_lock::order::{OrderedRwLock, Rank};
use bess_storage::StorageArea;

use crate::page::{DbPage, PageIo};

/// Routes cache loads and write-backs to the storage areas of a server —
/// the [`PageIo`] used when the cache sits directly above disk (a BeSS
/// server, or a client embedded with one, §3).
pub struct AreaSet {
    areas: OrderedRwLock<HashMap<u32, Arc<StorageArea>>>,
}

impl Default for AreaSet {
    fn default() -> Self {
        AreaSet {
            areas: OrderedRwLock::new(Rank::AreaSet, "cache.areaset", HashMap::new()),
        }
    }
}

impl AreaSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an area.
    pub fn add(&self, area: Arc<StorageArea>) {
        self.areas.write().insert(area.id().0, area);
    }

    /// Looks up an area by number.
    pub fn get(&self, id: u32) -> Option<Arc<StorageArea>> {
        self.areas.read().get(&id).cloned()
    }

    /// All registered area numbers.
    pub fn ids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.areas.read().keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl PageIo for AreaSet {
    fn load(&self, page: DbPage, buf: &mut [u8]) -> Result<(), String> {
        let area = self
            .get(page.area)
            .ok_or_else(|| format!("no storage area {}", page.area))?;
        area.read_page(page.page, buf).map_err(|e| e.to_string())
    }

    fn write_back(&self, page: DbPage, data: &[u8]) -> Result<(), String> {
        let area = self
            .get(page.area)
            .ok_or_else(|| format!("no storage area {}", page.area))?;
        area.write_page(page.page, data)
            .map_err(|e| format!("write-back of {page} failed: {e}"))
    }

    fn load_batch(&self, pages: &[DbPage], _page_size: usize) -> Vec<Result<Vec<u8>, String>> {
        // Group by area in first-appearance order and submit each group as
        // one scatter-gather read; results scatter back to request order.
        let mut out: Vec<Result<Vec<u8>, String>> = pages
            .iter()
            .map(|p| Err(format!("no storage area {}", p.area)))
            .collect();
        let mut groups: Vec<(u32, Vec<usize>)> = Vec::new();
        for (i, p) in pages.iter().enumerate() {
            match groups.iter_mut().find(|(a, _)| *a == p.area) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((p.area, vec![i])),
            }
        }
        for (area_id, idxs) in groups {
            let Some(area) = self.get(area_id) else {
                continue; // the prefilled "no storage area" error stands
            };
            let group_pages: Vec<u64> = idxs.iter().map(|&i| pages[i].page).collect();
            for (&i, res) in idxs.iter().zip(area.read_pages_batch(&group_pages)) {
                out[i] = res.map_err(|e| e.to_string());
            }
        }
        out
    }
}

impl std::fmt::Debug for AreaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AreaSet").field("areas", &self.ids()).finish()
    }
}

impl bess_storage::DiskSpace for AreaSet {
    fn page_size(&self) -> usize {
        // All areas in a set share one page size; sample any.
        self.areas
            .read()
            .values()
            .next()
            .map(|a| a.page_size())
            .unwrap_or(bess_storage::PAGE_SIZE)
    }

    fn alloc(&self, area: u32, pages: u32) -> bess_storage::StorageResult<bess_storage::DiskPtr> {
        let a = self
            .get(area)
            .ok_or(bess_storage::StorageError::BadPage(0))?;
        bess_storage::StorageArea::alloc(&a, pages)
    }

    fn free(&self, ptr: bess_storage::DiskPtr) -> bess_storage::StorageResult<()> {
        let a = self
            .get(ptr.area.0)
            .ok_or(bess_storage::StorageError::BadPage(ptr.start_page))?;
        bess_storage::StorageArea::free(&a, ptr)
    }

    fn read_at(
        &self,
        area: u32,
        page: u64,
        offset: usize,
        buf: &mut [u8],
    ) -> bess_storage::StorageResult<()> {
        let a = self
            .get(area)
            .ok_or(bess_storage::StorageError::BadPage(page))?;
        bess_storage::StorageArea::read_at(&a, page, offset, buf)
    }

    fn write_at(
        &self,
        area: u32,
        page: u64,
        offset: usize,
        data: &[u8],
    ) -> bess_storage::StorageResult<()> {
        let a = self
            .get(area)
            .ok_or(bess_storage::StorageError::BadPage(page))?;
        bess_storage::StorageArea::write_at(&a, page, offset, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bess_storage::{AreaConfig, AreaId};

    #[test]
    fn round_trip_through_area() {
        let set = AreaSet::new();
        let area = Arc::new(StorageArea::create_mem(AreaId(3), AreaConfig::default()).unwrap());
        let seg = area.alloc(1).unwrap();
        set.add(area);

        let page = DbPage {
            area: 3,
            page: seg.start_page,
        };
        let data = vec![0x3C; 4096];
        set.write_back(page, &data).unwrap();
        let mut buf = vec![0u8; 4096];
        set.load(page, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn corrupt_page_surfaces_through_load() {
        use bess_storage::fault::{FaultDisk, FaultPlan};
        use bess_storage::PAGE_HDR;
        let disk = FaultDisk::new(FaultPlan::unarmed());
        let area = Arc::new(
            StorageArea::create_faulty(AreaId(1), AreaConfig::default(), Arc::clone(&disk))
                .unwrap(),
        );
        let seg = area.alloc(1).unwrap();
        let ps = area.page_size();
        let set = AreaSet::new();
        let page = DbPage {
            area: 1,
            page: seg.start_page,
        };
        set.add(Arc::clone(&area));
        set.write_back(page, &vec![0x5A; ps]).unwrap();

        // Durably rot one data byte inside the page's slot: the cache must
        // get a typed error, never the rotted bytes.
        let off = seg.start_page * (PAGE_HDR + ps) as u64 + PAGE_HDR as u64 + 3;
        let mut b = [0u8; 1];
        disk.read_at(&mut b, off).unwrap();
        disk.write_at(&[b[0] ^ 0x80], off).unwrap();

        let mut buf = vec![0u8; ps];
        let err = set.load(page, &mut buf).unwrap_err();
        assert!(err.contains("corrupt page"), "got: {err}");
    }

    #[test]
    fn missing_area_errors() {
        let set = AreaSet::new();
        let mut buf = vec![0u8; 4096];
        assert!(set.load(DbPage { area: 9, page: 0 }, &mut buf).is_err());
    }
}
