//! The private buffer pool of copy-on-access mode.
//!
//! §4.1.1: "each process has a private buffer pool to cache segments. The
//! buffer pool is implemented as a fixed size file divided into a number of
//! frames whose size is equal to the BeSS page size," mapped into the
//! process's address space. Replacement uses the frame-state clock of §4.2:
//! because the memory-mapped architecture leaves no reference bits, the
//! clock demotes *accessible* frames to *protected* and evicts frames still
//! *protected* on the next visit (they were not touched in between — a
//! touch would have faulted them back to accessible).
//!
//! Unlike the shared cache, pages here live at arbitrary reserved addresses
//! (the per-segment ranges of the swizzling scheme, §2.1), so the pool
//! records where each page is mapped in order to flip its protection.

use std::collections::HashMap;
use std::sync::Arc;

use bess_lock::order::{OrderedMutex, Rank};
use bess_obs::{Counter, Group, LatencyHistogram, Registry};
use bess_vm::{AddressSpace, FrameId, FrameState, HeapStore, PageStore, Protect, VAddr, VRange};

use crate::page::{DbPage, PageIo};

/// Errors from private-pool operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// Every frame is in active use and nothing could be evicted.
    PoolExhausted,
    /// The page is already mapped at a different address.
    AlreadyMapped {
        /// The page in question.
        page: DbPage,
    },
    /// The page source failed (e.g. a remote lock denied by the deadlock
    /// timeout).
    LoadFailed {
        /// The page in question.
        page: DbPage,
    },
    /// Writing a dirty page back to its source failed. The page was still
    /// evicted; the WAL is the durability backstop.
    WriteBackFailed {
        /// The page in question.
        page: DbPage,
        /// The underlying failure.
        reason: String,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::PoolExhausted => write!(f, "private buffer pool exhausted"),
            PoolError::AlreadyMapped { page } => {
                write!(f, "page {page} already mapped at another address")
            }
            PoolError::LoadFailed { page } => write!(f, "load of page {page} failed"),
            PoolError::WriteBackFailed { page, reason } => {
                write!(f, "write-back of page {page} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

struct Resident {
    frame: FrameId,
    addr: VAddr,
    dirty: bool,
    pinned: bool,
}

struct PoolInner {
    resident: HashMap<DbPage, Resident>,
    ring: Vec<DbPage>,
    hand: usize,
}

/// Counters kept by a [`PrivatePool`] — [`bess_obs`] handles registered
/// under the `cache.private.` prefix of [`PrivatePool::metrics`].
#[derive(Debug)]
pub struct PoolStats {
    /// Pages faulted in, loads from the page source (`cache.private.loads`).
    pub loads: Counter,
    /// Faults satisfied by a resident frame, re-protection only
    /// (`cache.private.hits`).
    pub hits: Counter,
    /// Frames evicted (`cache.private.evictions`).
    pub evictions: Counter,
    /// Dirty evictions written back (`cache.private.write_backs`).
    pub write_backs: Counter,
    /// Accessible -> protected clock demotions
    /// (`cache.private.clock_protected`).
    pub clock_protected: Counter,
}

impl PoolStats {
    fn new(group: &Group) -> PoolStats {
        PoolStats {
            loads: group.counter("loads"),
            hits: group.counter("hits"),
            evictions: group.counter("evictions"),
            write_backs: group.counter("write_backs"),
            clock_protected: group.counter("clock_protected"),
        }
    }
}

/// A fixed-capacity private buffer pool bound to one process's address
/// space.
pub struct PrivatePool {
    space: Arc<AddressSpace>,
    store: Arc<HeapStore>,
    io: Arc<dyn PageIo>,
    capacity: usize,
    inner: OrderedMutex<PoolInner>,
    group: Group,
    stats: PoolStats,
    fault_ns: LatencyHistogram,
}

impl PrivatePool {
    /// Creates a pool of `capacity` frames over `space`, filling misses
    /// from `io`.
    pub fn new(space: Arc<AddressSpace>, io: Arc<dyn PageIo>, capacity: usize) -> Self {
        assert!(capacity > 0, "pool needs at least one frame");
        let store = Arc::new(HeapStore::new(space.page_size() as usize));
        let group = Registry::new().group("cache.private");
        let stats = PoolStats::new(&group);
        let fault_ns = group.histogram("fault.ns");
        PrivatePool {
            space,
            store,
            io,
            capacity,
            inner: OrderedMutex::new(
                Rank::PrivatePool,
                "cache.private",
                PoolInner {
                    resident: HashMap::new(),
                    ring: Vec::new(),
                    hand: 0,
                },
            ),
            group,
            stats,
            fault_ns,
        }
    }

    /// The pool's address space.
    pub fn space(&self) -> &Arc<AddressSpace> {
        &self.space
    }

    /// Activity counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// The pool's metric group (`cache.private.*`), including the
    /// `cache.private.fault.ns` histogram over [`PrivatePool::fault_in`].
    pub fn metrics(&self) -> &Group {
        &self.group
    }

    /// Frames currently resident.
    pub fn resident_count(&self) -> usize {
        self.inner.lock().resident.len()
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn page_range(&self, addr: VAddr) -> VRange {
        VRange::new(addr.page_base(self.space.page_size()), self.space.page_size())
    }

    /// Faults `page` in at page-aligned address `addr` with protection
    /// `want`. If the page is already resident at `addr`, only its
    /// protection is raised. Evicts via the clock when full.
    pub fn fault_in(&self, page: DbPage, addr: VAddr, want: Protect) -> Result<FrameId, PoolError> {
        let _timer = self.fault_ns.start();
        let addr = addr.page_base(self.space.page_size());
        {
            let mut inner = self.inner.lock();
            if let Some(res) = inner.resident.get_mut(&page) {
                if res.addr != addr {
                    return Err(PoolError::AlreadyMapped { page });
                }
                if want == Protect::ReadWrite {
                    res.dirty = true;
                }
                let frame = res.frame;
                drop(inner);
                self.space
                    .protect(self.page_range(addr), want)
                    .expect("page reserved by segment layer");
                self.stats.hits.inc();
                return Ok(frame);
            }
            if inner.resident.len() >= self.capacity {
                self.evict_one(&mut inner)?;
            }
        }
        // Load outside the lock.
        let mut buf = vec![0u8; self.space.page_size() as usize];
        if self.io.load(page, &mut buf).is_err() {
            return Err(PoolError::LoadFailed { page });
        }
        let frame = self.store.alloc();
        self.store.write(frame, 0, &buf);
        let store: Arc<dyn PageStore> = Arc::clone(&self.store) as Arc<dyn PageStore>;
        self.space
            .map_page(addr, store, frame, want)
            .expect("page reserved by segment layer");
        {
            let mut inner = self.inner.lock();
            inner.resident.insert(
                page,
                Resident {
                    frame,
                    addr,
                    dirty: want == Protect::ReadWrite,
                    pinned: false,
                },
            );
            inner.ring.push(page);
        }
        self.stats.loads.inc();
        Ok(frame)
    }

    /// Faults a run of pages in with one batched load — the wave-2/-3
    /// prefetch path. Resident pages are re-protected exactly as in
    /// [`PrivatePool::fault_in`]; all misses go to the page source in a
    /// single [`PageIo::load_batch`] call (one scatter-gather submission
    /// on a batched backend) and are then mapped one by one under the
    /// same capacity/eviction rules as the single-page path. Stops at the
    /// first page that cannot be loaded or evicted for, leaving the pages
    /// before it resident.
    pub fn fault_in_batch(
        &self,
        pages: &[(DbPage, VAddr)],
        want: Protect,
    ) -> Result<(), PoolError> {
        let _timer = self.fault_ns.start();
        let psz = self.space.page_size();
        let mut hits: Vec<VAddr> = Vec::new();
        let mut misses: Vec<(DbPage, VAddr)> = Vec::new();
        {
            let mut inner = self.inner.lock();
            for &(page, addr) in pages {
                let addr = addr.page_base(psz);
                match inner.resident.get_mut(&page) {
                    Some(res) => {
                        if res.addr != addr {
                            return Err(PoolError::AlreadyMapped { page });
                        }
                        if want == Protect::ReadWrite {
                            res.dirty = true;
                        }
                        hits.push(addr);
                    }
                    None => misses.push((page, addr)),
                }
            }
        }
        for addr in hits {
            self.space
                .protect(self.page_range(addr), want)
                // LINT: allow(panic) — page reserved by the segment layer before fault-in
                .expect("page reserved by segment layer");
            self.stats.hits.inc();
        }
        // Load every miss outside the lock, as one submission.
        let miss_pages: Vec<DbPage> = misses.iter().map(|&(p, _)| p).collect();
        let loaded = self.io.load_batch(&miss_pages, psz as usize);
        for ((page, addr), data) in misses.into_iter().zip(loaded) {
            let Ok(data) = data else {
                return Err(PoolError::LoadFailed { page });
            };
            {
                let mut inner = self.inner.lock();
                if inner.resident.contains_key(&page) {
                    continue; // raced in since classification; keep it
                }
                if inner.resident.len() >= self.capacity {
                    // LINT: allow(blocking-under-lock) — the private pool is per-transaction state; synchronous eviction write-back under its uncontended lock is the design until the async Backend lands (ROADMAP).
                    self.evict_one(&mut inner)?;
                }
            }
            let frame = self.store.alloc();
            self.store.write(frame, 0, &data);
            let store: Arc<dyn PageStore> = Arc::clone(&self.store) as Arc<dyn PageStore>;
            self.space
                .map_page(addr, store, frame, want)
                // LINT: allow(panic) — page reserved by the segment layer before fault-in
                .expect("page reserved by segment layer");
            {
                let mut inner = self.inner.lock();
                inner.resident.insert(
                    page,
                    Resident {
                        frame,
                        addr,
                        dirty: want == Protect::ReadWrite,
                        pinned: false,
                    },
                );
                inner.ring.push(page);
            }
            self.stats.loads.inc();
        }
        Ok(())
    }

    /// One full clock rotation (at most), evicting the first victim.
    fn evict_one(&self, inner: &mut PoolInner) -> Result<(), PoolError> {
        // Two passes: the first demotes accessible frames, the second can
        // then find a protected victim.
        for _ in 0..inner.ring.len() * 2 {
            if inner.ring.is_empty() {
                break;
            }
            let idx = inner.hand % inner.ring.len();
            let page = inner.ring[idx];
            let res = inner.resident.get(&page).expect("ring entry resident");
            if res.pinned {
                inner.hand = (inner.hand + 1) % inner.ring.len().max(1);
                continue;
            }
            match self.space.frame_state(res.addr) {
                FrameState::Accessible => {
                    self.space
                        .protect(self.page_range(res.addr), Protect::None)
                        .expect("mapped page");
                    self.stats.clock_protected.inc();
                    inner.hand = (inner.hand + 1) % inner.ring.len();
                }
                FrameState::Protected => {
                    return self.do_evict(inner, page);
                }
                FrameState::Invalid => {
                    // Unmapped behind our back (segment released); drop it.
                    return self.do_evict(inner, page);
                }
            }
        }
        Err(PoolError::PoolExhausted)
    }

    /// Evicts `page` unconditionally. A failed write-back of a dirty page
    /// still completes the eviction (the WAL repairs the page at recovery)
    /// but is reported so commit-critical paths can refuse to proceed.
    fn do_evict(&self, inner: &mut PoolInner, page: DbPage) -> Result<(), PoolError> {
        let res = inner.resident.remove(&page).expect("resident");
        inner.ring.retain(|&p| p != page);
        if inner.hand >= inner.ring.len() {
            inner.hand = 0;
        }
        let mut write_back_failure = None;
        if res.dirty {
            let mut buf = vec![0u8; self.space.page_size() as usize];
            self.store.read(res.frame, 0, &mut buf);
            match self.io.write_back(page, &buf) {
                Ok(()) => {
                    self.stats.write_backs.inc();
                }
                Err(reason) => write_back_failure = Some(reason),
            }
        }
        if self.space.frame_state(res.addr) != FrameState::Invalid {
            self.space.unmap_page(res.addr).expect("mapped page");
        }
        self.store.free(res.frame);
        self.stats.evictions.inc();
        match write_back_failure {
            Some(reason) => Err(PoolError::WriteBackFailed { page, reason }),
            None => Ok(()),
        }
    }

    /// Copies out the current content of a resident page (used by the
    /// commit path to diff against the before-image).
    pub fn read_page_copy(&self, page: DbPage) -> Option<Vec<u8>> {
        let inner = self.inner.lock();
        let res = inner.resident.get(&page)?;
        let mut buf = vec![0u8; self.space.page_size() as usize];
        self.store.read(res.frame, 0, &mut buf);
        Some(buf)
    }

    /// Drops a resident page *without* writing it back, even if dirty —
    /// the abort path discards uncommitted content this way.
    pub fn discard(&self, page: DbPage) {
        let mut inner = self.inner.lock();
        if let Some(res) = inner.resident.get_mut(&page) {
            res.dirty = false;
        }
        if inner.resident.contains_key(&page) {
            // Cannot fail: the dirty flag was just cleared, so no
            // write-back happens.
            // LINT: allow(blocking-under-lock) — dirty flag cleared above, so do_evict cannot reach the write-back I/O.
            let _ = self.do_evict(&mut inner, page);
        }
    }

    /// Re-protects a resident page (e.g. back to read-only at commit so
    /// the next transaction's first write traps again, §2.3).
    pub fn protect_page(&self, page: DbPage, prot: Protect) {
        let inner = self.inner.lock();
        if let Some(res) = inner.resident.get(&page) {
            self.space
                .protect(self.page_range(res.addr), prot)
                .expect("resident page mapped");
        }
    }

    /// Clears every dirty flag without writing anything (the caller has
    /// already made the content durable through another channel, e.g. a
    /// commit that shipped page diffs).
    pub fn clear_dirty_flags(&self) {
        for (_, r) in self.inner.lock().resident.iter_mut() {
            r.dirty = false;
        }
    }

    /// Pages currently dirty.
    pub fn dirty_pages(&self) -> Vec<DbPage> {
        self.inner
            .lock()
            .resident
            .iter()
            .filter(|(_, r)| r.dirty)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Marks `page` dirty (its process took a write fault).
    pub fn mark_dirty(&self, page: DbPage) {
        if let Some(res) = self.inner.lock().resident.get_mut(&page) {
            res.dirty = true;
        }
    }

    /// Pins `page` against eviction while the caller works on it directly.
    pub fn pin(&self, page: DbPage, pinned: bool) {
        if let Some(res) = self.inner.lock().resident.get_mut(&page) {
            res.pinned = pinned;
        }
    }

    /// Explicitly evicts `page` (e.g. the segment moved or the cache is
    /// being purged by a callback). Dirty content is written back; a failed
    /// write-back still evicts but is reported.
    pub fn evict(&self, page: DbPage) -> Result<(), PoolError> {
        let mut inner = self.inner.lock();
        if inner.resident.contains_key(&page) {
            // LINT: allow(blocking-under-lock) — the private pool is per-transaction state; synchronous eviction write-back under its uncontended lock is the design until the async Backend lands (ROADMAP).
            self.do_evict(&mut inner, page)?;
        }
        Ok(())
    }

    /// Writes back every dirty page, keeping them resident (commit-time
    /// flush). Stops at the first failed write-back, leaving that page
    /// dirty so the flush can be retried.
    pub fn flush_dirty(&self) -> Result<(), PoolError> {
        let mut inner = self.inner.lock();
        let page_size = self.space.page_size() as usize;
        for (page, res) in inner.resident.iter_mut() {
            if res.dirty {
                let mut buf = vec![0u8; page_size];
                self.store.read(res.frame, 0, &mut buf);
                self.io
                    // LINT: allow(blocking-under-lock) — the private pool is per-transaction state; synchronous write-back under its uncontended lock is the design until the async Backend lands (ROADMAP).
                    .write_back(*page, &buf)
                    .map_err(|reason| PoolError::WriteBackFailed { page: *page, reason })?;
                res.dirty = false;
                self.stats.write_backs.inc();
            }
        }
        Ok(())
    }

    /// Evicts everything (end of transaction for cache-less clients, §3:
    /// "when the transaction terminates, it ... cleans its private buffer
    /// pool"). All pages are evicted even on failure; the first failed
    /// write-back is reported.
    pub fn clear(&self) -> Result<(), PoolError> {
        let pages: Vec<DbPage> = self.inner.lock().resident.keys().copied().collect();
        let mut first_err = Ok(());
        for page in pages {
            let res = self.evict(page);
            if first_err.is_ok() {
                first_err = res;
            }
        }
        first_err
    }
}

impl std::fmt::Debug for PrivatePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrivatePool")
            .field("capacity", &self.capacity)
            .field("resident", &self.resident_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::MapIo;

    const PS: u64 = 256;

    fn setup(capacity: usize) -> (Arc<AddressSpace>, Arc<MapIo>, PrivatePool) {
        let space = Arc::new(AddressSpace::with_page_size(PS));
        let io = Arc::new(MapIo::new());
        let pool = PrivatePool::new(
            Arc::clone(&space),
            Arc::clone(&io) as Arc<dyn PageIo>,
            capacity,
        );
        (space, io, pool)
    }

    fn page(p: u64) -> DbPage {
        DbPage { area: 0, page: p }
    }

    #[test]
    fn fault_in_and_read() {
        let (space, io, pool) = setup(4);
        io.put(page(1), vec![0x42; PS as usize]);
        let range = space.reserve(PS, None);
        pool.fault_in(page(1), range.start(), Protect::Read).unwrap();
        assert_eq!(space.read_u32(range.start()).unwrap(), 0x42424242);
    }

    #[test]
    fn clock_evicts_lru_like_victim() {
        let (space, io, pool) = setup(2);
        let ranges: Vec<_> = (0..3).map(|_| space.reserve(PS, None)).collect();
        for (i, r) in ranges.iter().enumerate().take(2) {
            io.put(page(i as u64), vec![i as u8; PS as usize]);
            pool.fault_in(page(i as u64), r.start(), Protect::Read).unwrap();
        }
        assert_eq!(pool.resident_count(), 2);
        // Touch page 1 by re-reading after a demote cycle happens inside
        // the next fault_in; then bring in page 2 — the clock picks a
        // victim among untouched frames.
        pool.fault_in(page(2), ranges[2].start(), Protect::Read).unwrap();
        assert_eq!(pool.resident_count(), 2);
        assert_eq!(pool.stats().evictions.get(), 1);
    }

    #[test]
    fn touched_pages_get_second_chance() {
        let (space, io, pool) = setup(2);
        let r0 = space.reserve(PS, None);
        let r1 = space.reserve(PS, None);
        let r2 = space.reserve(PS, None);
        io.put(page(0), vec![10; PS as usize]);
        io.put(page(1), vec![11; PS as usize]);
        io.put(page(2), vec![12; PS as usize]);
        pool.fault_in(page(0), r0.start(), Protect::Read).unwrap();
        pool.fault_in(page(1), r1.start(), Protect::Read).unwrap();
        // Demote both (first clock pass behaviour): simulate by an explicit
        // eviction attempt that protects everything but evicts one. Then
        // touch page 0 so it is accessible again.
        pool.fault_in(page(2), r2.start(), Protect::Read).unwrap(); // evicts one of 0/1
        let survivor = if pool.resident_count() == 2 {
            // figure out which survived
            let s0 = space.frame_state(r0.start()) != FrameState::Invalid;
            if s0 {
                0
            } else {
                1
            }
        } else {
            panic!("expected 2 resident")
        };
        // Touch the survivor: faults back to accessible.
        let addr = if survivor == 0 { r0.start() } else { r1.start() };
        // After eviction sweep it is protected; direct read faults — but
        // pool pages at reserved ranges have no handler, so re-protect via
        // fault_in (the segment layer's handler does this in real use).
        pool.fault_in(page(survivor), addr, Protect::Read).unwrap();
        assert_eq!(space.frame_state(addr), FrameState::Accessible);
        assert_eq!(pool.stats().hits.get(), 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (space, io, pool) = setup(1);
        let r0 = space.reserve(PS, None);
        let r1 = space.reserve(PS, None);
        pool.fault_in(page(0), r0.start(), Protect::ReadWrite).unwrap();
        space.write_u32(r0.start(), 0xDEADBEEF).unwrap();
        pool.fault_in(page(1), r1.start(), Protect::Read).unwrap();
        assert_eq!(io.write_backs(), 1);
        assert_eq!(
            u32::from_le_bytes(io.get(page(0), PS as usize)[0..4].try_into().unwrap()),
            0xDEADBEEF
        );
    }

    #[test]
    fn pinned_pages_survive_eviction() {
        let (space, io, pool) = setup(1);
        let _ = io;
        let r0 = space.reserve(PS, None);
        let r1 = space.reserve(PS, None);
        pool.fault_in(page(0), r0.start(), Protect::Read).unwrap();
        pool.pin(page(0), true);
        assert_eq!(
            pool.fault_in(page(1), r1.start(), Protect::Read).unwrap_err(),
            PoolError::PoolExhausted
        );
        pool.pin(page(0), false);
        pool.fault_in(page(1), r1.start(), Protect::Read).unwrap();
    }

    #[test]
    fn flush_dirty_keeps_pages_resident() {
        let (space, io, pool) = setup(2);
        let r0 = space.reserve(PS, None);
        pool.fault_in(page(0), r0.start(), Protect::ReadWrite).unwrap();
        space.write_u32(r0.start(), 77).unwrap();
        pool.flush_dirty().unwrap();
        assert_eq!(io.write_backs(), 1);
        assert_eq!(pool.resident_count(), 1);
        // Second flush: nothing dirty.
        pool.flush_dirty().unwrap();
        assert_eq!(io.write_backs(), 1);
    }

    #[test]
    fn clear_empties_pool() {
        let (space, io, pool) = setup(4);
        let _ = io;
        for p in 0..3 {
            let r = space.reserve(PS, None);
            pool.fault_in(page(p), r.start(), Protect::Read).unwrap();
        }
        pool.clear().unwrap();
        assert_eq!(pool.resident_count(), 0);
    }

    #[test]
    fn remap_at_other_address_rejected() {
        let (space, io, pool) = setup(4);
        let _ = io;
        let r0 = space.reserve(PS, None);
        let r1 = space.reserve(PS, None);
        pool.fault_in(page(0), r0.start(), Protect::Read).unwrap();
        assert!(matches!(
            pool.fault_in(page(0), r1.start(), Protect::Read),
            Err(PoolError::AlreadyMapped { .. })
        ));
        // After explicit eviction the page can move (data segment
        // relocation, §2.1).
        pool.evict(page(0)).unwrap();
        pool.fault_in(page(0), r1.start(), Protect::Read).unwrap();
    }
}
