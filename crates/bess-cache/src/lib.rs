//! # bess-cache — buffer management for BeSS
//!
//! Implements §4 of "A High Performance Configurable Storage Manager"
//! (Biliris & Panagos, ICDE 1995):
//!
//! * [`SharedCache`] — the client cache established by the node server
//!   (Figure 3): a contiguous pool of page-sized frames plus the **shared
//!   mapping table (SMT)** that gives every database page a sticky virtual
//!   frame, creating the illusion of a shared virtual address space (SVMA)
//!   whose offsets ([`Svma`]) are valid pointers in every process;
//! * [`SharedView`] — one process's PVMA attachment (Figure 4): faults map
//!   PVMA frames onto cache slots, and the **first-level clock** demotes
//!   accessible frames to protected and invalidates protected ones,
//!   releasing the per-slot access counters that drive the **second-level
//!   clock**'s replacement decisions (§4.2);
//! * [`PrivatePool`] — the copy-on-access private buffer pool (§4.1.1)
//!   with the single-process frame-state clock.
//!
//! The frame-state clock exists because "the cache manager does not have
//! enough information indicating which slots have been accessed recently
//! due to the memory mapping architecture" (§4.2) — there are no reference
//! bits, so protection state stands in for them.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod areaset;
mod page;
mod private;
mod shared;
mod view;

pub use areaset::AreaSet;
pub use page::{DbPage, MapIo, PageIo};
pub use private::{PoolError, PoolStats, PrivatePool};
pub use shared::{CacheError, Evicted, GetOutcome, SharedCache, SharedCacheStats};
pub use view::{SharedView, Svma, ViewStats};
