//! Database page identity and cache I/O traits.

use std::fmt;

/// Identifies a database page globally: `(storage area, absolute page)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DbPage {
    /// Storage area number.
    pub area: u32,
    /// Absolute page within the area.
    pub page: u64,
}

impl fmt::Display for DbPage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.area, self.page)
    }
}

/// Where cache misses are filled from and dirty evictions written to — a
/// local storage area, or (on a client) the node-server / server connection.
pub trait PageIo: Send + Sync {
    /// Fills `buf` (one page) with the content of `page`. May fail — e.g.
    /// a remote fetch whose implicit lock was denied by the deadlock
    /// timeout; the failure surfaces as a protection violation at the
    /// faulting access.
    fn load(&self, page: DbPage, buf: &mut [u8]) -> Result<(), String>;

    /// Persists a dirty `page` being evicted. May fail — e.g. an I/O error
    /// on the backing area; the caller decides whether to surface it or
    /// rely on the WAL to repair the page at recovery.
    fn write_back(&self, page: DbPage, data: &[u8]) -> Result<(), String>;

    /// Loads several pages in one call, returning each page's content (one
    /// `page_size`-byte buffer) or error in request order. Failures are
    /// per-page. The default loops over [`PageIo::load`]; backends sitting
    /// on a batched device (e.g. `AreaSet` over
    /// `StorageArea::read_pages_batch`) override it to submit the whole
    /// batch as one scatter-gather read.
    fn load_batch(&self, pages: &[DbPage], page_size: usize) -> Vec<Result<Vec<u8>, String>> {
        pages
            .iter()
            .map(|&p| {
                let mut buf = vec![0u8; page_size];
                self.load(p, &mut buf).map(|()| buf)
            })
            .collect()
    }
}

/// A [`PageIo`] over an in-memory map, for tests and benchmarks.
#[derive(Debug)]
pub struct MapIo {
    pages: bess_lock::OrderedMutex<std::collections::HashMap<DbPage, Vec<u8>>>,
    // LINT: allow(raw-counter) — test-backing-store bookkeeping (MapIo), not a product metric
    loads: std::sync::atomic::AtomicU64,
    // LINT: allow(raw-counter) — test-backing-store bookkeeping (MapIo), not a product metric
    write_backs: std::sync::atomic::AtomicU64,
}

impl Default for MapIo {
    fn default() -> Self {
        MapIo {
            pages: bess_lock::OrderedMutex::new(
                bess_lock::Rank::TestPageIo,
                "cache.mapio",
                std::collections::HashMap::new(),
            ),
            loads: std::sync::atomic::AtomicU64::new(0),
            write_backs: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl MapIo {
    /// Creates an empty backing map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a page's content.
    pub fn put(&self, page: DbPage, data: Vec<u8>) {
        self.pages.lock().insert(page, data);
    }

    /// Reads a page's content (zeroes if never written).
    pub fn get(&self, page: DbPage, len: usize) -> Vec<u8> {
        self.pages
            .lock()
            .get(&page)
            .cloned()
            .unwrap_or_else(|| vec![0; len])
    }

    /// How many loads were served.
    pub fn loads(&self) -> u64 {
        self.loads.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// How many write-backs were received.
    pub fn write_backs(&self) -> u64 {
        self.write_backs.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl PageIo for MapIo {
    fn load(&self, page: DbPage, buf: &mut [u8]) -> Result<(), String> {
        self.loads
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let pages = self.pages.lock();
        match pages.get(&page) {
            Some(data) => buf.copy_from_slice(&data[..buf.len()]),
            None => buf.fill(0),
        }
        Ok(())
    }

    fn write_back(&self, page: DbPage, data: &[u8]) -> Result<(), String> {
        self.write_backs
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.pages.lock().insert(page, data.to_vec());
        Ok(())
    }
}
