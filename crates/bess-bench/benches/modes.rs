//! E7 — operation modes (§4.1): copy-on-access vs shared-memory
//! transaction cost as transaction length varies.
//!
//! "In-place access offers the potential for high performance, especially
//! for short transactions, since it avoids interprocess communication and
//! the cost of copying data to a private space and back to the cache."
//!
//! Expected shape: shared memory wins clearly at 1-page transactions;
//! the relative gap narrows as per-transaction work grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use std::time::Duration;

use bess_bench::World;
use bess_cache::DbPage;
use bess_core::ShmSession;
use bess_lock::LockMode;
use bess_net::NodeId;
use bess_server::{ClientConfig, ClientConn, PageUpdate};

fn bench_modes(c: &mut Criterion) {
    // A small wire latency makes the IPC cost visible, as on the paper's
    // LAN.
    let world = World::new(&[&[0]], Duration::from_micros(30));
    let pages: Vec<DbPage> = (0..32)
        .map(|_| {
            let seg = world.area_sets[0].get(0).unwrap().alloc(1).unwrap();
            DbPage {
                area: 0,
                page: seg.start_page,
            }
        })
        .collect();
    let ns = world.node_server(50);

    let mut group = c.benchmark_group("E7_modes");
    group.sample_size(20);

    for &txn_pages in &[1usize, 4, 16] {
        // ---- shared memory: in-place, no IPC ----------------------------
        let shm = ShmSession::attach(ns.handle());
        // Warm the cache.
        {
            shm.begin().unwrap();
            let mut b = [0u8; 1];
            for p in &pages {
                shm.read(*p, 0, &mut b).unwrap();
            }
            shm.commit().unwrap();
        }
        group.bench_with_input(
            BenchmarkId::new("shared_memory", txn_pages),
            &txn_pages,
            |b, &n| {
                let mut round = 0usize;
                b.iter(|| {
                    shm.begin().unwrap();
                    let mut buf = [0u8; 8];
                    for k in 0..n {
                        let p = pages[(round + k) % pages.len()];
                        shm.read(p, 0, &mut buf).unwrap();
                    }
                    // One write per txn.
                    let p = pages[round % pages.len()];
                    shm.write(p, 8, &(round as u64).to_le_bytes()).unwrap();
                    shm.commit().unwrap();
                    round += 1;
                })
            },
        );

        // ---- copy on access: IPC to the node server ---------------------
        let mut cfg = ClientConfig::new(NodeId(60), ns.node());
        cfg.gateway = Some(ns.node());
        let conn: Arc<ClientConn> =
            ClientConn::connect(&world.net, Arc::clone(&world.dir), cfg);
        group.bench_with_input(
            BenchmarkId::new("copy_on_access", txn_pages),
            &txn_pages,
            |b, &n| {
                let mut round = 0usize;
                b.iter(|| {
                    conn.begin().unwrap();
                    let mut first = None;
                    for k in 0..n {
                        let p = pages[(round + k) % pages.len()];
                        let data = conn.fetch_page(p, LockMode::S).unwrap();
                        if k == 0 {
                            first = Some((p, data));
                        }
                    }
                    let (p, data) = first.unwrap();
                    conn.lock(
                        bess_lock::LockName::Page {
                            area: p.area,
                            page: p.page,
                        },
                        LockMode::X,
                    )
                    .unwrap();
                    conn.commit(vec![PageUpdate {
                        page: p,
                        offset: 8,
                        before: data[8..16].to_vec(),
                        after: (round as u64).to_le_bytes().to_vec(),
                    }])
                    .unwrap();
                    round += 1;
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
