//! E11 — large objects (§2.1, after Biliris ICDE'92/SIGMOD'92): byte-range
//! operations on the segment tree vs a flat rewrite-everything baseline.
//!
//! Expected shape: tree insert/delete cost grows ~logarithmically (plus one
//! leaf's worth of shifting) while the flat baseline degrades linearly with
//! object size; reads of small ranges are cheap on both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use bess_largeobj::{seg_read, seg_write, LargeObject, LoConfig};
use bess_storage::{AreaConfig, AreaId, DiskSpace, StorageArea};

fn area() -> Arc<StorageArea> {
    let cfg = AreaConfig {
        extent_pages_log2: 12, // 16 MiB extents: the flat baseline needs one 8 MiB segment
        ..AreaConfig::default()
    };
    Arc::new(StorageArea::create_mem(AreaId(0), cfg).unwrap())
}

/// The baseline: an object stored as one contiguous disk segment; every
/// insert rewrites the tail (or the whole object on growth).
struct FlatObject {
    area: Arc<StorageArea>,
    seg: bess_storage::DiskPtr,
    len: u64,
}

impl FlatObject {
    fn create(area: Arc<StorageArea>, data: &[u8]) -> FlatObject {
        let pages = (data.len() as u64).div_ceil(area.page_size() as u64).max(1) as u32;
        // Over-allocate 2x so inserts do not constantly reallocate.
        let seg = bess_storage::StorageArea::alloc(&area, pages * 2).unwrap();
        seg_write(&*area, seg, 0, data).unwrap();
        FlatObject {
            area,
            seg,
            len: data.len() as u64,
        }
    }

    fn insert(&mut self, offset: u64, data: &[u8]) {
        // Shift the tail right by reading and rewriting it — O(len).
        let tail_len = self.len - offset;
        let mut tail = vec![0u8; tail_len as usize];
        seg_read(&*self.area, self.seg, offset, &mut tail).unwrap();
        seg_write(&*self.area, self.seg, offset + data.len() as u64, &tail).unwrap();
        seg_write(&*self.area, self.seg, offset, data).unwrap();
        self.len += data.len() as u64;
    }

    fn read(&self, offset: u64, buf: &mut [u8]) {
        seg_read(&*self.area, self.seg, offset, buf).unwrap();
    }
}

fn bench_largeobj(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_largeobj");
    group.sample_size(20);

    for &size in &[64 * 1024u64, 1024 * 1024, 4 * 1024 * 1024] {
        let payload = vec![7u8; size as usize];

        // ---- append throughput (tree) -----------------------------------
        group.throughput(Throughput::Bytes(size));
        group.bench_with_input(BenchmarkId::new("tree_append", size), &size, |b, _| {
            b.iter(|| {
                let a = area();
                let mut lo = LargeObject::create_in(
                    Arc::clone(&a) as Arc<dyn DiskSpace>,
                    0,
                    LoConfig::with_size_hint(size, a.page_size()),
                );
                lo.append(&payload).unwrap();
                black_box(lo.len())
            })
        });

        // ---- mid-object insert: tree vs flat ----------------------------
        // Default (small-leaf) config: size hints favour appends/scans,
        // small leaves bound the in-leaf shift an insert pays.
        let a = area();
        let mut tree = LargeObject::create_in(
            Arc::clone(&a) as Arc<dyn DiskSpace>,
            0,
            LoConfig::default(),
        );
        tree.append(&payload).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("tree_insert_mid", size), &size, |b, _| {
            b.iter(|| {
                // Keep the object near its nominal size so iterations do
                // not compound (the flat baseline resets likewise).
                if tree.len() > size + 4096 {
                    tree.truncate(size).unwrap();
                }
                tree.insert(size / 2, b"splice!").unwrap();
            })
        });

        let a2 = area();
        let mut flat = FlatObject::create(Arc::clone(&a2), &payload);
        group.bench_with_input(BenchmarkId::new("flat_insert_mid", size), &size, |b, _| {
            b.iter(|| {
                // Keep the flat object from growing past its segment.
                if flat.len + 8 > size * 2 - 64 {
                    flat.len = size;
                }
                flat.insert(size / 2, b"splice!");
            })
        });

        // ---- small random reads ------------------------------------------
        let mut buf = [0u8; 256];
        group.bench_with_input(BenchmarkId::new("tree_read_256b", size), &size, |b, _| {
            let mut at = 0u64;
            b.iter(|| {
                at = (at + 4093) % (size - 256);
                tree.read(at, &mut buf).unwrap();
                black_box(buf[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_read_256b", size), &size, |b, _| {
            let mut at = 0u64;
            b.iter(|| {
                at = (at + 4093) % (size - 256);
                flat.read(at, &mut buf);
                black_box(buf[0])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_largeobj);
criterion_main!(benches);
