//! E1 — pointer dereference: swizzled `ref<T>` vs OID-based
//! `global_ref<T>` (the EOS baseline the paper compares against in §5:
//! "pointer dereference in EOS is somewhat slow because inter-object
//! references are OIDs. BeSS offers a fast pointer dereference mechanism by
//! using virtual memory pointers").
//!
//! Expected shape: warm `Ref` dereference is several times cheaper than
//! OID resolution, and both are dwarfed by a cold (three-wave) first touch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bess_bench::segment_env;
use bess_segment::{ProtectionPolicy, TYPE_BYTES};

fn bench_deref(c: &mut Criterion) {
    let (_areas, _types, _catalog, mgr) = segment_env(ProtectionPolicy::Protected, 4096);
    let seg = mgr.create_segment(0, 1024, 64).unwrap();
    let objs: Vec<_> = (0..512)
        .map(|i| {
            let o = mgr.create_object(seg, TYPE_BYTES, 64).unwrap();
            mgr.write_object(o.addr, 0, &(i as u64).to_le_bytes()).unwrap();
            o
        })
        .collect();

    let mut group = c.benchmark_group("E1_deref");

    // The fast path: a swizzled reference is one protected load of the
    // slot plus one of the data.
    let mut i = 0;
    group.bench_function("ref_swizzled", |b| {
        b.iter(|| {
            let o = &objs[i % objs.len()];
            i += 1;
            black_box(mgr.deref(black_box(o.addr)).unwrap())
        })
    });

    // The slow path the paper contrasts: resolve the 96-bit OID through
    // segment + slot + uniquifier validation, then dereference.
    let mut i = 0;
    group.bench_function("global_ref_oid", |b| {
        b.iter(|| {
            let o = &objs[i % objs.len()];
            i += 1;
            let addr = mgr.resolve_oid(black_box(o.oid)).unwrap();
            black_box(mgr.deref(addr).unwrap())
        })
    });

    // Full object read through each path.
    let mut i = 0;
    group.bench_function("read_via_ref", |b| {
        b.iter(|| {
            let o = &objs[i % objs.len()];
            i += 1;
            black_box(mgr.read_object(o.addr).unwrap())
        })
    });
    let mut i = 0;
    group.bench_function("read_via_oid", |b| {
        b.iter(|| {
            let o = &objs[i % objs.len()];
            i += 1;
            let addr = mgr.resolve_oid(o.oid).unwrap();
            black_box(mgr.read_object(addr).unwrap())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_deref);
criterion_main!(benches);
