//! E13 — hook dispatch overhead (§2.4): firing a primitive event with
//! 0/1/4 registered hooks, against a direct (hard-coded) counter as the
//! baseline the paper's "impractical solution" represents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bess_core::{Event, EventKind, HookRegistry};

fn bench_hooks(c: &mut Criterion) {
    let mut group = c.benchmark_group("E13_hooks");

    // Baseline: measurement code compiled into the application.
    let counter = AtomicU64::new(0);
    group.bench_function("direct_counter", |b| {
        b.iter(|| black_box(counter.fetch_add(1, Ordering::Relaxed)))
    });

    for &n in &[0usize, 1, 4] {
        let hooks = HookRegistry::new();
        let shared = Arc::new(AtomicU64::new(0));
        for _ in 0..n {
            let s = Arc::clone(&shared);
            hooks.register(
                EventKind::TxnCommit,
                Arc::new(move |_| {
                    s.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        let event = Event::default();
        group.bench_with_input(BenchmarkId::new("fire", n), &n, |b, _| {
            b.iter(|| hooks.fire(EventKind::TxnCommit, black_box(&event)))
        });
        // The `wants` fast path that guards event construction.
        group.bench_with_input(BenchmarkId::new("wants", n), &n, |b, _| {
            b.iter(|| black_box(hooks.wants(EventKind::TxnCommit)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hooks);
criterion_main!(benches);
