//! E6 — update detection: hardware (fault-based, §2.3) vs the software
//! baseline ("other storage systems (e.g., Exodus and early implementations
//! of EOS) follow a software approach where the programmer explicitly
//! indicates dirty data via a function call").
//!
//! Expected shape: the hardware approach pays one trap per page per
//! transaction and nothing afterwards; the software approach pays a call
//! per *update*. Few large writes per page favour hardware; the crossover
//! appears when updates per page are very few.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bess_bench::segment_env;
use bess_cache::DbPage;
use bess_segment::{ProtectionPolicy, WriteObserver, TYPE_BYTES};

struct CountingObserver(AtomicU64);

impl WriteObserver for CountingObserver {
    fn on_first_write(&self, _page: DbPage) -> Result<(), String> {
        // Stands in for "record the update, perform locking" (§2.3).
        self.0.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

fn bench_update_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_update_detection");

    for &writes_per_page in &[1u32, 4, 16, 64] {
        // ---- hardware: first write traps, later writes are free --------
        let (_a, _t, _cat, mgr) = segment_env(ProtectionPolicy::Protected, 4096);
        let obs = Arc::new(CountingObserver(AtomicU64::new(0)));
        mgr.set_write_observer(Some(Arc::clone(&obs) as Arc<dyn WriteObserver>));
        let seg = mgr.create_segment(0, 256, 64).unwrap();
        // One object per page-ish (4000-byte objects).
        let objs: Vec<_> = (0..32)
            .map(|_| mgr.create_object(seg, TYPE_BYTES, 4000).unwrap())
            .collect();
        group.bench_with_input(
            BenchmarkId::new("hardware_trap", writes_per_page),
            &writes_per_page,
            |b, &wpp| {
                b.iter(|| {
                    for o in &objs {
                        for k in 0..wpp {
                            mgr.write_object(o.addr, k * 8, &u64::from(k).to_le_bytes())
                                .unwrap();
                        }
                    }
                })
            },
        );

        // ---- software: an explicit "mark dirty" call per update --------
        let (_a2, _t2, _cat2, mgr2) = segment_env(ProtectionPolicy::Unprotected, 4096);
        let seg2 = mgr2.create_segment(0, 256, 64).unwrap();
        let objs2: Vec<_> = (0..32)
            .map(|_| mgr2.create_object(seg2, TYPE_BYTES, 4000).unwrap())
            .collect();
        let dirty_calls = AtomicU64::new(0);
        group.bench_with_input(
            BenchmarkId::new("software_explicit", writes_per_page),
            &writes_per_page,
            |b, &wpp| {
                b.iter(|| {
                    for o in &objs2 {
                        for k in 0..wpp {
                            // The Exodus-style discipline: tell the system
                            // before every update. Forgetting this call is
                            // the bug class §2.3 warns about.
                            black_box(dirty_calls.fetch_add(1, Ordering::Relaxed));
                            mgr2.write_object(o.addr, k * 8, &u64::from(k).to_le_bytes())
                                .unwrap();
                        }
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_update_detection);
criterion_main!(benches);
