//! E14 — ARIES restart recovery (§3): analysis + redo + undo time as the
//! log grows, with and without a checkpoint, and with loser transactions
//! to undo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bess_wal::{recover, take_checkpoint, LogBody, LogManager, LogPageId, Lsn, MemTarget};

/// Writes `txns` transactions of `updates_per_txn` updates each;
/// `loser_every` makes every n-th transaction a loser (no commit).
fn build_log(txns: u64, updates_per_txn: u64, loser_every: u64, checkpoint_at: Option<u64>) -> LogManager {
    let log = LogManager::create_mem();
    for t in 1..=txns {
        let mut prev = log.append(t, Lsn::NULL, LogBody::Begin);
        for u in 0..updates_per_txn {
            prev = log.append(
                t,
                prev,
                LogBody::Update {
                    page: LogPageId {
                        area: 0,
                        page: (t * 17 + u) % 512,
                    },
                    offset: ((u * 64) % 4000) as u32,
                    before: vec![0u8; 32],
                    after: vec![(t % 251) as u8; 32],
                },
            );
        }
        let is_loser = loser_every != 0 && t % loser_every == 0;
        if !is_loser {
            let commit = log.append(t, prev, LogBody::Commit);
            log.append(t, commit, LogBody::End);
        }
        if Some(t) == checkpoint_at {
            // All earlier pages pretend-flushed; active table empty-ish.
            take_checkpoint(&log, vec![], vec![]).unwrap();
        }
    }
    log.flush_all().unwrap();
    log
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("E14_recovery");
    group.sample_size(10);

    // Restart time grows with log length (no checkpoint).
    for &txns in &[100u64, 1000, 4000] {
        let log = build_log(txns, 8, 0, None);
        group.bench_with_input(BenchmarkId::new("no_checkpoint", txns), &txns, |b, _| {
            b.iter(|| {
                let crashed = log.simulate_crash().unwrap();
                let mut disk = MemTarget::default();
                black_box(recover(&crashed, &mut disk).unwrap())
            })
        });
    }

    // A checkpoint late in the log collapses the analysis/redo work.
    for &txns in &[1000u64, 4000] {
        let log = build_log(txns, 8, 0, Some(txns - 50));
        group.bench_with_input(
            BenchmarkId::new("late_checkpoint", txns),
            &txns,
            |b, _| {
                b.iter(|| {
                    let crashed = log.simulate_crash().unwrap();
                    let mut disk = MemTarget::default();
                    black_box(recover(&crashed, &mut disk).unwrap())
                })
            },
        );
    }

    // Losers add an undo pass (CLR writing).
    for &loser_every in &[0u64, 4, 2] {
        let log = build_log(1000, 8, loser_every, None);
        group.bench_with_input(
            BenchmarkId::new("with_losers_every", loser_every),
            &loser_every,
            |b, _| {
                b.iter(|| {
                    let crashed = log.simulate_crash().unwrap();
                    let mut disk = MemTarget::default();
                    black_box(recover(&crashed, &mut disk).unwrap())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
