//! E12 — the binary buddy disk allocator (§2, after Biliris ICDE'92):
//! allocation/free throughput across block sizes and allocation patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bess_bench::workload::rng;
use bess_storage::{AreaConfig, AreaId, BuddyExtent, StorageArea};
use rand::Rng;

fn bench_buddy(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_buddy");

    // Raw extent: alloc+free pairs at each order.
    for &order in &[0u8, 2, 4, 6] {
        group.bench_with_input(
            BenchmarkId::new("extent_alloc_free", 1u32 << order),
            &order,
            |b, &order| {
                let mut ext = BuddyExtent::new(8);
                b.iter(|| {
                    let off = ext.alloc(order).unwrap();
                    ext.free(black_box(off), order).unwrap();
                })
            },
        );
    }

    // Random mixed sizes with a live set — the steady-state pattern of
    // object-segment allocation.
    group.bench_function("extent_random_mix", |b| {
        let mut ext = BuddyExtent::new(10); // 1024 pages
        let mut live: Vec<(u32, u8)> = Vec::new();
        let mut r = rng(99);
        b.iter(|| {
            if live.len() < 64 && r.gen::<bool>() {
                let order = r.gen_range(0u8..5);
                if let Some(off) = ext.alloc(order) {
                    live.push((off, order));
                }
            } else if let Some(i) = (!live.is_empty()).then(|| r.gen_range(0..live.len())) {
                let (off, order) = live.swap_remove(i);
                ext.free(off, order).unwrap();
            }
        })
    });

    // Through the full storage area (extent metadata persisted per
    // mutation).
    group.bench_function("area_alloc_free_4p", |b| {
        let area = StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap();
        b.iter(|| {
            let seg = area.alloc(4).unwrap();
            area.free(black_box(seg)).unwrap();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_buddy);
criterion_main!(benches);
