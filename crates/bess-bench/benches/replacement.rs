//! E8 — cache replacement (§4.2): timing of the frame-state clock's access
//! paths under a capacity-constrained pool. (Hit-rate comparisons against
//! LRU/FIFO across workloads are in `cargo run -p bess-bench --bin
//! report`.)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use bess_bench::workload::{rng, Zipf};
use bess_cache::{DbPage, MapIo, PageIo, PrivatePool};
use bess_vm::{AddressSpace, Protect, VRange};

fn bench_replacement(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_replacement");

    // A pool of 256 frames over 1024 pages of backing store.
    let space = Arc::new(AddressSpace::new());
    let io = Arc::new(MapIo::new());
    let pool = PrivatePool::new(Arc::clone(&space), Arc::clone(&io) as Arc<dyn PageIo>, 256);
    let ranges: Vec<VRange> = (0..1024).map(|_| space.reserve(4096, None)).collect();
    let page = |i: usize| DbPage {
        area: 0,
        page: i as u64,
    };

    // Warm-hit path: the page is resident and accessible.
    pool.fault_in(page(0), ranges[0].start(), Protect::Read).unwrap();
    group.bench_function("resident_hit", |b| {
        b.iter(|| {
            black_box(
                pool.fault_in(page(0), ranges[0].start(), Protect::Read)
                    .unwrap(),
            )
        })
    });

    // Zipf access over 4x the capacity: a mix of hits, re-protections and
    // clock evictions — the steady state of §4.2.
    let zipf = Zipf::new(1024, 0.99);
    let mut r = rng(1234);
    group.bench_function("zipf_steady_state", |b| {
        b.iter(|| {
            let i = zipf.sample(&mut r);
            black_box(
                pool.fault_in(page(i), ranges[i].start(), Protect::Read)
                    .unwrap(),
            )
        })
    });

    // Worst case: a pure scan, every access evicts.
    let mut at = 0usize;
    group.bench_function("scan_all_misses", |b| {
        b.iter(|| {
            at = (at + 1) % 1024;
            black_box(
                pool.fault_in(page(at), ranges[at].start(), Protect::Read)
                    .unwrap(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_replacement);
criterion_main!(benches);
