//! Crash-leg invariants (§E22 satellite): the harness's mid-run
//! crash+recovery scenario must uphold the same durable-atomicity oracle
//! as `tests/crash_matrix.rs` — an acknowledged commit is never lost, the
//! recovered image matches what was acked, and the whole leg is
//! deterministic under a fixed seed.

use bess_bench::scenario::{run_crash_leg, run_one, Profile, ScenarioCfg};

/// Never ack a lost commit: every `(page, marker)` the client saw
/// acknowledged before the crash must read back verbatim after recovery,
/// and the leg's own `recovery.lost_acks` check must agree.
#[test]
fn no_acked_commit_is_lost_across_the_crash() {
    let cfg = ScenarioCfg::new(Profile::Smoke);
    let leg = run_crash_leg(&cfg);
    assert!(!leg.acked.is_empty(), "the leg must commit work before crashing");
    assert_eq!(
        leg.acked, leg.recovered,
        "recovered image diverges from the acked oracle"
    );
    assert_eq!(leg.in_doubt, 0, "single-server legs cannot leave in-doubt txns");
    let lost = leg
        .result
        .checks
        .iter()
        .find(|c| c.metric == "recovery.lost_acks")
        .expect("the leg must declare the lost-acks check");
    assert!(lost.pass, "lost-acks check failed: {lost:?}");
    assert_eq!(lost.measured, 0);
}

/// The deliberate dropped commit *reply* mid-phase-A must be absorbed by
/// retry + server-side dedup, not surface as a lost or doubled commit:
/// every scheduled transaction ends up acked exactly once.
#[test]
fn dropped_commit_reply_is_absorbed_by_retry() {
    let cfg = ScenarioCfg::new(Profile::Smoke);
    let leg = run_crash_leg(&cfg);
    let acked = leg
        .result
        .checks
        .iter()
        .find(|c| c.metric == "client.commits.acked")
        .expect("the leg must declare the acked-count check");
    assert!(acked.pass, "some scheduled commit never got acked: {acked:?}");
    // Markers are unique per txn; equality with the oracle read-back above
    // plus a full ack count means exactly-once effects.
    let mut pages: Vec<u64> = leg.acked.iter().map(|&(p, _)| p).collect();
    pages.sort_unstable();
    pages.dedup();
    assert_eq!(pages.len(), leg.acked.len(), "a page was acked twice");
}

/// Two runs with the same seed produce identical schedules (digest) and
/// identical verdicts — the property the CI gate stands on.
#[test]
fn same_seed_same_digest_and_verdicts() {
    let cfg = ScenarioCfg { profile: Profile::Smoke, seed: 1234 };
    let a = run_crash_leg(&cfg);
    let b = run_crash_leg(&cfg);
    assert_eq!(a.result.digest, b.result.digest);
    assert_eq!(a.acked, b.acked);
    let verdicts = |r: &bess_bench::scenario::ScenarioResult| -> Vec<(String, bool)> {
        r.checks.iter().map(|c| (format!("{}.{}", c.metric, c.quantity), c.pass)).collect()
    };
    assert_eq!(verdicts(&a.result), verdicts(&b.result));

    // A different seed reshuffles the schedule (digest) but must not
    // change the invariant verdicts.
    let c = run_crash_leg(&ScenarioCfg { profile: Profile::Smoke, seed: 99 });
    assert_ne!(a.result.digest, c.result.digest);
    assert!(c.result.checks.iter().all(|ch| ch.pass), "{:?}", c.result.checks);
}

/// The scenario as run by the library entry point (what `report.rs` and
/// the `scenarios` binary call) carries the same guarantees.
#[test]
fn crash_scenario_passes_through_run_one() {
    let cfg = ScenarioCfg::new(Profile::Smoke);
    let r = run_one("crash_recovery", &cfg).unwrap();
    assert_eq!(r.name, "crash_recovery");
    assert!(r.passed(), "verdict fail: {:?}", r.checks);
    assert!(r.ops > 0);
}
