//! The production workload harness (§E22): a scenario-diverse load driver
//! with SLO regression gates.
//!
//! Each scenario in [`run_all`] drives the real `bess-server` client–server
//! stack — many simulated client machines multiplexed over a pool of worker
//! threads — through one access pattern the BeSS paper's deployment story
//! implies: zipf-skewed point reads/writes, range scans through a node
//! server's shared cache, 2PC bulk loads, large-object aging against the
//! buddy allocator, node-server cold start, and a mid-run crash with
//! recovery. Every scenario:
//!
//! - is **deterministic**: schedules are generated up front from
//!   [`crate::workload::rng`] seeded by [`ScenarioCfg::seed`], and a FNV
//!   [`Digest`] of the schedule is reported so two runs with the same seed
//!   can be compared byte-for-byte (thread interleaving never changes the
//!   digest, only latencies);
//! - declares **SLOs** ([`crate::slo`]) against the `bess-obs` histograms
//!   the run produced (`client.commit.rtt.ns`, `cache.shared.lookup.ns`,
//!   `wal.flush.ns`, scenario-owned timers) plus scalar invariants
//!   (zero lost acks, zero post-drain fragmentation);
//! - reports a [`ScenarioResult`] that `report.rs` renders into the `§E22`
//!   block of `BENCH_report.json` and the `scenarios` binary turns into a
//!   process exit code for CI gating.
//!
//! Latency ceilings are calibrated from a healthy in-memory build with an
//! order of magnitude of headroom (see `EXPERIMENTS.md` §E22): they catch
//! a lost fast path, not scheduler jitter.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bess_cache::{AreaSet, DbPage};
use bess_lock::LockMode;
use bess_net::{NetFaultKind, NetFaultPlan, Network, NodeId};
use bess_obs::{json_string, LatencyHistogram, Registry, RegistrySnapshot};
use bess_server::{
    register_areas, BessServer, ClientConfig, ClientConn, Directory, Msg, PageUpdate,
    ServerConfig,
};
use bess_storage::{AreaConfig, AreaId, FaultDisk, FaultPlan, StorageArea, PAGE_HDR};
use bess_wal::LogManager;
use rand::Rng;

use crate::slo::{check_histogram, Slo, SloCheck};
use crate::workload::{rng, Zipf};
use crate::{make_areas, World};

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// How big a run is: `Smoke` finishes in seconds and gates CI; `Full` is
/// the paper-scale run (thousands of simulated clients, millions of object
/// slots).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// CI-sized: a few worker threads, tens of thousands of objects.
    Smoke,
    /// Paper-sized: 16 worker threads multiplexing 2048 simulated clients
    /// over two million object slots.
    Full,
}

impl Profile {
    /// Parses `"smoke"` / `"full"`.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "smoke" => Some(Profile::Smoke),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }

    /// The name as it appears in reports.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Smoke => "smoke",
            Profile::Full => "full",
        }
    }
}

/// Harness configuration: the profile plus the RNG seed every schedule
/// derives from.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioCfg {
    /// Run size.
    pub profile: Profile,
    /// Master seed; same seed → same schedules, digests, and verdicts.
    pub seed: u64,
}

impl ScenarioCfg {
    /// A config with the default CI seed.
    pub fn new(profile: Profile) -> ScenarioCfg {
        ScenarioCfg { profile, seed: 42 }
    }
}

/// Per-profile knob block. Private: scenarios read it, callers pick a
/// [`Profile`].
struct Scale {
    /// Real connections (worker threads) per scenario.
    conns: usize,
    /// Simulated client machines multiplexed over the connections.
    clients: usize,
    /// Object slots in the point-op farm (64 B each).
    objects: usize,
    /// Transactions per simulated client.
    txns_per_client: usize,
    /// Range scans issued in total.
    scan_txns: usize,
    /// Pages per range scan.
    scan_run: usize,
    /// Bulk-load batches (each one distributed transaction).
    bulk_batches: usize,
    /// Pages written per bulk batch, split across two owners.
    bulk_batch_pages: usize,
    /// Large-object aging cycles.
    aging_cycles: usize,
    /// Live-object ceiling during aging.
    aging_pool: usize,
    /// Pages preloaded for the cold-start scenario.
    cold_pages: usize,
    /// Transactions in the crash+recovery leg (half before the crash).
    crash_txns: usize,
    /// Object slots in the scrub-under-load point-op farm.
    scrub_objects: usize,
    /// Cold pages bit-rotted while the scrub scenario's load runs.
    scrub_rots: usize,
}

impl Scale {
    fn of(profile: Profile) -> Scale {
        match profile {
            Profile::Smoke => Scale {
                conns: 4,
                clients: 64,
                objects: 1 << 14,
                txns_per_client: 4,
                scan_txns: 32,
                scan_run: 32,
                bulk_batches: 16,
                bulk_batch_pages: 8,
                aging_cycles: 240,
                aging_pool: 48,
                cold_pages: 96,
                crash_txns: 24,
                scrub_objects: 1 << 12,
                scrub_rots: 24,
            },
            Profile::Full => Scale {
                conns: 16,
                clients: 2048,
                objects: 1 << 21,
                txns_per_client: 16,
                scan_txns: 512,
                scan_run: 32,
                bulk_batches: 256,
                bulk_batch_pages: 8,
                aging_cycles: 5000,
                aging_pool: 96,
                cold_pages: 224,
                crash_txns: 400,
                scrub_objects: 1 << 15,
                scrub_rots: 200,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism: schedule digests
// ---------------------------------------------------------------------------

/// FNV-1a over the generated schedule. Two runs with the same seed must
/// produce the same digest; the crash-matrix style determinism test pins
/// this.
#[derive(Clone, Copy, Debug)]
pub struct Digest(u64);

impl Digest {
    /// Fresh digest (FNV offset basis).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one value in.
    pub fn mix(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current digest value.
    pub fn value(self) -> u64 {
        self.0
    }
}

fn salt(name: &str) -> u64 {
    let mut d = Digest::new();
    for b in name.bytes() {
        d.mix(u64::from(b));
    }
    d.value()
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// One scenario's outcome: throughput-side facts plus every SLO verdict.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Scenario name (stable key in §E22).
    pub name: &'static str,
    /// Operations completed (committed work only).
    pub ops: u64,
    /// Wall-clock of the measured phase, in milliseconds.
    pub wall_ms: u64,
    /// Schedule digest (seed-stable).
    pub digest: u64,
    /// Evaluated SLOs, in declaration order.
    pub checks: Vec<SloCheck>,
    /// Fragmentation-over-time curve `(cycle, permille)` — only the aging
    /// scenario fills this.
    pub curve: Vec<(u64, u64)>,
}

impl ScenarioResult {
    /// True when every check passed.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// `"pass"` / `"fail"` for §E22.
    pub fn verdict(&self) -> &'static str {
        if self.passed() {
            "pass"
        } else {
            "fail"
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario-owned metrics
// ---------------------------------------------------------------------------

/// Every histogram the harness itself registers (under the `scenario.`
/// prefix). `tests/obs_golden.rs` pins the qualified names; add here first
/// when a scenario grows a new timer.
pub const SCENARIO_HISTOGRAMS: &[&str] = &[
    "txn.ns",
    "scan.ns",
    "aging.op.ns",
    "cold.fetch.ns",
    "warm.fetch.ns",
    "recovery.ns",
];

fn scenario_hist(reg: &Arc<Registry>, name: &str) -> LatencyHistogram {
    debug_assert!(
        SCENARIO_HISTOGRAMS.contains(&name),
        "unpinned scenario histogram {name}"
    );
    reg.group("scenario").histogram(name)
}

/// Registers every scenario-owned histogram into a fresh registry without
/// running any workload — the golden-name test uses this to pin the
/// namespace.
pub fn register_all_metrics() -> Arc<Registry> {
    let reg = Registry::new();
    for name in SCENARIO_HISTOGRAMS {
        scenario_hist(&reg, name);
    }
    reg
}

// ---------------------------------------------------------------------------
// The object farm
// ---------------------------------------------------------------------------

const SLOT_BYTES: usize = 64;

/// Maps dense object ids onto 64-byte slots of buddy-allocated pages, so
/// the point-op scenarios address "millions of objects" while the wire
/// protocol stays page-granular (§2 of the paper: objects live in pages of
/// storage areas).
pub struct PageFarm {
    area: u32,
    pages: Vec<u64>,
    slots_per_page: usize,
}

impl PageFarm {
    /// Allocates enough pages from `area` to hold `objects` slots.
    pub fn provision(area: &StorageArea, objects: usize) -> PageFarm {
        let slots_per_page = area.page_size() / SLOT_BYTES;
        let need = objects.div_ceil(slots_per_page);
        let mut pages = Vec::with_capacity(need);
        while pages.len() < need {
            let ptr = area.alloc(64).unwrap();
            for p in 0..u64::from(ptr.pages) {
                pages.push(ptr.start_page + p);
            }
        }
        PageFarm {
            area: area.id().0,
            pages,
            slots_per_page,
        }
    }

    /// The page and byte offset of an object slot.
    pub fn locate(&self, obj: usize) -> (DbPage, u32) {
        let page = DbPage {
            area: self.area,
            page: self.pages[obj / self.slots_per_page],
        };
        let offset = (obj % self.slots_per_page) * SLOT_BYTES;
        (page, offset as u32)
    }
}

// ---------------------------------------------------------------------------
// Point-op transactions
// ---------------------------------------------------------------------------

/// One point operation of a scheduled transaction.
type Op = (usize, bool); // (object id, is_write)

/// Runs one transaction: pages are locked in sorted order (deadlock
/// freedom by ordered acquisition), each fetched once with the strongest
/// mode any of its ops needs. Returns ops completed.
fn run_txn(conn: &ClientConn, farm: &PageFarm, ops: &[Op]) -> Result<u64, bess_server::ClientError> {
    conn.begin()?;
    let mut by_page: BTreeMap<(u32, u64), Vec<(u32, bool)>> = BTreeMap::new();
    for &(obj, write) in ops {
        let (page, off) = farm.locate(obj);
        by_page.entry((page.area, page.page)).or_default().push((off, write));
    }
    let mut updates = Vec::new();
    for (&(area, pageno), slot_ops) in &by_page {
        let page = DbPage { area, page: pageno };
        let mode = if slot_ops.iter().any(|&(_, w)| w) {
            LockMode::X
        } else {
            LockMode::S
        };
        let data = conn.fetch_page(page, mode)?;
        for &(off, write) in slot_ops {
            if write {
                let off = off as usize;
                let before = data[off..off + 8].to_vec();
                let mut after = before.clone();
                after[0] = after[0].wrapping_add(1);
                updates.push(PageUpdate {
                    page,
                    offset: off as u32,
                    before,
                    after,
                });
            }
        }
    }
    conn.commit(updates)?;
    Ok(ops.len() as u64)
}

/// Shared shape of the two zipf point-op scenarios.
fn zipf_point(name: &'static str, write_pct: u32, cfg: &ScenarioCfg, scale: &Scale) -> ScenarioResult {
    let world = World::new(&[&[0]], Duration::ZERO);
    let area = world.area_sets[0].get(0).unwrap();
    let farm = PageFarm::provision(&area, scale.objects);
    let zipf = Zipf::new(scale.objects, 0.99);

    // Schedules first, single-threaded: the digest covers every op of
    // every simulated client and cannot depend on thread interleaving.
    let mut digest = Digest::new();
    digest.mix(cfg.seed);
    digest.mix(u64::from(write_pct));
    let mut schedules: Vec<Vec<Vec<Op>>> = Vec::with_capacity(scale.clients);
    for lc in 0..scale.clients {
        let mut r = rng(cfg.seed ^ salt(name) ^ (lc as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut txns = Vec::with_capacity(scale.txns_per_client);
        for _ in 0..scale.txns_per_client {
            let mut ops: Vec<Op> = Vec::with_capacity(4);
            while ops.len() < 4 {
                let obj = zipf.sample(&mut r);
                if ops.iter().any(|&(o, _)| o == obj) {
                    continue; // one lock mode per object per txn
                }
                let write = r.gen_range(0..100) < write_pct;
                digest.mix(obj as u64);
                digest.mix(u64::from(write));
                ops.push((obj, write));
            }
            txns.push(ops);
        }
        schedules.push(txns);
    }

    let reg = Registry::new();
    let txn_ns = scenario_hist(&reg, "txn.ns");
    let world_before = world.metrics().snapshot();
    let started = Instant::now();
    // Each worker owns one real connection and plays the simulated clients
    // `lc ≡ c (mod conns)`, round-robin by transaction index so the
    // clients interleave instead of running back-to-back.
    let per_conn: Vec<(RegistrySnapshot, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..scale.conns)
            .map(|c| {
                let world = &world;
                let schedules = &schedules;
                let farm = &farm;
                let txn_ns = &txn_ns;
                s.spawn(move || {
                    let conn = world.client(1 + c as u32, true);
                    let mut aborts = 0u64;
                    let mut ops_done = 0u64;
                    // Round-robin by txn index, not per-client batches; `t`
                    // indexes a different schedule each inner iteration, so
                    // clippy's iterator rewrite does not apply.
                    #[allow(clippy::needless_range_loop)]
                    for t in 0..scale.txns_per_client {
                        for lc in (c..scale.clients).step_by(scale.conns) {
                            let _timer = txn_ns.start();
                            match run_txn(&conn, farm, &schedules[lc][t]) {
                                Ok(n) => ops_done += n,
                                Err(_) => {
                                    let _ = conn.abort();
                                    aborts += 1;
                                }
                            }
                        }
                    }
                    let snap = conn.metrics().registry().snapshot();
                    conn.disconnect();
                    (snap, aborts, ops_done)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ms = started.elapsed().as_millis() as u64;

    let mut merged = reg.snapshot();
    let mut aborts = 0u64;
    let mut ops = 0u64;
    for (snap, a, o) in &per_conn {
        merged.absorb("", snap);
        aborts += a;
        ops += o;
    }
    merged.absorb("", &world.metrics().snapshot().delta(&world_before));

    let total_txns = (scale.clients * scale.txns_per_client) as u64;
    let mut checks = check_histogram(
        &merged,
        &Slo::p50_p99("client.commit.rtt.ns", 4_194_304, 134_217_728),
    );
    // The txn bound must sit above the 500 ms deadlock timeout: under zipf
    // contention a victim legitimately waits out the whole timeout before
    // aborting, so the tail is lock-timeout-bounded, not commit-bounded.
    checks.extend(check_histogram(&merged, &Slo::p99("scenario.txn.ns", 1_073_741_824)));
    checks.push(SloCheck::at_most("client.aborts", aborts, total_txns / 4));

    ScenarioResult {
        name,
        ops,
        wall_ms,
        digest: digest.value(),
        checks,
        curve: vec![],
    }
}

// ---------------------------------------------------------------------------
// Range scans through a node server
// ---------------------------------------------------------------------------

fn range_scan(cfg: &ScenarioCfg, scale: &Scale) -> ScenarioResult {
    let name = "range_scan";
    let world = World::new(&[&[0]], Duration::ZERO);
    let area = world.area_sets[0].get(0).unwrap();
    // One extent's worth of contiguous segment pages to scan over.
    let mut pages: Vec<u64> = Vec::new();
    while pages.len() < scale.scan_run * 4 {
        let ptr = area.alloc(64).unwrap();
        for p in 0..u64::from(ptr.pages) {
            pages.push(ptr.start_page + p);
        }
    }
    let ns = world.node_server(50);

    let mut digest = Digest::new();
    digest.mix(cfg.seed);
    let mut r = rng(cfg.seed ^ salt(name));
    let starts: Vec<usize> = (0..scale.scan_txns)
        .map(|_| {
            let s = r.gen_range(0..pages.len() - scale.scan_run);
            digest.mix(s as u64);
            s
        })
        .collect();

    let reg = Registry::new();
    let scan_ns = scenario_hist(&reg, "scan.ns");
    let ns_before = ns.metrics().registry().snapshot();
    let started = Instant::now();
    let per_conn: Vec<(RegistrySnapshot, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..scale.conns)
            .map(|c| {
                let world = &world;
                let ns = &ns;
                let pages = &pages;
                let starts = &starts;
                let scan_ns = &scan_ns;
                s.spawn(move || {
                    let mut ccfg = ClientConfig::new(NodeId(60 + c as u32), ns.node());
                    ccfg.caching = true;
                    ccfg.gateway = Some(ns.node());
                    let conn = ClientConn::connect(&world.net, Arc::clone(&world.dir), ccfg);
                    let mut ops = 0u64;
                    for t in (c..starts.len()).step_by(scale.conns) {
                        let _timer = scan_ns.start();
                        conn.begin().unwrap();
                        for p in &pages[starts[t]..starts[t] + scale.scan_run] {
                            conn.fetch_page(DbPage { area: 0, page: *p }, LockMode::S).unwrap();
                            ops += 1;
                        }
                        conn.commit(vec![]).unwrap();
                    }
                    let snap = conn.metrics().registry().snapshot();
                    conn.disconnect();
                    (snap, ops)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_ms = started.elapsed().as_millis() as u64;

    let mut merged = reg.snapshot();
    let mut ops = 0u64;
    for (snap, o) in &per_conn {
        merged.absorb("", snap);
        ops += o;
    }
    merged.absorb("", &ns.metrics().registry().snapshot().delta(&ns_before));

    let mut checks = check_histogram(&merged, &Slo::p99("scenario.scan.ns", 268_435_456));
    checks.extend(check_histogram(&merged, &Slo::p99("cache.shared.lookup.ns", 16_777_216)));
    checks.push(SloCheck::at_least(
        "nodeserver.cache_hits",
        merged.counter("nodeserver.cache_hits"),
        1,
    ));
    ns.shutdown();

    ScenarioResult {
        name,
        ops,
        wall_ms,
        digest: digest.value(),
        checks,
        curve: vec![],
    }
}

// ---------------------------------------------------------------------------
// Bulk load across two owners (2PC)
// ---------------------------------------------------------------------------

fn bulk_load(cfg: &ScenarioCfg, scale: &Scale) -> ScenarioResult {
    let name = "bulk_load";
    // Pre-allocate fresh pages on both owners; each batch takes half its
    // pages from each, so every batch commit is a coordinated 2PC round.
    let make_batches = |world: &World| -> Vec<Vec<DbPage>> {
        let mut batches: Vec<Vec<DbPage>> = Vec::with_capacity(scale.bulk_batches);
        for _ in 0..scale.bulk_batches {
            let mut batch = Vec::with_capacity(scale.bulk_batch_pages);
            for half in 0..2u32 {
                let area = world.area_sets[half as usize].get(half).unwrap();
                let ptr = area.alloc(scale.bulk_batch_pages as u32 / 2).unwrap();
                for p in 0..u64::from(ptr.pages).min(scale.bulk_batch_pages as u64 / 2) {
                    batch.push(DbPage { area: half, page: ptr.start_page + p });
                }
            }
            batches.push(batch);
        }
        batches
    };

    // One leg of the load: every batch through `conns` connections.
    // Returns the per-connection snapshots plus the leg's total wire
    // messages (a one-way send counts one, a call two) and the world's
    // metric delta over the leg.
    let run_leg = |world: &World,
                   batches: &[Vec<DbPage>],
                   txn_ns: &LatencyHistogram|
     -> (Vec<(RegistrySnapshot, u64)>, u64, RegistrySnapshot) {
        let wreg = world.metrics();
        let before = wreg.snapshot();
        let per_conn: Vec<(RegistrySnapshot, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..scale.conns)
                .map(|c| {
                    s.spawn(move || {
                        let conn = world.client(1 + c as u32, false);
                        let mut ops = 0u64;
                        for b in (c..batches.len()).step_by(scale.conns) {
                            let _timer = txn_ns.start();
                            conn.begin().unwrap();
                            let mut updates = Vec::new();
                            for page in &batches[b] {
                                let data = conn.fetch_page(*page, LockMode::X).unwrap();
                                updates.push(PageUpdate {
                                    page: *page,
                                    offset: 0,
                                    before: data[0..SLOT_BYTES].to_vec(),
                                    after: vec![0xb5; SLOT_BYTES],
                                });
                            }
                            conn.commit(updates).unwrap();
                            ops += batches[b].len() as u64;
                        }
                        let snap = conn.metrics().registry().snapshot();
                        conn.disconnect();
                        (snap, ops)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let delta = wreg.snapshot().delta(&before);
        let msgs = delta.counter("net.sends") + 2 * delta.counter("net.calls");
        (per_conn, msgs, delta)
    };

    // The distributed-commit smoke gate's baseline: the same load against
    // servers in presumed-abort compatibility mode. Only its message
    // count matters — its latencies go to a scratch histogram.
    let scratch_ns = Registry::new().group("scenario").histogram("txn.ns");
    let base_world = World::new_configured(&[&[0], &[1]], Duration::ZERO, |scfg| {
        scfg.two_pc.compat_presumed_abort = true;
    });
    let base_batches = make_batches(&base_world);
    let (_, base_msgs, _) = run_leg(&base_world, &base_batches, &scratch_ns);

    // The measured leg: the shipped default protocol (presumed commit,
    // batched phase 1, one-way decides).
    let world = World::new(&[&[0], &[1]], Duration::ZERO);
    let batches = make_batches(&world);
    let mut digest = Digest::new();
    digest.mix(cfg.seed);
    for batch in &batches {
        for page in batch {
            digest.mix(u64::from(page.area));
            digest.mix(page.page);
        }
    }

    let reg = Registry::new();
    let txn_ns = scenario_hist(&reg, "txn.ns");
    let started = Instant::now();
    let (per_conn, opt_msgs, world_delta) = run_leg(&world, &batches, &txn_ns);
    let wall_ms = started.elapsed().as_millis() as u64;

    let mut merged = reg.snapshot();
    let mut ops = 0u64;
    for (snap, o) in &per_conn {
        merged.absorb("", snap);
        ops += o;
    }
    merged.absorb("", &world_delta);

    let mut checks = check_histogram(&merged, &Slo::p99("client.commit.rtt.ns", 268_435_456));
    checks.extend(check_histogram(&merged, &Slo::p99("s0.wal.flush.ns", 67_108_864)));
    checks.push(SloCheck::at_least(
        "s0.server.coordinated",
        merged.counter("s0.server.coordinated"),
        1,
    ));
    // The distributed-commit smoke gate (ISSUE 10): the default protocol
    // must spend strictly fewer wire messages per 2PC commit than the
    // presumed-abort baseline, and the presumed-commit machinery must
    // actually have run (at least one unacked decide).
    let commits = scale.bulk_batches as u64;
    checks.push(SloCheck::at_most(
        "2pc.msgs_per_commit_x100",
        opt_msgs * 100 / commits,
        (base_msgs * 100 / commits).saturating_sub(1),
    ));
    checks.push(SloCheck::at_least(
        "s0.server.2pc.oneway_decides",
        merged.counter("s0.server.2pc.oneway_decides"),
        1,
    ));

    ScenarioResult {
        name,
        ops,
        wall_ms,
        digest: digest.value(),
        checks,
        curve: vec![],
    }
}

// ---------------------------------------------------------------------------
// Large-object aging against the buddy allocator
// ---------------------------------------------------------------------------

fn permille(f: f64) -> u64 {
    (f * 1000.0).round() as u64
}

fn largeobj_aging(cfg: &ScenarioCfg, scale: &Scale) -> ScenarioResult {
    use bess_largeobj::{LargeObject, LoConfig};
    let name = "largeobj_aging";
    // Small pages so objects span segments and the buddy tree actually
    // splits/coalesces. The geometry is chosen so an extent can never
    // overflow its on-page allocation table: 64 pages/extent means at most
    // 64 allocated blocks, below the (512-8)/5 = 100-entry capacity of a
    // 512-byte metadata page even if every block is a single page.
    let area = Arc::new(
        StorageArea::create_mem(
            AreaId(0),
            AreaConfig {
                page_size: 512,
                extent_pages_log2: 6,
                initial_extents: 2,
                expandable: true,
                verify_on_read: true,
            },
        )
        .unwrap(),
    );

    let reg = Registry::new();
    let op_ns = scenario_hist(&reg, "aging.op.ns");
    let mut r = rng(cfg.seed ^ salt(name));
    let mut digest = Digest::new();
    digest.mix(cfg.seed);
    let mut pool: Vec<LargeObject> = Vec::new();
    let mut curve: Vec<(u64, u64)> = Vec::new();
    let mut peak = 0u64;
    let sample_every = (scale.aging_cycles / 16).max(1);
    let mut ops = 0u64;
    let started = Instant::now();
    for cycle in 0..scale.aging_cycles {
        let action = r.gen_range(0..100u32);
        let size = r.gen_range(64..2048usize);
        digest.mix(u64::from(action));
        digest.mix(size as u64);
        let _timer = op_ns.start();
        if pool.len() < scale.aging_pool / 2 || (action < 40 && pool.len() < scale.aging_pool) {
            let mut lo = LargeObject::create(Arc::clone(&area), LoConfig::default());
            lo.append(&vec![0xa6; size]).unwrap();
            pool.push(lo);
        } else if action < 70 {
            // Grow, but recycle oversized objects through truncate so the
            // area's footprint stays bounded over arbitrarily many cycles
            // (truncate is also the free-list coalescing exercise).
            let i = r.gen_range(0..pool.len());
            if pool[i].len() > 16 * 1024 {
                pool[i].truncate(2048).unwrap();
            } else {
                pool[i].append(&vec![0xa7; size]).unwrap();
            }
        } else {
            let i = r.gen_range(0..pool.len());
            pool.swap_remove(i).destroy().unwrap();
        }
        ops += 1;
        drop(_timer);
        if cycle % sample_every == 0 {
            let f = permille(area.fragmentation());
            peak = peak.max(f);
            curve.push((cycle as u64, f));
        }
    }
    // Drain: every object freed back. The buddy trees must coalesce to
    // fully-free extents (fragmentation exactly 0) and tile exactly.
    for lo in pool.drain(..) {
        lo.destroy().unwrap();
    }
    area.check_allocator_invariants();
    let final_frag = permille(area.fragmentation());
    curve.push((scale.aging_cycles as u64, final_frag));
    let wall_ms = started.elapsed().as_millis() as u64;

    let mut merged = reg.snapshot();
    merged.absorb("", &area.metrics().registry().snapshot());

    let mut checks = check_histogram(&merged, &Slo::p99("scenario.aging.op.ns", 67_108_864));
    checks.push(SloCheck::at_most("storage.frag.peak_permille", peak, 900));
    checks.push(SloCheck::at_most("storage.frag.final_permille", final_frag, 0));
    // The live gauge must agree with the drained allocator.
    checks.push(SloCheck::at_most(
        "storage.a0.frag_permille",
        merged.gauge("storage.a0.frag_permille").max(0) as u64,
        0,
    ));

    ScenarioResult {
        name,
        ops,
        wall_ms,
        digest: digest.value(),
        checks,
        curve,
    }
}

// ---------------------------------------------------------------------------
// Node-server cold start
// ---------------------------------------------------------------------------

fn cold_start(cfg: &ScenarioCfg, scale: &Scale) -> ScenarioResult {
    let name = "cold_start";
    let world = World::new(&[&[0]], Duration::ZERO);
    let area = world.area_sets[0].get(0).unwrap();
    let mut pages: Vec<u64> = Vec::new();
    let mut digest = Digest::new();
    digest.mix(cfg.seed);
    while pages.len() < scale.cold_pages {
        let ptr = area.alloc(32).unwrap();
        for p in 0..u64::from(ptr.pages) {
            pages.push(ptr.start_page + p);
        }
    }
    pages.truncate(scale.cold_pages);
    let buf = vec![0xc0u8; area.page_size()];
    for &p in &pages {
        digest.mix(p);
        area.write_page(p, &buf).unwrap();
    }

    // The node server starts with an empty shared cache: the cold pass
    // forces one remote fetch per page, the warm pass (a second client on
    // the same node) must be served entirely from the shared cache.
    let ns = world.node_server(50);
    let reg = Registry::new();
    let cold_ns = scenario_hist(&reg, "cold.fetch.ns");
    let warm_ns = scenario_hist(&reg, "warm.fetch.ns");
    let started = Instant::now();

    let run_pass = |node: u32, hist: &LatencyHistogram| {
        let mut ccfg = ClientConfig::new(NodeId(node), ns.node());
        ccfg.caching = true;
        ccfg.gateway = Some(ns.node());
        let conn = ClientConn::connect(&world.net, Arc::clone(&world.dir), ccfg);
        conn.begin().unwrap();
        for &p in &pages {
            let _timer = hist.start();
            let d = conn.fetch_page(DbPage { area: 0, page: p }, LockMode::S).unwrap();
            assert_eq!(d[0], 0xc0, "preloaded byte must survive the cache path");
        }
        conn.commit(vec![]).unwrap();
        let snap = conn.metrics().registry().snapshot();
        conn.disconnect();
        snap
    };

    let cold_snap = run_pass(60, &cold_ns);
    let ns_after_cold = ns.metrics().registry().snapshot();
    let warm_snap = run_pass(61, &warm_ns);
    let warm_delta = ns.metrics().registry().snapshot().delta(&ns_after_cold);
    let wall_ms = started.elapsed().as_millis() as u64;

    let mut merged = reg.snapshot();
    merged.absorb("", &cold_snap);
    merged.absorb("", &warm_snap);
    merged.absorb("", &ns.metrics().registry().snapshot());

    let mut checks = check_histogram(&merged, &Slo::p99("scenario.cold.fetch.ns", 67_108_864));
    checks.extend(check_histogram(&merged, &Slo::p99("scenario.warm.fetch.ns", 16_777_216)));
    checks.extend(check_histogram(&merged, &Slo::p99("cache.shared.lookup.ns", 16_777_216)));
    checks.push(SloCheck::at_most(
        "nodeserver.remote_fetches.warm",
        warm_delta.counter("nodeserver.remote_fetches"),
        0,
    ));
    ns.shutdown();

    ScenarioResult {
        name,
        ops: 2 * pages.len() as u64,
        wall_ms,
        digest: digest.value(),
        checks,
        curve: vec![],
    }
}

// ---------------------------------------------------------------------------
// Mid-run crash + recovery
// ---------------------------------------------------------------------------

/// What the crash leg saw, for the durable-atomicity oracle test
/// (`crates/bess-bench/tests/scenario_crash.rs`): every acked commit and
/// what the recovered store actually holds at that ack's page.
pub struct CrashLegReport {
    /// The scenario result (checks include `recovery.lost_acks == 0`).
    pub result: ScenarioResult,
    /// `(page, marker)` pairs acknowledged to the client before the crash.
    pub acked: Vec<(u64, u64)>,
    /// The marker actually read back from each acked page after recovery.
    pub recovered: Vec<(u64, u64)>,
    /// In-doubt transactions left after restart (must be 0 single-server).
    pub in_doubt: usize,
}

/// Runs the crash+recovery scenario and returns the full oracle evidence.
/// A `NetFaultPlan` drops one commit *reply* mid-phase-A (the client
/// retries into the server's dedup window), then the server crashes with
/// `simulate_crash` — losing any unflushed log tail — and restarts over
/// the same areas. Phase B continues against the restarted server; the
/// check that gates CI is that **no acked commit is ever lost**.
pub fn run_crash_leg(cfg: &ScenarioCfg) -> CrashLegReport {
    let scale = Scale::of(cfg.profile);
    let name = "crash_recovery";
    let net: Arc<Network<Msg>> = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let set = make_areas(&[0]);
    register_areas(&dir, NodeId(100), &set);
    let (server, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        LogManager::create_mem(),
        &net,
    );
    let area = set.get(0).unwrap();
    let mut pages: Vec<u64> = Vec::new();
    while pages.len() < scale.crash_txns {
        let ptr = area.alloc(32).unwrap();
        for p in 0..u64::from(ptr.pages) {
            pages.push(ptr.start_page + p);
        }
    }
    pages.truncate(scale.crash_txns);
    let mut digest = Digest::new();
    digest.mix(cfg.seed);
    for &p in &pages {
        digest.mix(p);
    }

    // Non-caching message layout per txn: Begin, Fetch, Commit,
    // ReleaseAll. Drop the commit *reply* of the txn a quarter in.
    let phase_a = scale.crash_txns / 2;
    let faulted_txn = phase_a / 2;
    net.arm(NetFaultPlan::armed_from(
        NodeId(1),
        4 * faulted_txn as u64 + 2,
        NetFaultKind::DropReply,
    ));

    let connect = |node: u32| {
        let mut ccfg = ClientConfig::new(NodeId(node), NodeId(100));
        ccfg.caching = false;
        ccfg.rpc_timeout = Duration::from_millis(200);
        ccfg.retry_base = Duration::from_millis(1);
        ccfg.heartbeat_interval = Duration::from_secs(60);
        ClientConn::connect(&net, Arc::clone(&dir), ccfg)
    };

    let reg = Registry::new();
    let recovery_ns = scenario_hist(&reg, "recovery.ns");
    let mut acked: Vec<(u64, u64)> = Vec::new();
    let started = Instant::now();

    let run_phase = |conn: &ClientConn, range: std::ops::Range<usize>, acked: &mut Vec<(u64, u64)>| {
        for t in range {
            let page = DbPage { area: 0, page: pages[t] };
            let marker = 0xace0_0000 + t as u64;
            let committed = (|| -> Result<(), bess_server::ClientError> {
                conn.begin()?;
                let d = conn.fetch_page(page, LockMode::X)?;
                conn.commit(vec![PageUpdate {
                    page,
                    offset: 0,
                    before: d[0..8].to_vec(),
                    after: marker.to_le_bytes().to_vec(),
                }])
            })()
            .is_ok();
            if committed {
                acked.push((pages[t], marker));
            }
        }
    };

    let conn_a = connect(1);
    run_phase(&conn_a, 0..phase_a, &mut acked);
    let conn_a_snap = conn_a.metrics().registry().snapshot();
    conn_a.disconnect();

    // Crash: the flushed log survives, the server process does not.
    let crashed_log = server.log().simulate_crash().unwrap();
    server.shutdown();
    net.unregister(NodeId(100));
    let timer = recovery_ns.start();
    let (server2, _) = BessServer::start(
        ServerConfig::new(NodeId(100)),
        Arc::clone(&set),
        crashed_log,
        &net,
    );
    drop(timer);
    let in_doubt = server2.in_doubt().len();

    let conn_b = connect(2);
    run_phase(&conn_b, phase_a..scale.crash_txns, &mut acked);
    let conn_b_snap = conn_b.metrics().registry().snapshot();
    conn_b.disconnect();
    let wall_ms = started.elapsed().as_millis() as u64;

    // The oracle read-back: every acked marker must be on its page.
    let area2 = server2.areas().get(0).unwrap();
    let mut buf = vec![0u8; area2.page_size()];
    let mut recovered = Vec::with_capacity(acked.len());
    let mut lost = 0u64;
    for &(page, marker) in &acked {
        area2.read_page(page, &mut buf).unwrap();
        let got = u64::from_le_bytes(buf[0..8].try_into().unwrap());
        recovered.push((page, got));
        if got != marker {
            lost += 1;
        }
    }

    let mut merged = reg.snapshot();
    merged.absorb("", &conn_a_snap);
    merged.absorb("", &conn_b_snap);
    merged.absorb("", &server2.metrics().registry().snapshot());

    // RTT ceiling covers the one deliberate 200 ms timeout+retry.
    let mut checks = check_histogram(&merged, &Slo::p99("client.commit.rtt.ns", 1_073_741_824));
    checks.extend(check_histogram(&merged, &Slo::p99("scenario.recovery.ns", 1_073_741_824)));
    checks.push(SloCheck::at_most("recovery.lost_acks", lost, 0));
    checks.push(SloCheck::at_least(
        "client.commits.acked",
        acked.len() as u64,
        scale.crash_txns as u64,
    ));
    checks.push(SloCheck::at_most("server.in_doubt", in_doubt as u64, 0));

    CrashLegReport {
        result: ScenarioResult {
            name,
            ops: acked.len() as u64,
            wall_ms,
            digest: digest.value(),
            checks,
            curve: vec![],
        },
        acked,
        recovered,
        in_doubt,
    }
}

// ---------------------------------------------------------------------------
// Scrub under load: zipf traffic + silent bit rot + the background scrubber
// ---------------------------------------------------------------------------

/// Zipf point traffic against a server whose **background scrubber is on**,
/// while a gremlin thread silently rots bytes of cold committed pages on
/// the (fault-injectable) disk under it. Gates three things at once:
///
/// - the scrubber finds and repairs every rotted page from WAL history
///   without any foreground read ever touching those pages
///   (`storage.corruption.repaired ≥` rotted pages, `unrepairable == 0`,
///   and an exact byte-for-byte read-back of every rotted page);
/// - scrubbing never invents damage: nothing ends up quarantined and the
///   area converges to a clean steady state (two consecutive clean passes);
/// - foreground latency SLOs still hold with the scrubber competing for
///   the disk (commit RTT and txn ceilings below).
fn scrub_under_load(cfg: &ScenarioCfg, scale: &Scale) -> ScenarioResult {
    let name = "scrub_under_load";
    // Hand-built world (like the crash leg): the area must sit on a
    // `FaultDisk` so rot can be injected under the live server, and the
    // server config must switch the scrubber thread on.
    let net: Arc<Network<Msg>> = Network::new(Duration::ZERO);
    let dir = Arc::new(Directory::new());
    let disk = FaultDisk::new(FaultPlan::unarmed());
    let area = Arc::new(
        StorageArea::create_faulty(AreaId(0), AreaConfig::default(), Arc::clone(&disk)).unwrap(),
    );
    let page_size = area.page_size();
    let farm = PageFarm::provision(&area, scale.scrub_objects);
    // Rot targets live *outside* the farm: cold pages only the scrubber
    // will ever visit, so healing is attributable to the scrubber alone.
    let mut rot_pages: Vec<u64> = Vec::new();
    while rot_pages.len() < scale.scrub_rots {
        let ptr = area.alloc(32).unwrap();
        for p in 0..u64::from(ptr.pages) {
            rot_pages.push(ptr.start_page + p);
        }
    }
    rot_pages.truncate(scale.scrub_rots);

    let set = Arc::new(AreaSet::new());
    set.add(Arc::clone(&area));
    register_areas(&dir, NodeId(100), &set);
    let mut scfg = ServerConfig::new(NodeId(100));
    scfg.scrub.enabled = true;
    scfg.scrub.interval = Duration::from_millis(1);
    scfg.scrub.pages_per_pass = 1 << 12;
    let (server, _) = BessServer::start(scfg, Arc::clone(&set), LogManager::create_mem(), &net);

    let zipf = Zipf::new(scale.scrub_objects, 0.99);
    let marker = |i: usize| 0x5eed_0000_0000_0000u64 + i as u64;

    // Schedules and the rot plan, single-threaded and digested up front:
    // which pages rot, where, and what the load does are all seed-stable;
    // only *when* a flip lands relative to the traffic is scheduling.
    let mut digest = Digest::new();
    digest.mix(cfg.seed);
    let mut rot_plan: Vec<(u64, usize)> = Vec::new();
    {
        let mut r = rng(cfg.seed ^ salt(name));
        for &p in &rot_pages {
            let off = r.gen_range(0..page_size);
            digest.mix(p);
            digest.mix(off as u64);
            rot_plan.push((p, off));
        }
    }
    let mut schedules: Vec<Vec<Vec<Op>>> = Vec::with_capacity(scale.clients);
    for lc in 0..scale.clients {
        let mut r = rng(cfg.seed ^ salt(name) ^ (lc as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut txns = Vec::with_capacity(scale.txns_per_client);
        for _ in 0..scale.txns_per_client {
            let mut ops: Vec<Op> = Vec::with_capacity(4);
            while ops.len() < 4 {
                let obj = zipf.sample(&mut r);
                if ops.iter().any(|&(o, _)| o == obj) {
                    continue;
                }
                let write = r.gen_range(0..100) < 50;
                digest.mix(obj as u64);
                digest.mix(u64::from(write));
                ops.push((obj, write));
            }
            txns.push(ops);
        }
        schedules.push(txns);
    }

    let connect = |node: u32| {
        let ccfg = ClientConfig::new(NodeId(node), NodeId(100));
        ClientConn::connect(&net, Arc::clone(&dir), ccfg)
    };

    // Seed every rot target with a committed marker through the normal WAL
    // path, so each has reconstructable history *before* any byte rots.
    let setup = connect(99);
    for (i, &p) in rot_pages.iter().enumerate() {
        let page = DbPage { area: 0, page: p };
        setup.begin().unwrap();
        let d = setup.fetch_page(page, LockMode::X).unwrap();
        setup
            .commit(vec![PageUpdate {
                page,
                offset: 0,
                before: d[0..8].to_vec(),
                after: marker(i).to_le_bytes().to_vec(),
            }])
            .unwrap();
    }
    setup.disconnect();

    let reg = Registry::new();
    let txn_ns = scenario_hist(&reg, "txn.ns");
    let started = Instant::now();
    let per_conn: Vec<(RegistrySnapshot, u64, u64)> = std::thread::scope(|s| {
        // The gremlin: one silent XOR flip per target page, spread over
        // the run, landing in the page *data* past the sealed header. The
        // server is never told; only verify-on-read / the scrubber can
        // notice.
        {
            let disk = &disk;
            let rot_plan = &rot_plan;
            s.spawn(move || {
                for &(p, off) in rot_plan.iter() {
                    let at = p * (PAGE_HDR + page_size) as u64 + (PAGE_HDR + off) as u64;
                    let mut b = [0u8; 1];
                    disk.read_at(&mut b, at).unwrap();
                    b[0] ^= 0x40;
                    disk.write_at(&b, at).unwrap();
                    std::thread::sleep(Duration::from_micros(300));
                }
            });
        }
        let handles: Vec<_> = (0..scale.conns)
            .map(|c| {
                let schedules = &schedules;
                let farm = &farm;
                let txn_ns = &txn_ns;
                let connect = &connect;
                s.spawn(move || {
                    let conn = connect(1 + c as u32);
                    let mut aborts = 0u64;
                    let mut ops_done = 0u64;
                    #[allow(clippy::needless_range_loop)]
                    for t in 0..scale.txns_per_client {
                        for lc in (c..scale.clients).step_by(scale.conns) {
                            let _timer = txn_ns.start();
                            match run_txn(&conn, farm, &schedules[lc][t]) {
                                Ok(n) => ops_done += n,
                                Err(_) => {
                                    let _ = conn.abort();
                                    aborts += 1;
                                }
                            }
                        }
                    }
                    let snap = conn.metrics().registry().snapshot();
                    conn.disconnect();
                    (snap, aborts, ops_done)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Drain: let the scrubber converge to a clean steady state — two
    // consecutive full passes that find nothing corrupt.
    let mut clean = 0;
    for _ in 0..64 {
        if server.scrub_once().corrupt == 0 {
            clean += 1;
            if clean >= 2 {
                break;
            }
        } else {
            clean = 0;
        }
    }
    let wall_ms = started.elapsed().as_millis() as u64;

    // Oracle read-back through the server: every rotted page must carry
    // exactly its committed marker again, byte for byte.
    let check_conn = connect(98);
    let mut lost = 0u64;
    for (i, &p) in rot_pages.iter().enumerate() {
        let page = DbPage { area: 0, page: p };
        check_conn.begin().unwrap();
        let ok = match check_conn.fetch_page(page, LockMode::S) {
            Ok(d) => {
                d[0..8] == marker(i).to_le_bytes()
                    && d[8..].iter().all(|&b| b == 0)
            }
            Err(_) => false,
        };
        let _ = check_conn.commit(vec![]);
        if !ok {
            lost += 1;
        }
    }
    let check_snap = check_conn.metrics().registry().snapshot();
    check_conn.disconnect();

    let sreg = server.metrics().registry();
    let detected = sreg.counter("storage.corruption.detected").get();
    let repaired = sreg.counter("storage.corruption.repaired").get();
    let unrepairable = sreg.counter("storage.corruption.unrepairable").get();
    let passes = sreg.counter("storage.scrub.passes").get();
    let quarantined = area.quarantined_pages().len() as u64;

    let mut merged = reg.snapshot();
    let mut aborts = 0u64;
    let mut ops = 0u64;
    for (snap, a, o) in &per_conn {
        merged.absorb("", snap);
        aborts += a;
        ops += o;
    }
    merged.absorb("", &check_snap);
    merged.absorb("", &server.metrics().registry().snapshot());
    server.shutdown();

    let total_txns = (scale.clients * scale.txns_per_client) as u64;
    // Ceilings sit above the zipf baselines: the scrubber shares the disk
    // with the foreground, and a txn that trips over fresh rot pays one
    // in-line repair. Still bounded by the same lock-timeout logic as
    // zipf (§E22 calibration).
    let mut checks = check_histogram(
        &merged,
        &Slo::p50_p99("client.commit.rtt.ns", 16_777_216, 268_435_456),
    );
    checks.extend(check_histogram(&merged, &Slo::p99("scenario.txn.ns", 1_073_741_824)));
    checks.push(SloCheck::at_most("client.aborts", aborts, total_txns / 4));
    checks.push(SloCheck::at_least(
        "storage.corruption.detected",
        detected,
        rot_pages.len() as u64,
    ));
    checks.push(SloCheck::at_least(
        "storage.corruption.repaired",
        repaired,
        rot_pages.len() as u64,
    ));
    checks.push(SloCheck::at_most("storage.corruption.unrepairable", unrepairable, 0));
    checks.push(SloCheck::at_least("storage.scrub.passes", passes, 1));
    checks.push(SloCheck::at_most("storage.quarantined_pages", quarantined, 0));
    checks.push(SloCheck::at_most("scrub.lost_pages", lost, 0));

    ScenarioResult {
        name,
        ops,
        wall_ms,
        digest: digest.value(),
        checks,
        curve: vec![],
    }
}

// ---------------------------------------------------------------------------
// The library of scenarios
// ---------------------------------------------------------------------------

/// Names of every scenario, in run order.
pub const SCENARIO_NAMES: &[&str] = &[
    "zipf_90_10",
    "zipf_50_50",
    "range_scan",
    "bulk_load",
    "largeobj_aging",
    "cold_start",
    "crash_recovery",
    "scrub_under_load",
];

/// Runs one scenario by name.
pub fn run_one(name: &str, cfg: &ScenarioCfg) -> Option<ScenarioResult> {
    let scale = Scale::of(cfg.profile);
    Some(match name {
        "zipf_90_10" => zipf_point("zipf_90_10", 10, cfg, &scale),
        "zipf_50_50" => zipf_point("zipf_50_50", 50, cfg, &scale),
        "range_scan" => range_scan(cfg, &scale),
        "bulk_load" => bulk_load(cfg, &scale),
        "largeobj_aging" => largeobj_aging(cfg, &scale),
        "cold_start" => cold_start(cfg, &scale),
        "crash_recovery" => run_crash_leg(cfg).result,
        "scrub_under_load" => scrub_under_load(cfg, &scale),
        _ => return None,
    })
}

/// Runs the whole library in declaration order.
pub fn run_all(cfg: &ScenarioCfg) -> Vec<ScenarioResult> {
    SCENARIO_NAMES
        .iter()
        .map(|n| run_one(n, cfg).unwrap())
        .collect()
}

// ---------------------------------------------------------------------------
// §E22 rendering
// ---------------------------------------------------------------------------

/// Flattens the results into the `§E22` key space: raw JSON values keyed
/// by dotted names, ready for `BENCH_report.json` (via `report.rs`) or
/// [`render_e22`].
pub fn e22_entries(cfg: &ScenarioCfg, results: &[ScenarioResult]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    out.insert("profile".into(), json_string(cfg.profile.name()));
    out.insert("seed".into(), cfg.seed.to_string());
    let all_pass = results.iter().all(|r| r.passed());
    out.insert(
        "verdict".into(),
        json_string(if all_pass { "pass" } else { "fail" }),
    );
    for r in results {
        out.insert(format!("{}.ops", r.name), r.ops.to_string());
        out.insert(format!("{}.wall_ms", r.name), r.wall_ms.to_string());
        out.insert(
            format!("{}.digest", r.name),
            json_string(&format!("{:016x}", r.digest)),
        );
        out.insert(format!("{}.verdict", r.name), json_string(r.verdict()));
        for c in &r.checks {
            let base = format!("{}.{}.{}", r.name, c.metric, c.quantity);
            out.insert(base.clone(), c.measured.to_string());
            out.insert(format!("{base}.limit"), c.limit.to_string());
            out.insert(format!("{base}.verdict"), json_string(c.verdict()));
        }
        for &(cycle, frag) in &r.curve {
            out.insert(format!("{}.frag.c{cycle}", r.name), frag.to_string());
        }
    }
    out
}

/// Renders an entry map as a JSON object, one key per line (the same
/// shape `report.rs` emits inside `BENCH_report.json`).
pub fn render_e22(entries: &BTreeMap<String, String>) -> String {
    let mut s = String::from("{\n");
    let mut first = true;
    for (k, v) in entries {
        if !first {
            s.push_str(",\n");
        }
        first = false;
        s.push_str(&format!("  {}: {v}", json_string(k)));
    }
    s.push_str("\n}");
    s
}

/// Parses what [`render_e22`] produced back into the entry map — the
/// round-trip half of the report-diff machinery's contract.
pub fn parse_e22(json: &str) -> Option<BTreeMap<String, String>> {
    let body = json.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = BTreeMap::new();
    for line in body.lines() {
        let line = line.trim().trim_end_matches(',');
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix('"')?;
        let (key, rest) = rest.split_once('"')?;
        let value = rest.trim().strip_prefix(':')?.trim();
        out.insert(key.to_string(), value.to_string());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_order_sensitive() {
        let mut a = Digest::new();
        a.mix(1);
        a.mix(2);
        let mut b = Digest::new();
        b.mix(1);
        b.mix(2);
        assert_eq!(a.value(), b.value());
        let mut c = Digest::new();
        c.mix(2);
        c.mix(1);
        assert_ne!(a.value(), c.value());
    }

    #[test]
    fn farm_locates_distinct_slots() {
        let area = StorageArea::create_mem(AreaId(0), AreaConfig::default()).unwrap();
        let farm = PageFarm::provision(&area, 1000);
        let spp = area.page_size() / SLOT_BYTES;
        let (p0, o0) = farm.locate(0);
        let (p1, o1) = farm.locate(1);
        assert_eq!(p0.page, p1.page);
        assert_eq!(o1 - o0, SLOT_BYTES as u32);
        let (pn, _) = farm.locate(spp);
        assert_ne!(p0.page, pn.page, "slot {spp} must roll to the next page");
    }

    #[test]
    fn e22_round_trips_through_render_and_parse() {
        let cfg = ScenarioCfg::new(Profile::Smoke);
        let result = ScenarioResult {
            name: "zipf_90_10",
            ops: 1024,
            wall_ms: 17,
            digest: 0xdead_beef_cafe_f00d,
            checks: vec![
                SloCheck::at_most("client.aborts", 3, 64),
                SloCheck::at_least("nodeserver.cache_hits", 0, 1),
            ],
            curve: vec![(0, 0), (120, 412)],
        };
        let entries = e22_entries(&cfg, &[result]);
        let rendered = render_e22(&entries);
        let parsed = parse_e22(&rendered).expect("rendered block must parse");
        assert_eq!(parsed, entries);
        assert_eq!(parsed["verdict"], "\"fail\"");
        assert_eq!(parsed["zipf_90_10.digest"], "\"deadbeefcafef00d\"");
        assert_eq!(parsed["zipf_90_10.frag.c120"], "412");
        assert_eq!(
            parsed["zipf_90_10.nodeserver.cache_hits.min.verdict"],
            "\"fail\""
        );
    }

    #[test]
    fn scenario_metric_registry_covers_pinned_names() {
        let dump = register_all_metrics().dump();
        for name in SCENARIO_HISTOGRAMS {
            let want = format!("scenario.{name}");
            assert!(
                dump.lines().any(|l| l.split_whitespace().next() == Some(want.as_str())),
                "{want} missing from dump:\n{dump}"
            );
        }
    }
}
